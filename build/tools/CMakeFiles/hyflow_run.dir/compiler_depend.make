# Empty compiler generated dependencies file for hyflow_run.
# This may be replaced when dependencies are built.
