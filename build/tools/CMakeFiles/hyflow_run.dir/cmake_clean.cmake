file(REMOVE_RECURSE
  "CMakeFiles/hyflow_run.dir/hyflow_run.cpp.o"
  "CMakeFiles/hyflow_run.dir/hyflow_run.cpp.o.d"
  "hyflow_run"
  "hyflow_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyflow_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
