# Empty compiler generated dependencies file for bank_cluster.
# This may be replaced when dependencies are built.
