file(REMOVE_RECURSE
  "CMakeFiles/bank_cluster.dir/bank_cluster.cpp.o"
  "CMakeFiles/bank_cluster.dir/bank_cluster.cpp.o.d"
  "bank_cluster"
  "bank_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
