file(REMOVE_RECURSE
  "CMakeFiles/vacation_booking.dir/vacation_booking.cpp.o"
  "CMakeFiles/vacation_booking.dir/vacation_booking.cpp.o.d"
  "vacation_booking"
  "vacation_booking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vacation_booking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
