# Empty dependencies file for hyflow.
# This may be replaced when dependencies are built.
