file(REMOVE_RECURSE
  "libhyflow.a"
)
