
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backoff_scheduler.cpp" "src/CMakeFiles/hyflow.dir/core/backoff_scheduler.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/core/backoff_scheduler.cpp.o.d"
  "/root/repo/src/core/bi_interval_scheduler.cpp" "src/CMakeFiles/hyflow.dir/core/bi_interval_scheduler.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/core/bi_interval_scheduler.cpp.o.d"
  "/root/repo/src/core/contention.cpp" "src/CMakeFiles/hyflow.dir/core/contention.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/core/contention.cpp.o.d"
  "/root/repo/src/core/requester_list.cpp" "src/CMakeFiles/hyflow.dir/core/requester_list.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/core/requester_list.cpp.o.d"
  "/root/repo/src/core/rts_scheduler.cpp" "src/CMakeFiles/hyflow.dir/core/rts_scheduler.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/core/rts_scheduler.cpp.o.d"
  "/root/repo/src/core/tfa_scheduler.cpp" "src/CMakeFiles/hyflow.dir/core/tfa_scheduler.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/core/tfa_scheduler.cpp.o.d"
  "/root/repo/src/core/threshold_controller.cpp" "src/CMakeFiles/hyflow.dir/core/threshold_controller.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/core/threshold_controller.cpp.o.d"
  "/root/repo/src/dsm/coherence.cpp" "src/CMakeFiles/hyflow.dir/dsm/coherence.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/dsm/coherence.cpp.o.d"
  "/root/repo/src/dsm/directory.cpp" "src/CMakeFiles/hyflow.dir/dsm/directory.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/dsm/directory.cpp.o.d"
  "/root/repo/src/dsm/object.cpp" "src/CMakeFiles/hyflow.dir/dsm/object.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/dsm/object.cpp.o.d"
  "/root/repo/src/dsm/object_store.cpp" "src/CMakeFiles/hyflow.dir/dsm/object_store.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/dsm/object_store.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/hyflow.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/net/network.cpp.o.d"
  "/root/repo/src/net/payloads.cpp" "src/CMakeFiles/hyflow.dir/net/payloads.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/net/payloads.cpp.o.d"
  "/root/repo/src/net/rpc.cpp" "src/CMakeFiles/hyflow.dir/net/rpc.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/net/rpc.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/hyflow.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/net/topology.cpp.o.d"
  "/root/repo/src/runtime/cluster.cpp" "src/CMakeFiles/hyflow.dir/runtime/cluster.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/runtime/cluster.cpp.o.d"
  "/root/repo/src/runtime/experiment.cpp" "src/CMakeFiles/hyflow.dir/runtime/experiment.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/runtime/experiment.cpp.o.d"
  "/root/repo/src/runtime/metrics.cpp" "src/CMakeFiles/hyflow.dir/runtime/metrics.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/runtime/metrics.cpp.o.d"
  "/root/repo/src/runtime/node.cpp" "src/CMakeFiles/hyflow.dir/runtime/node.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/runtime/node.cpp.o.d"
  "/root/repo/src/runtime/report.cpp" "src/CMakeFiles/hyflow.dir/runtime/report.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/runtime/report.cpp.o.d"
  "/root/repo/src/runtime/worker.cpp" "src/CMakeFiles/hyflow.dir/runtime/worker.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/runtime/worker.cpp.o.d"
  "/root/repo/src/tfa/stats_table.cpp" "src/CMakeFiles/hyflow.dir/tfa/stats_table.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/tfa/stats_table.cpp.o.d"
  "/root/repo/src/tfa/tfa_runtime.cpp" "src/CMakeFiles/hyflow.dir/tfa/tfa_runtime.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/tfa/tfa_runtime.cpp.o.d"
  "/root/repo/src/tfa/transaction.cpp" "src/CMakeFiles/hyflow.dir/tfa/transaction.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/tfa/transaction.cpp.o.d"
  "/root/repo/src/util/bloom_filter.cpp" "src/CMakeFiles/hyflow.dir/util/bloom_filter.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/util/bloom_filter.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/hyflow.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/util/config.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/hyflow.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/hyflow.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/hyflow.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/util/log.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/hyflow.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/util/stats.cpp.o.d"
  "/root/repo/src/workloads/bank.cpp" "src/CMakeFiles/hyflow.dir/workloads/bank.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/bank.cpp.o.d"
  "/root/repo/src/workloads/bst.cpp" "src/CMakeFiles/hyflow.dir/workloads/bst.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/bst.cpp.o.d"
  "/root/repo/src/workloads/dht.cpp" "src/CMakeFiles/hyflow.dir/workloads/dht.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/dht.cpp.o.d"
  "/root/repo/src/workloads/linked_list.cpp" "src/CMakeFiles/hyflow.dir/workloads/linked_list.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/linked_list.cpp.o.d"
  "/root/repo/src/workloads/rbtree.cpp" "src/CMakeFiles/hyflow.dir/workloads/rbtree.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/rbtree.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/hyflow.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/vacation.cpp" "src/CMakeFiles/hyflow.dir/workloads/vacation.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/vacation.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/hyflow.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/hyflow.dir/workloads/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
