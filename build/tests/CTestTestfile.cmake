# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/dsm_test[1]_include.cmake")
include("/root/repo/build/tests/tfa_test[1]_include.cmake")
include("/root/repo/build/tests/tfa_edge_test[1]_include.cmake")
include("/root/repo/build/tests/nesting_test[1]_include.cmake")
include("/root/repo/build/tests/open_nesting_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/report_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
