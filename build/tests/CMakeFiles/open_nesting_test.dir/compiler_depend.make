# Empty compiler generated dependencies file for open_nesting_test.
# This may be replaced when dependencies are built.
