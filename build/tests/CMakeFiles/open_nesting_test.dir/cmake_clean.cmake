file(REMOVE_RECURSE
  "CMakeFiles/open_nesting_test.dir/open_nesting_test.cpp.o"
  "CMakeFiles/open_nesting_test.dir/open_nesting_test.cpp.o.d"
  "open_nesting_test"
  "open_nesting_test.pdb"
  "open_nesting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/open_nesting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
