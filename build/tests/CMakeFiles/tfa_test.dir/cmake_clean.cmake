file(REMOVE_RECURSE
  "CMakeFiles/tfa_test.dir/tfa_test.cpp.o"
  "CMakeFiles/tfa_test.dir/tfa_test.cpp.o.d"
  "tfa_test"
  "tfa_test.pdb"
  "tfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
