# Empty compiler generated dependencies file for tfa_test.
# This may be replaced when dependencies are built.
