file(REMOVE_RECURSE
  "CMakeFiles/tfa_edge_test.dir/tfa_edge_test.cpp.o"
  "CMakeFiles/tfa_edge_test.dir/tfa_edge_test.cpp.o.d"
  "tfa_edge_test"
  "tfa_edge_test.pdb"
  "tfa_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfa_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
