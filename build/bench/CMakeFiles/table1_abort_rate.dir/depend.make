# Empty dependencies file for table1_abort_rate.
# This may be replaced when dependencies are built.
