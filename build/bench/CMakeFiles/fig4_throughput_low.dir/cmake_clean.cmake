file(REMOVE_RECURSE
  "CMakeFiles/fig4_throughput_low.dir/fig4_throughput_low.cpp.o"
  "CMakeFiles/fig4_throughput_low.dir/fig4_throughput_low.cpp.o.d"
  "fig4_throughput_low"
  "fig4_throughput_low.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_throughput_low.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
