# Empty dependencies file for fig4_throughput_low.
# This may be replaced when dependencies are built.
