# Empty dependencies file for ext_nesting_models.
# This may be replaced when dependencies are built.
