file(REMOVE_RECURSE
  "CMakeFiles/ext_nesting_models.dir/ext_nesting_models.cpp.o"
  "CMakeFiles/ext_nesting_models.dir/ext_nesting_models.cpp.o.d"
  "ext_nesting_models"
  "ext_nesting_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_nesting_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
