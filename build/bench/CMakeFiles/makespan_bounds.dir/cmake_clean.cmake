file(REMOVE_RECURSE
  "CMakeFiles/makespan_bounds.dir/makespan_bounds.cpp.o"
  "CMakeFiles/makespan_bounds.dir/makespan_bounds.cpp.o.d"
  "makespan_bounds"
  "makespan_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/makespan_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
