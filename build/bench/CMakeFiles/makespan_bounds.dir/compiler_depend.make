# Empty compiler generated dependencies file for makespan_bounds.
# This may be replaced when dependencies are built.
