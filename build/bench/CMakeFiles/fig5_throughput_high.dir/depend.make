# Empty dependencies file for fig5_throughput_high.
# This may be replaced when dependencies are built.
