file(REMOVE_RECURSE
  "CMakeFiles/fig5_throughput_high.dir/fig5_throughput_high.cpp.o"
  "CMakeFiles/fig5_throughput_high.dir/fig5_throughput_high.cpp.o.d"
  "fig5_throughput_high"
  "fig5_throughput_high.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_throughput_high.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
