file(REMOVE_RECURSE
  "CMakeFiles/ext_bi_interval.dir/ext_bi_interval.cpp.o"
  "CMakeFiles/ext_bi_interval.dir/ext_bi_interval.cpp.o.d"
  "ext_bi_interval"
  "ext_bi_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bi_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
