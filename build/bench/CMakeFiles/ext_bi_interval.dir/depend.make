# Empty dependencies file for ext_bi_interval.
# This may be replaced when dependencies are built.
