file(REMOVE_RECURSE
  "CMakeFiles/ablation_cl_threshold.dir/ablation_cl_threshold.cpp.o"
  "CMakeFiles/ablation_cl_threshold.dir/ablation_cl_threshold.cpp.o.d"
  "ablation_cl_threshold"
  "ablation_cl_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cl_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
