# Empty dependencies file for ablation_cl_threshold.
# This may be replaced when dependencies are built.
