file(REMOVE_RECURSE
  "CMakeFiles/fig6_speedup_summary.dir/fig6_speedup_summary.cpp.o"
  "CMakeFiles/fig6_speedup_summary.dir/fig6_speedup_summary.cpp.o.d"
  "fig6_speedup_summary"
  "fig6_speedup_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_speedup_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
