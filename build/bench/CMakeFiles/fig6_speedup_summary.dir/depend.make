# Empty dependencies file for fig6_speedup_summary.
# This may be replaced when dependencies are built.
