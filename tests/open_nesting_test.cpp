// Open-nesting semantics (the paper's third nesting model, §I): an
// open-nested child commits independently and globally; a parent abort runs
// registered compensating actions instead of rolling the child back.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/cluster.hpp"

namespace hyflow {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

struct OpenNesting : ::testing::Test {
  void SetUp() override {
    runtime::ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.workers_per_node = 0;
    cfg.topology.min_delay = sim_us(5);
    cfg.topology.max_delay = sim_us(80);
    cluster = std::make_unique<runtime::Cluster>(cfg);
    for (std::uint64_t i = 1; i <= 5; ++i) {
      cluster->create_object(std::make_unique<Box>(ObjectId{i}, 0),
                             static_cast<NodeId>(i % 3));
    }
  }
  void TearDown() override { cluster->shutdown(); }

  int read_value(ObjectId oid) {
    int v = -1;
    cluster->execute(0, 99, [&](tfa::Txn& tx) { v = tx.read<Box>(oid).value; });
    return v;
  }

  std::unique_ptr<runtime::Cluster> cluster;
};

TEST_F(OpenNesting, ChildEffectsVisibleBeforeParentCommits) {
  int observed_mid_parent = -1;
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.open_nested([&](tfa::Txn& child) { child.write<Box>(ObjectId{1}).value = 7; });
    // Another node sees the open-nested write while the parent is live —
    // the defining difference from closed nesting.
    cluster->execute(1, 2, [&](tfa::Txn& other) {
      observed_mid_parent = other.read<Box>(ObjectId{1}).value;
    });
    (void)tx;
  }).committed);
  EXPECT_EQ(observed_mid_parent, 7);
}

TEST_F(OpenNesting, ChildSurvivesParentAbortAndCompensationRuns) {
  std::atomic<int> attempts{0};
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    const int attempt = attempts.fetch_add(1);
    // Open-nested action with a semantic inverse.
    tx.open_nested(
        [&](tfa::Txn& child) { child.write<Box>(ObjectId{1}).value += 10; },
        [&](tfa::Txn& comp) { comp.write<Box>(ObjectId{1}).value -= 10; });
    (void)tx.read<Box>(ObjectId{2});
    tx.write<Box>(ObjectId{3}).value += 1;  // parent writes -> full validation
    if (attempt == 0) {
      // Rival invalidates the parent's read set -> parent aborts once.
      ASSERT_TRUE(cluster->execute(1, 2, [&](tfa::Txn& rival) {
        rival.write<Box>(ObjectId{2}).value += 1;
      }).committed);
    }
  }).committed);
  EXPECT_GE(attempts.load(), 2);
  // Attempt 0: +10, compensation -10; attempt 1: +10. Net: exactly one +10.
  EXPECT_EQ(read_value(ObjectId{1}), 10);
  const auto metrics = cluster->node(0).metrics().snapshot();
  EXPECT_GE(metrics.open_nested_commits, 2u);
  EXPECT_EQ(metrics.compensations_run, 1u);
}

TEST_F(OpenNesting, CompensationsRunNewestFirst) {
  std::vector<int> order;
  std::atomic<int> attempts{0};
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    const int attempt = attempts.fetch_add(1);
    if (attempt == 0) {
      tx.open_nested([&](tfa::Txn& c) { c.write<Box>(ObjectId{1}).value += 1; },
                     [&](tfa::Txn& comp) {
                       comp.write<Box>(ObjectId{1}).value -= 1;
                       order.push_back(1);
                     });
      tx.open_nested([&](tfa::Txn& c) { c.write<Box>(ObjectId{3}).value += 1; },
                     [&](tfa::Txn& comp) {
                       comp.write<Box>(ObjectId{3}).value -= 1;
                       order.push_back(2);
                     });
      tx.retry();  // force the parent abort
    }
  }).committed);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // newest compensation first
  EXPECT_EQ(order[1], 1);
  EXPECT_EQ(read_value(ObjectId{1}), 0);
  EXPECT_EQ(read_value(ObjectId{3}), 0);
}

TEST_F(OpenNesting, NoCompensationOnParentCommit) {
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.open_nested([&](tfa::Txn& c) { c.write<Box>(ObjectId{1}).value = 5; },
                   [&](tfa::Txn& comp) { comp.write<Box>(ObjectId{1}).value = -999; });
    tx.write<Box>(ObjectId{2}).value = 6;
  }).committed);
  EXPECT_EQ(read_value(ObjectId{1}), 5);
  EXPECT_EQ(read_value(ObjectId{2}), 6);
  EXPECT_EQ(cluster->node(0).metrics().snapshot().compensations_run, 0u);
}

TEST_F(OpenNesting, MixesWithClosedNesting) {
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.nested([&](tfa::Txn& closed) { closed.write<Box>(ObjectId{1}).value += 1; });
    tx.open_nested([&](tfa::Txn& open) { open.write<Box>(ObjectId{2}).value += 1; });
    tx.nested([&](tfa::Txn& closed) { closed.write<Box>(ObjectId{3}).value += 1; });
  }).committed);
  EXPECT_EQ(read_value(ObjectId{1}), 1);
  EXPECT_EQ(read_value(ObjectId{2}), 1);
  EXPECT_EQ(read_value(ObjectId{3}), 1);
}

TEST_F(OpenNesting, OpenChildDoesNotSeeParentUncommittedWrites) {
  // The documented open-nesting caveat: the independent child reads
  // committed global state.
  int child_saw = -1;
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(ObjectId{4}).value = 42;  // uncommitted parent write
    tx.open_nested([&](tfa::Txn& open) { child_saw = open.read<Box>(ObjectId{4}).value; });
  }).committed);
  EXPECT_EQ(child_saw, 0);
  EXPECT_EQ(read_value(ObjectId{4}), 42);
}

TEST_F(OpenNesting, OpenChildRetriesOnConflictIndependently) {
  // A rival storm on the open-nested child's object: the child's own retry
  // loop must absorb the conflicts without ever aborting the parent.
  std::atomic<bool> stop{false};
  std::jthread storm([&] {
    while (!stop.load()) {
      cluster->execute(2, 3, [&](tfa::Txn& tx) { tx.write<Box>(ObjectId{5}).value += 1; });
    }
  });
  const auto result = cluster->execute(0, 1, [&](tfa::Txn& tx) {
    for (int i = 0; i < 5; ++i) {
      tx.open_nested([&](tfa::Txn& open) { open.write<Box>(ObjectId{5}).value += 100; });
    }
  });
  stop.store(true);
  storm.join();
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.attempts, 1u);  // the parent itself never aborted
  // All five +100 increments landed despite the storm.
  EXPECT_GE(read_value(ObjectId{5}), 500);
}

}  // namespace
}  // namespace hyflow
