// Property-based suites (parameterised gtest):
//  * Bank conservation holds for every (scheduler x read-ratio x node-count)
//    point — the repository's strongest opacity check.
//  * Data structures match a sequential oracle under a single worker.
//  * RTS decision invariants hold across randomised conflict streams.
#include <gtest/gtest.h>

#include <set>

#include "core/rts_scheduler.hpp"
#include "runtime/experiment.hpp"
#include "workloads/bank.hpp"
#include "workloads/bst.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/rbtree.hpp"
#include "workloads/registry.hpp"

namespace hyflow {
namespace {

// ------------------------------------------- Bank conservation sweep -------

struct ConservationPoint {
  std::string scheduler;
  double read_ratio;
  std::uint32_t nodes;
};

class BankConservation : public ::testing::TestWithParam<ConservationPoint> {};

TEST_P(BankConservation, TotalBalanceInvariant) {
  const auto& p = GetParam();
  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = p.read_ratio;
  wcfg.objects_per_node = 5;
  wcfg.local_work = sim_us(50);
  workloads::BankWorkload bank(wcfg);

  runtime::ExperimentConfig cfg;
  cfg.cluster.nodes = p.nodes;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.scheduler.kind = p.scheduler;
  cfg.cluster.topology.min_delay = sim_us(20);
  cfg.cluster.topology.max_delay = sim_us(400);
  cfg.warmup = sim_ms(30);
  cfg.measure = sim_ms(200);

  const auto result = runtime::run_experiment(bank, cfg);
  EXPECT_TRUE(result.verified) << "conservation violated at " << p.scheduler << " rr="
                               << p.read_ratio << " nodes=" << p.nodes;
  EXPECT_GT(result.delta.commits_root, 0u);
}

std::vector<ConservationPoint> conservation_points() {
  std::vector<ConservationPoint> points;
  for (const char* sched : {"rts", "tfa", "backoff"}) {
    for (double rr : {0.1, 0.9}) {
      for (std::uint32_t nodes : {2u, 6u}) {
        points.push_back(ConservationPoint{sched, rr, nodes});
      }
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BankConservation, ::testing::ValuesIn(conservation_points()),
                         [](const ::testing::TestParamInfo<ConservationPoint>& info) {
                           std::string name = info.param.scheduler + "_rr" +
                                              std::to_string(int(info.param.read_ratio * 100)) +
                                              "_n" + std::to_string(info.param.nodes);
                           for (char& c : name)
                             if (c == '-' || c == '+') c = '_';
                           return name;
                         });

// -------------------------------------- sequential oracle equivalence ------

// Runs a workload's ops from a single worker on a single thread and checks
// the structure tracks a std::set oracle exactly. Catches data-structure
// logic bugs (traversal, linking, rebalancing) independent of concurrency.
template <typename WorkloadT>
void run_oracle_test(std::uint64_t seed) {
  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = 0.0;
  wcfg.objects_per_node = 8;
  wcfg.max_nested = 3;
  wcfg.local_work = 0;
  wcfg.seed = seed;
  WorkloadT wl(wcfg);

  runtime::ClusterConfig ccfg;
  ccfg.nodes = 3;
  ccfg.workers_per_node = 0;
  ccfg.topology.min_delay = sim_us(1);
  ccfg.topology.max_delay = sim_us(20);
  runtime::Cluster cluster(ccfg);
  wl.setup(cluster);

  Xoshiro256 rng(seed);
  for (int i = 0; i < 120; ++i) {
    auto op = wl.next_op(0, rng);
    ASSERT_TRUE(cluster.execute(0, op.profile, op.body).committed);
    ASSERT_TRUE(wl.verify(cluster)) << "structural audit failed after op " << i;
  }
  cluster.shutdown();
}

TEST(SequentialOracle, LinkedListStructureHolds) {
  run_oracle_test<workloads::LinkedListWorkload>(101);
}
TEST(SequentialOracle, LinkedListStructureHoldsSeed2) {
  run_oracle_test<workloads::LinkedListWorkload>(202);
}
TEST(SequentialOracle, BstStructureHolds) { run_oracle_test<workloads::BstWorkload>(303); }
TEST(SequentialOracle, BstStructureHoldsSeed2) {
  run_oracle_test<workloads::BstWorkload>(404);
}
TEST(SequentialOracle, RbTreeInvariantsHold) {
  run_oracle_test<workloads::RbTreeWorkload>(505);
}
TEST(SequentialOracle, RbTreeInvariantsHoldSeed2) {
  run_oracle_test<workloads::RbTreeWorkload>(606);
}

// Exact membership oracle for the linked list: every add/remove/contains is
// mirrored against a std::set and membership answers must agree throughout.
TEST(SequentialOracle, LinkedListMatchesSetOracle) {
  workloads::WorkloadConfig wcfg;
  wcfg.objects_per_node = 8;
  wcfg.local_work = 0;
  workloads::LinkedListWorkload wl(wcfg);

  runtime::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.workers_per_node = 0;
  ccfg.topology.min_delay = sim_us(1);
  ccfg.topology.max_delay = sim_us(20);
  runtime::Cluster cluster(ccfg);
  wl.setup(cluster);

  // Oracle starts with the even keys (initial list contents).
  std::set<std::int64_t> oracle;
  for (std::size_t k = 0; k < wl.universe(); k += 2)
    oracle.insert(static_cast<std::int64_t>(k));

  Xoshiro256 rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto key = static_cast<std::int64_t>(rng.below(wl.universe()));
    const int action = static_cast<int>(rng.below(3));
    bool found = false;
    ASSERT_TRUE(cluster
                    .execute(0, 1,
                             [&](tfa::Txn& tx) {
                               tx.nested([&](tfa::Txn& child) {
                                 switch (action) {
                                   case 0: wl.add(child, key); break;
                                   case 1: wl.remove(child, key); break;
                                   default: found = wl.contains(child, key); break;
                                 }
                               });
                             })
                    .committed);
    switch (action) {
      case 0: oracle.insert(key); break;
      case 1: oracle.erase(key); break;
      default: EXPECT_EQ(found, oracle.count(key) > 0) << "key " << key << " op " << i; break;
    }
  }
  // Final full-membership sweep.
  for (std::size_t k = 0; k < wl.universe(); ++k) {
    bool present = false;
    ASSERT_TRUE(cluster
                    .execute(1, 2,
                             [&](tfa::Txn& tx) {
                               present = wl.contains(tx, static_cast<std::int64_t>(k));
                             })
                    .committed);
    EXPECT_EQ(present, oracle.count(static_cast<std::int64_t>(k)) > 0) << "key " << k;
  }
  EXPECT_TRUE(wl.verify(cluster));
  cluster.shutdown();
}


// ------------------------------------------- vacation delete/reserve race --

// Regression for a double-release bug: concurrent delete_customer and
// make_reservation on a tiny customer population must never drive a
// resource's `used` negative (the stale-accumulator-across-child-retry bug
// found by the bench sweep).
TEST(VacationRace, ConcurrentDeleteAndReserveKeepInvariant) {
  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = 0.0;   // writes only: reserve/delete/update mix
  wcfg.objects_per_node = 4;
  wcfg.local_work = sim_us(20);
  auto vac = workloads::make_workload("vacation", wcfg);

  runtime::ExperimentConfig cfg;
  cfg.cluster.nodes = 4;
  cfg.cluster.workers_per_node = 3;
  cfg.cluster.scheduler.kind = "rts";
  cfg.cluster.topology.min_delay = sim_us(10);
  cfg.cluster.topology.max_delay = sim_us(200);
  cfg.warmup = sim_ms(30);
  cfg.measure = sim_ms(300);
  const auto result = runtime::run_experiment(*vac, cfg);
  EXPECT_GT(result.delta.commits_root, 0u);
  EXPECT_TRUE(result.verified) << "vacation used/reservation invariant violated";
}


// Membership oracles for the trees, mirroring the linked-list oracle: every
// mutation is mirrored into a std::set and membership must agree throughout,
// while the structural verifier (order/colour/black-height) stays green.
template <typename TreeT>
void run_tree_membership_oracle(std::uint64_t seed) {
  workloads::WorkloadConfig wcfg;
  wcfg.objects_per_node = 8;
  wcfg.local_work = 0;
  TreeT tree(wcfg);

  runtime::ClusterConfig ccfg;
  ccfg.nodes = 2;
  ccfg.workers_per_node = 0;
  ccfg.topology.min_delay = sim_us(1);
  ccfg.topology.max_delay = sim_us(20);
  runtime::Cluster cluster(ccfg);
  tree.setup(cluster);

  std::set<std::int64_t> oracle;
  for (std::size_t k = 0; k < tree.universe(); k += 2)
    oracle.insert(static_cast<std::int64_t>(k));

  Xoshiro256 rng(seed);
  for (int i = 0; i < 250; ++i) {
    const auto key = static_cast<std::int64_t>(rng.below(tree.universe()));
    const int action = static_cast<int>(rng.below(3));
    bool found = false;
    ASSERT_TRUE(cluster
                    .execute(0, 1,
                             [&](tfa::Txn& tx) {
                               switch (action) {
                                 case 0: tree.insert(tx, key); break;
                                 case 1: tree.remove(tx, key); break;
                                 default: found = tree.contains(tx, key); break;
                               }
                             })
                    .committed);
    switch (action) {
      case 0: oracle.insert(key); break;
      case 1: oracle.erase(key); break;
      default:
        EXPECT_EQ(found, oracle.count(key) > 0) << "key " << key << " op " << i;
        break;
    }
    if (i % 25 == 0) ASSERT_TRUE(tree.verify(cluster)) << "after op " << i;
  }
  EXPECT_TRUE(tree.verify(cluster));
  cluster.shutdown();
}

TEST(SequentialOracle, BstMatchesSetOracle) {
  run_tree_membership_oracle<workloads::BstWorkload>(911);
}
TEST(SequentialOracle, RbTreeMatchesSetOracle) {
  run_tree_membership_oracle<workloads::RbTreeWorkload>(912);
}
TEST(SequentialOracle, RbTreeMatchesSetOracleSeed2) {
  run_tree_membership_oracle<workloads::RbTreeWorkload>(913);
}

// --------------------------------------------- RTS decision properties -----

TEST(RtsProperties, QueueBoundedByThresholdUnderRandomStream) {
  core::SchedulerConfig cfg;
  cfg.kind = "rts";
  cfg.cl_threshold = 5;
  cfg.handoff_slack = sim_ms(1);
  core::RtsScheduler rts(cfg);

  Xoshiro256 rng(7);
  std::uint64_t enqueues = 0, aborts = 0;
  for (int i = 0; i < 5000; ++i) {
    core::ConflictContext ctx;
    const auto oid = ObjectId{1 + rng.below(4)};
    ctx.oid = oid;
    ctx.requester_node = static_cast<NodeId>(rng.below(8));
    ctx.request_msg_id = static_cast<std::uint64_t>(i) + 1;
    ctx.request.oid = oid;
    ctx.request.txid = TxnId{1 + rng.below(64)};
    ctx.request.mode = rng.chance(0.3) ? net::AccessMode::kRead : net::AccessMode::kWrite;
    ctx.request.requester_cl = static_cast<std::uint32_t>(rng.below(8));
    ctx.request.ets.start = 1000000;
    ctx.request.ets.request = 1000000 + static_cast<SimDuration>(rng.below(sim_ms(40)));
    ctx.request.ets.expected_commit = ctx.request.ets.request + sim_ms(2);
    ctx.validator_remaining = static_cast<SimDuration>(rng.below(sim_ms(3)));
    ctx.now = ctx.request.ets.request;

    const auto d = rts.on_conflict(ctx);
    if (d.action == core::ConflictAction::kEnqueue) {
      ++enqueues;
      EXPECT_GE(d.backoff, ctx.validator_remaining);
    } else {
      ++aborts;
      EXPECT_EQ(d.backoff, 0);
    }
    // Property: per-object cumulative queue CL never exceeds the threshold,
    // so queues stay shallow by construction.
    EXPECT_LE(rts.queue_depth(oid), 16u);
    if (rng.chance(0.05)) (void)rts.on_object_available(oid);  // drain sometimes
    if (rng.chance(0.02)) (void)rts.extract_queue(oid);
  }
  EXPECT_GT(enqueues, 0u);
  EXPECT_GT(aborts, 0u);
}

TEST(RtsProperties, WorkConservingHandoff) {
  // Whatever mix is queued, repeatedly popping head groups drains the queue
  // completely and never returns an empty group while non-empty.
  core::SchedulerConfig cfg;
  cfg.kind = "rts";
  cfg.cl_threshold = 100;
  core::RtsScheduler rts(cfg);
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 1 + static_cast<int>(rng.below(10));
    for (int i = 0; i < n; ++i) {
      core::ConflictContext ctx;
      ctx.oid = ObjectId{9};
      ctx.request.oid = ObjectId{9};
      ctx.request.txid = TxnId{static_cast<std::uint64_t>(trial * 100 + i + 1)};
      ctx.request.mode = rng.chance(0.5) ? net::AccessMode::kRead : net::AccessMode::kWrite;
      ctx.request.ets.start = 1;
      ctx.request.ets.request = 1 + sim_ms(100);
      ctx.request.ets.expected_commit = ctx.request.ets.request + sim_ms(1);
      ctx.request_msg_id = static_cast<std::uint64_t>(trial * 100 + i + 1);
      ASSERT_EQ(rts.on_conflict(ctx).action, core::ConflictAction::kEnqueue);
    }
    std::size_t drained = 0;
    while (rts.queue_depth(ObjectId{9}) > 0) {
      const auto group = rts.on_object_available(ObjectId{9});
      ASSERT_FALSE(group.empty());
      // Group is homogeneous: one writer, or all readers.
      if (group.size() > 1) {
        for (const auto& g : group) EXPECT_EQ(g.mode, net::AccessMode::kRead);
      }
      drained += group.size();
    }
    EXPECT_EQ(drained, static_cast<std::size_t>(n));
  }
}

}  // namespace
}  // namespace hyflow
