// Per-workload unit tests: object placement, operation-generation
// properties (read ratio, nesting bounds, key ranges), workload-specific
// behaviour (DHT key hashing, vacation booking/release/fallback, tree
// initial shapes), and negative tests showing the verifiers actually catch
// corruption.
#include <gtest/gtest.h>

#include <map>

#include "dsm/directory.hpp"
#include "runtime/cluster.hpp"
#include "workloads/bank.hpp"
#include "workloads/bst.hpp"
#include "workloads/dht.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/rbtree.hpp"
#include "workloads/registry.hpp"
#include "workloads/vacation.hpp"

namespace hyflow::workloads {
namespace {

WorkloadConfig quick_config(double read_ratio = 0.5) {
  WorkloadConfig cfg;
  cfg.read_ratio = read_ratio;
  cfg.objects_per_node = 6;
  cfg.max_nested = 4;
  cfg.local_work = 0;
  return cfg;
}

runtime::ClusterConfig quiet_cluster(std::uint32_t nodes = 4) {
  runtime::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.workers_per_node = 0;
  cfg.topology.min_delay = sim_us(1);
  cfg.topology.max_delay = sim_us(20);
  return cfg;
}

// ------------------------------------------------------------- registry ----

TEST(Registry, AllNamesConstruct) {
  for (const auto& name : workload_names()) {
    auto wl = make_workload(name, quick_config());
    ASSERT_NE(wl, nullptr);
    EXPECT_EQ(wl->name(), name);
  }
}

TEST(Registry, Aliases) {
  EXPECT_EQ(make_workload("ll", quick_config())->name(), "linked-list");
  EXPECT_EQ(make_workload("rbtree", quick_config())->name(), "rb-tree");
}

TEST(Registry, SixBenchmarks) { EXPECT_EQ(workload_names().size(), 6u); }

// ------------------------------------------------- op generation sweeps ----

class OpGeneration : public ::testing::TestWithParam<std::string> {};

TEST_P(OpGeneration, ReadRatioRespected) {
  auto wl = make_workload(GetParam(), quick_config(0.7));
  runtime::Cluster cluster(quiet_cluster());
  wl->setup(cluster);
  Xoshiro256 rng(5);
  int reads = 0;
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    const auto op = wl->next_op(0, rng);
    ASSERT_TRUE(static_cast<bool>(op.body));
    reads += op.is_read ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kOps, 0.7, 0.05);
  cluster.shutdown();
}

TEST_P(OpGeneration, PureReadAndPureWriteExtremes) {
  for (double rr : {0.0, 1.0}) {
    auto wl = make_workload(GetParam(), quick_config(rr));
    runtime::Cluster cluster(quiet_cluster());
    wl->setup(cluster);
    Xoshiro256 rng(9);
    for (int i = 0; i < 50; ++i) EXPECT_EQ(wl->next_op(0, rng).is_read, rr == 1.0);
    cluster.shutdown();
  }
}

TEST_P(OpGeneration, OpsCommitAndVerifyOnQuietCluster) {
  auto wl = make_workload(GetParam(), quick_config(0.3));
  runtime::Cluster cluster(quiet_cluster());
  wl->setup(cluster);
  Xoshiro256 rng(13);
  for (int i = 0; i < 40; ++i) {
    const auto op = wl->next_op(0, rng);
    EXPECT_TRUE(cluster.execute(0, op.profile, op.body).committed);
  }
  EXPECT_TRUE(wl->verify(cluster));
  cluster.shutdown();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, OpGeneration,
                         ::testing::ValuesIn(workload_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ----------------------------------------------------------------- bank ----

TEST(Bank, PlacementRoundRobin) {
  BankWorkload bank(quick_config());
  runtime::Cluster cluster(quiet_cluster(4));
  bank.setup(cluster);
  EXPECT_EQ(bank.accounts().size(), 4u * 6u);
  // Account i starts at node i % 4.
  for (std::size_t i = 0; i < bank.accounts().size(); ++i)
    EXPECT_TRUE(cluster.node(static_cast<NodeId>(i % 4)).store().owns(bank.accounts()[i]));
  cluster.shutdown();
}

TEST(Bank, VerifyCatchesCorruption) {
  BankWorkload bank(quick_config());
  runtime::Cluster cluster(quiet_cluster(2));
  bank.setup(cluster);
  ASSERT_TRUE(bank.verify(cluster));
  // Counterfeit money: bump one account outside any transaction.
  const ObjectId victim = bank.accounts()[0];
  auto slot = cluster.node(0).store().get(victim);
  ASSERT_TRUE(slot.has_value());
  auto forged = slot->object->clone();
  object_cast<Account>(*forged).deposit(1);
  cluster.node(0).store().install(ObjectSnapshot{std::move(forged)}, slot->version);
  EXPECT_FALSE(bank.verify(cluster));
  cluster.shutdown();
}

TEST(Bank, TransfersPreserveTotalSequentially) {
  BankWorkload bank(quick_config(0.0));
  runtime::Cluster cluster(quiet_cluster(3));
  bank.setup(cluster);
  Xoshiro256 rng(31);
  for (int i = 0; i < 60; ++i) {
    const auto op = bank.next_op(0, rng);
    ASSERT_TRUE(cluster.execute(0, op.profile, op.body).committed);
  }
  EXPECT_TRUE(bank.verify(cluster));
  cluster.shutdown();
}

// ------------------------------------------------------------------ dht ----

TEST(Dht, KeysHashToStableBuckets) {
  DhtWorkload dht(quick_config());
  runtime::Cluster cluster(quiet_cluster(4));
  dht.setup(cluster);
  for (std::uint64_t key = 0; key < 100; ++key)
    EXPECT_EQ(dht.bucket_index_of(key), dht.bucket_index_of(key));
  cluster.shutdown();
}

TEST(Dht, PutThenGetRoundTrips) {
  DhtWorkload dht(quick_config(0.0));
  runtime::Cluster cluster(quiet_cluster(3));
  dht.setup(cluster);
  Xoshiro256 rng(7);
  // Drive puts, then verify structural placement via the workload verifier.
  for (int i = 0; i < 30; ++i) {
    const auto op = dht.next_op(0, rng);
    ASSERT_TRUE(cluster.execute(0, op.profile, op.body).committed);
  }
  EXPECT_TRUE(dht.verify(cluster));
  cluster.shutdown();
}

TEST(Dht, VerifyCatchesMisplacedKey) {
  DhtWorkload dht(quick_config());
  runtime::Cluster cluster(quiet_cluster(2));
  dht.setup(cluster);
  // Plant a key into a bucket it does not hash to.
  std::uint64_t key = 0;
  while (dht.bucket_index_of(key) == 0) ++key;
  const ObjectId bucket0 = make_oid(IdSpace::kDhtBucket, 0);
  auto slot = cluster.node(0).store().get(bucket0);
  ASSERT_TRUE(slot.has_value());
  auto forged = slot->object->clone();
  object_cast<Bucket>(*forged).put(key, 1);
  cluster.node(0).store().install(ObjectSnapshot{std::move(forged)}, slot->version);
  EXPECT_FALSE(dht.verify(cluster));
  cluster.shutdown();
}

// ---------------------------------------------------------- linked list ----

TEST(LinkedList, InitialListSortedEvensOnly) {
  LinkedListWorkload ll(quick_config());
  runtime::Cluster cluster(quiet_cluster(3));
  ll.setup(cluster);
  ASSERT_TRUE(ll.verify(cluster));
  // Every even key present, every odd key absent.
  for (std::size_t k = 0; k < ll.universe(); ++k) {
    bool present = false;
    cluster.execute(0, 1, [&](tfa::Txn& tx) {
      present = ll.contains(tx, static_cast<std::int64_t>(k));
    });
    EXPECT_EQ(present, k % 2 == 0) << "key " << k;
  }
  cluster.shutdown();
}

TEST(LinkedList, AddRemoveIdempotent) {
  LinkedListWorkload ll(quick_config());
  runtime::Cluster cluster(quiet_cluster(2));
  ll.setup(cluster);
  auto run = [&](auto fn) {
    ASSERT_TRUE(cluster.execute(0, 1, [&](tfa::Txn& tx) { fn(tx); }).committed);
  };
  run([&](tfa::Txn& tx) { ll.add(tx, 1); });
  run([&](tfa::Txn& tx) { ll.add(tx, 1); });  // second add: no-op
  EXPECT_TRUE(ll.verify(cluster));
  run([&](tfa::Txn& tx) { ll.remove(tx, 1); });
  run([&](tfa::Txn& tx) { ll.remove(tx, 1); });  // second remove: no-op
  EXPECT_TRUE(ll.verify(cluster));
  bool present = true;
  run([&](tfa::Txn& tx) { present = ll.contains(tx, 1); });
  EXPECT_FALSE(present);
  cluster.shutdown();
}

TEST(LinkedList, VerifyCatchesCycle) {
  LinkedListWorkload ll(quick_config());
  runtime::Cluster cluster(quiet_cluster(2));
  ll.setup(cluster);
  // Corrupt: point slot 0's next back at itself.
  const ObjectId slot0 = make_oid(IdSpace::kListNode, 0);
  for (NodeId n = 0; n < 2; ++n) {
    if (auto slot = cluster.node(n).store().get(slot0)) {
      auto forged = slot->object->clone();
      object_cast<ListNode>(*forged).set_next(slot0);
      cluster.node(n).store().install(ObjectSnapshot{std::move(forged)}, slot->version);
    }
  }
  EXPECT_FALSE(ll.verify(cluster));
  cluster.shutdown();
}

// ------------------------------------------------------------ bst / rb -----

TEST(Bst, InitialTreeValidAndEvensPresent) {
  BstWorkload bst(quick_config());
  runtime::Cluster cluster(quiet_cluster(3));
  bst.setup(cluster);
  EXPECT_TRUE(bst.verify(cluster));
  cluster.shutdown();
}

TEST(RbTree, InitialTreeSatisfiesAllInvariants) {
  RbTreeWorkload rb(quick_config());
  runtime::Cluster cluster(quiet_cluster(3));
  rb.setup(cluster);
  EXPECT_TRUE(rb.verify(cluster));
  cluster.shutdown();
}

TEST(RbTree, VerifyCatchesRedRedViolation) {
  RbTreeWorkload rb(quick_config());
  runtime::Cluster cluster(quiet_cluster(2));
  rb.setup(cluster);
  // Paint every node red: guaranteed red-red (or red root) violation.
  bool corrupted = false;
  for (NodeId n = 0; n < 2 && !corrupted; ++n) {
    for (const ObjectId oid : cluster.node(n).store().owned_ids()) {
      const auto slot = cluster.node(n).store().get(oid);
      auto forged = slot->object->clone();
      if (auto* node = dynamic_cast<RbNode*>(forged.get()); node && !node->red()) {
        node->set_red(true);
        cluster.node(n).store().install(ObjectSnapshot{std::move(forged)}, slot->version);
        corrupted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(rb.verify(cluster));
  cluster.shutdown();
}

// ------------------------------------------------------------- vacation ----

TEST(Vacation, SetupPopulatesAllThreeKinds) {
  VacationWorkload vac(quick_config());
  runtime::Cluster cluster(quiet_cluster(4));
  vac.setup(cluster);
  EXPECT_TRUE(vac.verify(cluster));  // zero reservations, zero used
  // Count shards by kind across stores.
  std::map<ResourceKind, int> kinds;
  int customer_shards = 0;
  for (NodeId n = 0; n < 4; ++n) {
    for (const ObjectId oid : cluster.node(n).store().owned_ids()) {
      const auto snap = cluster.node(n).store().get(oid)->object;
      if (const auto* rs = dynamic_cast<const ResourceShard*>(snap.get())) {
        kinds[rs->kind()] += 1;
        EXPECT_FALSE(rs->items().empty());
      } else if (dynamic_cast<const CustomerShard*>(snap.get())) {
        ++customer_shards;
      }
    }
  }
  EXPECT_EQ(kinds.size(), 3u);
  EXPECT_GT(customer_shards, 0);
  cluster.shutdown();
}

TEST(Vacation, ReserveThenDeleteBalancesOut) {
  VacationWorkload vac(quick_config(0.0));
  runtime::Cluster cluster(quiet_cluster(3));
  vac.setup(cluster);
  Xoshiro256 rng(77);
  for (int i = 0; i < 80; ++i) {
    const auto op = vac.next_op(0, rng);
    ASSERT_TRUE(cluster.execute(0, op.profile, op.body).committed);
    ASSERT_TRUE(vac.verify(cluster)) << "reservation invariant broke after op " << i;
  }
  cluster.shutdown();
}

TEST(Vacation, VerifyCatchesPhantomReservation) {
  VacationWorkload vac(quick_config());
  runtime::Cluster cluster(quiet_cluster(2));
  vac.setup(cluster);
  // Bump `used` on some resource without a matching customer record.
  bool corrupted = false;
  for (NodeId n = 0; n < 2 && !corrupted; ++n) {
    for (const ObjectId oid : cluster.node(n).store().owned_ids()) {
      const auto slot = cluster.node(n).store().get(oid);
      auto forged = slot->object->clone();
      if (auto* rs = dynamic_cast<ResourceShard*>(forged.get());
          rs && !rs->items().empty()) {
        rs->items().begin()->second.used += 1;
        cluster.node(n).store().install(ObjectSnapshot{std::move(forged)}, slot->version);
        corrupted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(vac.verify(cluster));
  cluster.shutdown();
}

}  // namespace
}  // namespace hyflow::workloads
