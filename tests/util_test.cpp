// Unit tests for the util substrate: bloom filter, online stats, histogram,
// RNG, config parsing, blocking queue and spinlock.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <numeric>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/blocking_queue.hpp"
#include "util/bloom_filter.hpp"
#include "util/config.hpp"
#include "util/histogram.hpp"
#include "util/json_writer.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace hyflow {
namespace {

// ---------------------------------------------------------------- Bloom ----

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter(1 << 12, 5);
  for (std::uint64_t k = 0; k < 500; ++k) filter.insert(k * 7919);
  for (std::uint64_t k = 0; k < 500; ++k) EXPECT_TRUE(filter.maybe_contains(k * 7919));
}

TEST(BloomFilter, FalsePositiveRateNearTheory) {
  BloomFilter filter(1 << 14, 7);
  for (std::uint64_t k = 0; k < 1000; ++k) filter.insert(k);
  std::size_t false_positives = 0;
  const std::size_t probes = 20000;
  for (std::uint64_t k = 0; k < probes; ++k) {
    if (filter.maybe_contains(1'000'000 + k)) ++false_positives;
  }
  const double measured = static_cast<double>(false_positives) / probes;
  // Theory predicts ~1%; accept up to 4x.
  EXPECT_LT(measured, 4 * std::max(filter.estimated_fpr(), 0.01));
}

TEST(BloomFilter, ClearResets) {
  BloomFilter filter(1 << 10, 4);
  filter.insert(42);
  EXPECT_TRUE(filter.maybe_contains(42));
  EXPECT_EQ(filter.inserted(), 1u);
  filter.clear();
  EXPECT_FALSE(filter.maybe_contains(42));
  EXPECT_EQ(filter.inserted(), 0u);
  EXPECT_DOUBLE_EQ(filter.fill_ratio(), 0.0);
}

TEST(BloomFilter, FillRatioGrowsWithInserts) {
  BloomFilter filter(1 << 10, 4);
  double last = filter.fill_ratio();
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t k = 0; k < 64; ++k)
      filter.insert(static_cast<std::uint64_t>(round) * 1000 + k);
    const double now = filter.fill_ratio();
    EXPECT_GT(now, last);
    last = now;
  }
  EXPECT_LE(last, 1.0);
}

TEST(BloomFilter, RoundsBitsUpToPowerOfTwo) {
  BloomFilter filter(1000, 3);
  EXPECT_EQ(filter.bit_count(), 1024u);
  BloomFilter tiny(1, 1);
  EXPECT_EQ(tiny.bit_count(), 64u);
}

// ---------------------------------------------------------------- Stats ----

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 4.0, 1e-9);
  EXPECT_NEAR(stats.stddev(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSinglePass) {
  Xoshiro256 rng(123);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 100;
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 3.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma ewma(0.5);
  EXPECT_FALSE(ewma.seeded());
  ewma.add(10.0);
  EXPECT_TRUE(ewma.seeded());
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma ewma(0.3, 0.0);
  for (int i = 0; i < 100; ++i) ewma.add(42.0);
  EXPECT_NEAR(ewma.value(), 42.0, 1e-6);
}

TEST(Ewma, SmoothsSteps) {
  Ewma ewma(0.2);
  ewma.add(0.0);
  ewma.add(100.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 20.0);
  ewma.reset(5.0);
  EXPECT_FALSE(ewma.seeded());
  EXPECT_DOUBLE_EQ(ewma.value(), 5.0);
}

// ------------------------------------------------------------ Histogram ----

TEST(Histogram, PercentilesOnUniform) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.add(v);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(static_cast<double>(h.value_at_percentile(50)), 5000.0, 5000 * 0.05);
  EXPECT_NEAR(static_cast<double>(h.value_at_percentile(99)), 9900.0, 9900 * 0.05);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 10000u);
  EXPECT_NEAR(h.mean(), 5000.5, 1.0);
}

TEST(Histogram, SmallValuesExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.add(v);
  EXPECT_EQ(h.value_at_percentile(0), 0u);
  EXPECT_EQ(h.value_at_percentile(100), 31u);
}

TEST(Histogram, MergeEqualsCombined) {
  Histogram a, b, combined;
  Xoshiro256 rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(1 << 20);
    combined.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.value_at_percentile(50), combined.value_at_percentile(50));
  EXPECT_EQ(a.value_at_percentile(95), combined.value_at_percentile(95));
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.add(100);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.value_at_percentile(50), 0u);
}

// Regression: a single sample must be returned exactly for every percentile.
// The old interpolation returned the bucket midpoint, which for a value at
// the low edge of a wide log bucket overshot by up to half the bucket width.
TEST(Histogram, SingleSampleExactAtEveryPercentile) {
  Histogram h;
  const std::uint64_t v = 1'015'807;  // low edge of a 2^15-wide bucket
  h.add(v);
  for (const double p : {0.0, 1.0, 50.0, 99.0, 100.0})
    EXPECT_EQ(h.value_at_percentile(p), v) << "p=" << p;
}

// Regression: p=0 must map to the smallest recorded sample, not to 0 or a
// value below the recorded minimum.
TEST(Histogram, PercentileZeroIsTheMinimum) {
  Histogram h;
  h.add(1000);
  for (int i = 0; i < 999; ++i) h.add(1'000'000);
  EXPECT_GE(h.value_at_percentile(0), h.min());
  EXPECT_NEAR(static_cast<double>(h.value_at_percentile(0)), 1000.0, 1000.0 / 16);
  EXPECT_EQ(h.value_at_percentile(100), h.max());
}

// Percentiles are clamped to [min, max] and monotone in p.
TEST(Histogram, PercentilesClampedAndMonotone) {
  Histogram h;
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) h.add(500 + rng.below(1 << 22));
  std::uint64_t prev = 0;
  for (double p = 0.0; p <= 100.0; p += 0.5) {
    const std::uint64_t v = h.value_at_percentile(p);
    EXPECT_GE(v, h.min()) << "p=" << p;
    EXPECT_LE(v, h.max()) << "p=" << p;
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

// Values above the configured range are counted (clamped into the top
// bucket) and reported via overflow_count() instead of silently skewing.
TEST(Histogram, OverflowCountedNotDropped) {
  Histogram h(1000);
  h.add(500);
  h.add(1u << 20);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow_count(), 1u);
  EXPECT_EQ(h.max(), 1u << 20);  // true extreme still tracked
  EXPECT_LE(h.value_at_percentile(100), std::uint64_t{1} << 20);
}

TEST(Histogram, MergeAddsOverflow) {
  Histogram a(1000), b(1000);
  a.add(2000);
  b.add(3000);
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.overflow_count(), 2u);
}

// subtract() turns two monotonic snapshots into the window in between.
TEST(Histogram, SubtractLeavesTheWindow) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.add(100);
  const Histogram before = h;
  for (int i = 0; i < 1000; ++i) h.add(10000);
  h.subtract(before);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_NEAR(static_cast<double>(h.value_at_percentile(50)), 10000.0, 10000.0 / 16);
  EXPECT_GT(h.min(), 100u);  // the pre-window samples are gone
}

// ----------------------------------------------------------- JsonWriter ----

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonWriter::escape("\n\r\t\b\f"), "\\n\\r\\t\\b\\f");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(JsonWriter, CompactNestedDocument) {
  JsonWriter w(0);
  w.begin_object();
  w.key("a").begin_array().value(1).value(2.5).end_array();
  w.field("s", "x\"y").field("b", true).key("n").null();
  w.key("o").begin_object().field("k", std::uint64_t{7}).end_object();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{\"a\":[1,2.5],\"s\":\"x\\\"y\",\"b\":true,\"n\":null,"
                     "\"o\":{\"k\":7}}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w(0);
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.value(-std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, IndentedOutputIsStable) {
  JsonWriter w(2);
  w.begin_object().field("k", 1).end_object();
  EXPECT_EQ(w.str(), "{\n  \"k\": 1\n}");
}

TEST(JsonWriter, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/json_writer_test.json";
  JsonWriter w;
  w.begin_object().field("x", 42).end_object();
  ASSERT_TRUE(write_text_file(path, w.str()));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), w.str());
  std::remove(path.c_str());
}

// ------------------------------------------------------------------ RNG ----

TEST(Rng, DeterministicBySeed) {
  Xoshiro256 a(99), b(99), c(100);
  bool differs_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    EXPECT_EQ(va, vb);
    differs_from_c |= (va != vc);
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, BelowZeroIsZero) {
  Xoshiro256 rng(17);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

// --------------------------------------------------------------- Config ----

TEST(Config, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "--nodes=40", "--verbose", "--ratio=0.25", "positional",
                        "--name=bank"};
  auto cfg = Config::from_args(6, const_cast<char**>(argv));
  EXPECT_EQ(cfg.get_int("nodes", 0), 40);
  EXPECT_TRUE(cfg.get_bool("verbose", false));
  EXPECT_DOUBLE_EQ(cfg.get_double("ratio", 0.0), 0.25);
  EXPECT_EQ(cfg.get_string("name", ""), "bank");
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "positional");
}

TEST(Config, DefaultsWhenAbsent) {
  Config cfg;
  EXPECT_EQ(cfg.get_int("missing", 7), 7);
  EXPECT_EQ(cfg.get_string("missing", "d"), "d");
  EXPECT_FALSE(cfg.get_bool("missing", false));
}

TEST(Config, IntListParsing) {
  Config cfg;
  cfg.set("nodes", "10,20,40,80");
  const auto list = cfg.get_int_list("nodes", {});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[3], 80);
  const auto fallback = cfg.get_int_list("absent", {1, 2});
  ASSERT_EQ(fallback.size(), 2u);
}

// -------------------------------------------------------- BlockingQueue ----

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.pop().value(), i);
}

TEST(BlockingQueue, CloseUnblocksAndDrains) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));               // rejected after close
  EXPECT_EQ(q.pop().value(), 1);         // drains remaining
  EXPECT_FALSE(q.pop().has_value());     // then signals end
}

TEST(BlockingQueue, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::jthread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(42);
  });
  EXPECT_EQ(q.pop().value(), 42);
}

TEST(BlockingQueue, ConcurrentProducersConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 2000;
  constexpr int kProducers = 4;
  std::atomic<long long> sum{0};
  std::atomic<long long> count{0};
  std::vector<std::jthread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum.fetch_add(*v);
        count.fetch_add(1);
      }
    });
  }
  {
    std::vector<std::jthread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&q, p] {
        for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
      });
    }
  }  // producers joined
  q.close();
  consumers.clear();  // consumers drain and exit
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(count.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(SpinLock, MutualExclusion) {
  SpinLock lock;
  long long counter = 0;
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 20000; ++i) {
          std::scoped_lock lk(lock);
          ++counter;
        }
      });
    }
  }
  EXPECT_EQ(counter, 80000);
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Time, StopwatchMonotone) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const auto e1 = sw.elapsed();
  EXPECT_GE(e1, sim_ms(4));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GT(sw.elapsed(), e1);
}

}  // namespace
}  // namespace hyflow
