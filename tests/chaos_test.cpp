// Chaos suite: the protocol under an adversarial network.
//
// Unit tests pin down the fault injector's mechanics (every fault class,
// window arithmetic, and the determinism guarantee: identical message
// streams + identical seed => identical injected faults). The chaos runs
// then drive the bank workload through drop + duplication + a node
// crash/recovery window and assert the two properties that matter:
// liveness (the run finishes well before a hard deadline — no wedged locks,
// no stranded queues) and safety (exact balance conservation).
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "net/fault_injector.hpp"
#include "net/message.hpp"
#include "runtime/experiment.hpp"
#include "workloads/bank.hpp"

namespace hyflow {
namespace {

net::Message make_msg(std::uint64_t id, NodeId from, NodeId to) {
  net::Message m;
  m.msg_id = id;
  m.from = from;
  m.to = to;
  m.payload = net::FindOwnerRequest{ObjectId{id}};
  return m;
}

// ------------------------------------------------- injector mechanics ------

TEST(FaultInjector, DropAllLosesEveryMessage) {
  net::FaultPlan plan;
  plan.drop = 1.0;
  net::FaultInjector inj(plan);
  inj.arm(0);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    const auto fate = inj.on_send(make_msg(id, 0, 1), 0);
    EXPECT_FALSE(fate.deliver);
  }
  EXPECT_EQ(inj.stats().dropped.load(), 100u);
  EXPECT_EQ(inj.stats().duplicated.load(), 0u);
}

TEST(FaultInjector, DuplicateAllFlagsEveryMessage) {
  net::FaultPlan plan;
  plan.duplicate = 1.0;
  net::FaultInjector inj(plan);
  inj.arm(0);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    const auto fate = inj.on_send(make_msg(id, 0, 1), 0);
    EXPECT_TRUE(fate.deliver);
    EXPECT_TRUE(fate.duplicate);
  }
  EXPECT_EQ(inj.stats().duplicated.load(), 100u);
}

TEST(FaultInjector, DelaySpikesAreBoundedAndCounted) {
  net::FaultPlan plan;
  plan.delay = 1.0;
  plan.delay_spike = sim_ms(2);
  net::FaultInjector inj(plan);
  inj.arm(0);
  for (std::uint64_t id = 1; id <= 100; ++id) {
    const auto fate = inj.on_send(make_msg(id, 0, 1), 0);
    EXPECT_TRUE(fate.deliver);
    EXPECT_GT(fate.extra_delay, 0);
    EXPECT_LE(fate.extra_delay, sim_ms(2) + 1);
  }
  EXPECT_EQ(inj.stats().delayed.load(), 100u);
}

TEST(FaultInjector, CrashWindowDarkensNodeBothDirections) {
  net::FaultPlan plan;
  plan.crashes.push_back({/*node=*/1, /*start=*/sim_ms(10), /*end=*/sim_ms(20)});
  net::FaultInjector inj(plan);
  inj.arm(sim_ms(1000));  // windows are offsets from the arm epoch

  // Before the window.
  EXPECT_TRUE(inj.on_send(make_msg(1, 0, 1), sim_ms(1005)).deliver);
  // Inside: messages to and from the dark node are lost.
  EXPECT_FALSE(inj.on_send(make_msg(2, 0, 1), sim_ms(1015)).deliver);
  EXPECT_FALSE(inj.on_send(make_msg(3, 1, 0), sim_ms(1015)).deliver);
  // Unrelated links keep working.
  EXPECT_TRUE(inj.on_send(make_msg(4, 0, 2), sim_ms(1015)).deliver);
  // Recovery: the window is half-open.
  EXPECT_TRUE(inj.on_send(make_msg(5, 0, 1), sim_ms(1020)).deliver);
  EXPECT_EQ(inj.stats().crash_dropped.load(), 2u);
}

TEST(FaultInjector, PartitionWindowCutsTheCluster) {
  net::FaultPlan plan;
  plan.partitions.push_back({/*start=*/sim_ms(0), /*end=*/sim_ms(10), /*cut=*/2});
  net::FaultInjector inj(plan);
  inj.arm(0);

  // Crossing the cut (0,1 | 2,3) is dropped; same-side traffic flows.
  EXPECT_FALSE(inj.on_send(make_msg(1, 0, 2), sim_ms(5)).deliver);
  EXPECT_FALSE(inj.on_send(make_msg(2, 3, 1), sim_ms(5)).deliver);
  EXPECT_TRUE(inj.on_send(make_msg(3, 0, 1), sim_ms(5)).deliver);
  EXPECT_TRUE(inj.on_send(make_msg(4, 2, 3), sim_ms(5)).deliver);
  // Healed after the window.
  EXPECT_TRUE(inj.on_send(make_msg(5, 0, 2), sim_ms(10)).deliver);
  EXPECT_EQ(inj.stats().partition_dropped.load(), 2u);
}

TEST(FaultInjector, SameSeedSameStreamInjectsIdenticalFaults) {
  // The acceptance property behind --fault-seed: per-message decisions are
  // pure functions of (msg_id, seed), so identical streams produce
  // identical fault counts AND identical per-message fates.
  net::FaultPlan plan;
  plan.drop = 0.1;
  plan.duplicate = 0.05;
  plan.delay = 0.2;
  plan.seed = 12345;
  net::FaultInjector a(plan);
  net::FaultInjector b(plan);
  a.arm(0);
  b.arm(0);

  for (std::uint64_t id = 1; id <= 5000; ++id) {
    const auto fa = a.on_send(make_msg(id, id % 4, (id + 1) % 4), 0);
    const auto fb = b.on_send(make_msg(id, id % 4, (id + 1) % 4), 0);
    ASSERT_EQ(fa.deliver, fb.deliver) << "msg " << id;
    ASSERT_EQ(fa.duplicate, fb.duplicate) << "msg " << id;
    ASSERT_EQ(fa.extra_delay, fb.extra_delay) << "msg " << id;
  }
  EXPECT_EQ(a.stats().dropped.load(), b.stats().dropped.load());
  EXPECT_EQ(a.stats().duplicated.load(), b.stats().duplicated.load());
  EXPECT_EQ(a.stats().delayed.load(), b.stats().delayed.load());
  EXPECT_GT(a.stats().total(), 0u);  // the plan actually fired
}

TEST(FaultInjector, DifferentSeedInjectsDifferentPattern) {
  net::FaultPlan plan;
  plan.drop = 0.5;
  plan.seed = 1;
  net::FaultPlan other = plan;
  other.seed = 2;
  net::FaultInjector a(plan);
  net::FaultInjector b(other);
  a.arm(0);
  b.arm(0);

  bool diverged = false;
  for (std::uint64_t id = 1; id <= 1000; ++id) {
    const bool da = a.on_send(make_msg(id, 0, 1), 0).deliver;
    const bool db = b.on_send(make_msg(id, 0, 1), 0).deliver;
    diverged = diverged || (da != db);
  }
  EXPECT_TRUE(diverged);
}

// ------------------------------------------------------- chaos runs --------

// Runs the bank workload under `plan` with a hard liveness deadline: the
// run must finish — commit transactions, quiesce, shut down — long before
// the deadline, and the balance total must be exactly conserved.
void run_bank_chaos(const net::FaultPlan& plan, SimDuration warmup, SimDuration measure,
                    const std::string& scheduler = "rts") {
  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = 0.2;
  wcfg.objects_per_node = 5;
  wcfg.local_work = sim_us(50);
  workloads::BankWorkload bank(wcfg);

  runtime::ExperimentConfig cfg;
  cfg.cluster.nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.scheduler.kind = scheduler;
  cfg.cluster.topology.min_delay = sim_us(20);
  cfg.cluster.topology.max_delay = sim_us(400);
  cfg.cluster.fault = plan;
  cfg.warmup = warmup;
  cfg.measure = measure;

  auto future = std::async(std::launch::async,
                           [&] { return runtime::run_experiment(bank, cfg); });
  // Liveness: generous wall-clock bound (the run itself is < 1s of sim
  // time); missing it means a wedged lock or a stranded queue.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(120)), std::future_status::ready)
      << "chaos run hung: liveness violated";
  const auto result = future.get();
  EXPECT_GT(result.delta.commits_root, 0u) << "no progress under faults";
  EXPECT_TRUE(result.verified) << "conservation violated under faults";
}

TEST(Chaos, BankSurvivesDropAndDuplication) {
  // The ISSUE's acceptance point: 2% drop + 1% duplication.
  net::FaultPlan plan;
  plan.drop = 0.02;
  plan.duplicate = 0.01;
  plan.seed = 42;
  run_bank_chaos(plan, sim_ms(50), sim_ms(300));
}

TEST(Chaos, BankSurvivesCrashRecoveryWindow) {
  // Node 1 goes dark for 40ms mid-measurement and recovers with its state
  // (objects, locks, queues) intact; the retry budget (~200ms) rides it out.
  net::FaultPlan plan;
  plan.drop = 0.01;
  plan.duplicate = 0.01;
  plan.seed = 7;
  plan.crashes.push_back({/*node=*/1, /*start=*/sim_ms(120), /*end=*/sim_ms(160)});
  run_bank_chaos(plan, sim_ms(50), sim_ms(300));
}

TEST(Chaos, BankSurvivesTailSpikesAndDrops) {
  net::FaultPlan plan;
  plan.drop = 0.05;
  plan.duplicate = 0.02;
  plan.delay = 0.10;
  plan.delay_spike = sim_ms(2);
  plan.seed = 99;
  run_bank_chaos(plan, sim_ms(40), sim_ms(250));
}

// Every scheduler policy — including the zoo challengers with their parked
// queues and priority hand-offs — must keep both chaos properties (liveness
// and exact conservation) under drop + duplication. A policy whose queue
// leaks a requester when the grant path loses messages hangs here.
class ChaosPolicySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ChaosPolicySweep, BankSurvivesDropAndDuplication) {
  net::FaultPlan plan;
  plan.drop = 0.02;
  plan.duplicate = 0.01;
  plan.seed = 42;
  run_bank_chaos(plan, sim_ms(40), sim_ms(200), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Zoo, ChaosPolicySweep,
                         ::testing::ValuesIn(core::scheduler_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-' || c == '+') c = '_';
                           return name;
                         });

TEST(Chaos, DegradationCountersSurfaceInTheReport) {
  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = 0.2;
  wcfg.objects_per_node = 4;
  wcfg.local_work = sim_us(50);
  workloads::BankWorkload bank(wcfg);

  runtime::ExperimentConfig cfg;
  cfg.cluster.nodes = 3;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.scheduler.kind = "rts";
  cfg.cluster.topology.min_delay = sim_us(20);
  cfg.cluster.topology.max_delay = sim_us(300);
  cfg.cluster.fault.drop = 0.05;
  cfg.cluster.fault.duplicate = 0.02;
  cfg.cluster.fault.seed = 3;
  cfg.warmup = sim_ms(30);
  cfg.measure = sim_ms(250);
  const auto result = runtime::run_experiment(bank, cfg);
  EXPECT_TRUE(result.verified);
  // Dropped requests/replies must show up as retries, and duplicated or
  // retried requests as dedup hits — the observability half of the tentpole.
  EXPECT_GT(result.delta.rpc_retries, 0u);
  EXPECT_GT(result.delta.dedup_hits, 0u);
}

}  // namespace
}  // namespace hyflow
