// Cross-module integration tests: every workload runs against a live
// multi-node cluster under load and passes its own invariant audit; the
// cluster-wide ownership invariant holds after quiesce; the scheduler paths
// (enqueue/hand-off/not-interested) are actually exercised.
#include <gtest/gtest.h>

#include <set>

#include "dsm/directory.hpp"
#include "runtime/experiment.hpp"
#include "workloads/registry.hpp"

namespace hyflow {
namespace {

runtime::ExperimentConfig small_experiment(const std::string& scheduler, double read_ratio) {
  runtime::ExperimentConfig cfg;
  cfg.cluster.nodes = 4;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.scheduler.kind = scheduler;
  cfg.cluster.scheduler.cl_threshold = 6;
  cfg.cluster.topology.min_delay = sim_us(20);
  cfg.cluster.topology.max_delay = sim_us(500);
  cfg.warmup = sim_ms(40);
  cfg.measure = sim_ms(250);
  (void)read_ratio;
  return cfg;
}

workloads::WorkloadConfig small_workload(double read_ratio) {
  workloads::WorkloadConfig cfg;
  cfg.read_ratio = read_ratio;
  cfg.objects_per_node = 6;
  cfg.max_nested = 4;
  cfg.local_work = sim_us(100);
  return cfg;
}

// One test per (workload x scheduler): runs under load, must commit work
// and pass the workload's invariant audit.
struct WorkloadCase {
  std::string workload;
  std::string scheduler;
};

class WorkloadIntegration : public ::testing::TestWithParam<WorkloadCase> {};

TEST_P(WorkloadIntegration, RunsAndVerifies) {
  const auto& param = GetParam();
  auto wl = workloads::make_workload(param.workload, small_workload(0.5));
  const auto result = runtime::run_experiment(*wl, small_experiment(param.scheduler, 0.5));
  EXPECT_GT(result.delta.commits_root, 0u) << "no transaction committed";
  EXPECT_TRUE(result.verified) << "invariant audit failed";
}

std::vector<WorkloadCase> all_cases() {
  std::vector<WorkloadCase> cases;
  for (const auto& wl : workloads::workload_names()) {
    for (const char* sched : {"rts", "tfa", "backoff"}) {
      cases.push_back(WorkloadCase{wl, sched});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloadsAllSchedulers, WorkloadIntegration,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<WorkloadCase>& info) {
                           std::string name =
                               info.param.workload + "_" + info.param.scheduler;
                           for (char& c : name)
                             if (c == '-' || c == '+') c = '_';
                           return name;
                         });

// ---------------------------------------------------- cluster invariants ----

TEST(ClusterInvariants, SingleOwnerAfterQuiesce) {
  auto wl = workloads::make_workload("bank", small_workload(0.2));
  runtime::ExperimentConfig cfg = small_experiment("rts", 0.2);

  runtime::Cluster cluster(cfg.cluster);
  wl->setup(cluster);
  cluster.start_workers(*wl);
  std::this_thread::sleep_for(to_chrono(sim_ms(250)));
  cluster.stop_workers();

  // Every object lives in exactly one store, and the directory points at it.
  std::set<std::uint64_t> seen;
  for (NodeId n = 0; n < cluster.size(); ++n) {
    for (const ObjectId oid : cluster.node(n).store().owned_ids()) {
      EXPECT_TRUE(seen.insert(oid.value).second)
          << "object " << oid.value << " owned by two stores";
      const NodeId home = dsm::home_node(oid, cluster.size());
      const auto dir_owner = cluster.node(home).directory().lookup(oid);
      ASSERT_TRUE(dir_owner.has_value());
      EXPECT_EQ(*dir_owner, n) << "directory stale for object " << oid.value;
      // No lock survives quiesce.
      EXPECT_FALSE(cluster.node(n).store().get(oid)->locked_by.valid());
    }
  }
  EXPECT_TRUE(wl->verify(cluster));
  cluster.shutdown();
}

TEST(ClusterInvariants, MetricsAreConsistent) {
  auto wl = workloads::make_workload("bank", small_workload(0.1));
  const auto result = runtime::run_experiment(*wl, small_experiment("rts", 0.1));
  const auto& d = result.delta;
  EXPECT_GT(d.commits_root, 0u);
  EXPECT_EQ(d.commits_root, d.commits_read_only + d.commits_write);
  // Parent-cause + own-cause == total nested aborts.
  EXPECT_EQ(d.nested_aborts_total, d.nested_aborts_parent_cause + d.nested_aborts_own_cause);
  // Hand-offs can't exceed enqueues (plus pre-window stragglers; windowed
  // counters make this approximate, so allow slack of the enqueue count).
  EXPECT_LE(d.handoffs_received, d.enqueued + d.handoffs_sent);
  EXPECT_TRUE(result.verified);
}

TEST(ClusterInvariants, RtsExercisesSchedulerPaths) {
  // Write-heavy bank on few objects must drive enqueues and hand-offs.
  auto wcfg = small_workload(0.05);
  wcfg.objects_per_node = 3;
  auto wl = workloads::make_workload("bank", wcfg);
  auto cfg = small_experiment("rts", 0.05);
  cfg.cluster.scheduler.cl_threshold = 8;
  const auto result = runtime::run_experiment(*wl, cfg);
  EXPECT_GT(result.delta.conflicts_seen, 0u);
  EXPECT_GT(result.delta.enqueued, 0u);
  EXPECT_GT(result.delta.handoffs_received, 0u);
  EXPECT_TRUE(result.verified);
}

TEST(ClusterInvariants, TfaNeverEnqueues) {
  auto wl = workloads::make_workload("bank", small_workload(0.1));
  const auto result = runtime::run_experiment(*wl, small_experiment("tfa", 0.1));
  EXPECT_EQ(result.delta.enqueued, 0u);
  EXPECT_EQ(result.delta.handoffs_received, 0u);
  EXPECT_TRUE(result.verified);
}

TEST(ClusterInvariants, ReadOnlyWorkloadCommitsFreely) {
  auto wl = workloads::make_workload("dht", small_workload(1.0));
  const auto result = runtime::run_experiment(*wl, small_experiment("rts", 1.0));
  EXPECT_GT(result.delta.commits_root, 0u);
  EXPECT_EQ(result.delta.commits_write, 0u);
  // Pure readers never lock, so nothing conflicts.
  EXPECT_EQ(result.delta.conflicts_seen, 0u);
  EXPECT_TRUE(result.verified);
}

TEST(ClusterInvariants, QueueResidueDrainsAfterStop) {
  auto wcfg = small_workload(0.05);
  wcfg.objects_per_node = 3;
  auto wl = workloads::make_workload("bank", wcfg);
  auto cfg = small_experiment("rts", 0.05);
  const auto result = runtime::run_experiment(*wl, cfg);
  // Parked requesters left at shutdown are bounded by the CL threshold per
  // object — there must be no unbounded residue.
  EXPECT_LE(result.queue_residue,
            static_cast<std::uint64_t>(cfg.cluster.scheduler.cl_threshold) * 4 *
                static_cast<std::uint64_t>(wcfg.objects_per_node));
}

TEST(ClusterInvariants, ThroughputScalesWithNodes) {
  // Sanity, not a benchmark: more nodes => more aggregate commits under the
  // mostly-read mix.
  auto run_nodes = [&](std::uint32_t nodes) {
    auto wl = workloads::make_workload("dht", small_workload(0.9));
    auto cfg = small_experiment("rts", 0.9);
    cfg.cluster.nodes = nodes;
    return runtime::run_experiment(*wl, cfg).throughput;
  };
  const double t2 = run_nodes(2);
  const double t8 = run_nodes(8);
  EXPECT_GT(t8, t2);
}

}  // namespace
}  // namespace hyflow
