// Tests for the machine-readable bench output layer (bench/bench_result):
// the standard metric vocabulary, label/metric upsert semantics, and the
// emitted BENCH_*.json document shape that tools/bench_diff.py validates.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "bench/bench_result.hpp"

namespace hyflow::bench {
namespace {

runtime::MetricsSnapshot sample_delta() {
  runtime::MetricsSnapshot delta;
  delta.commits_root = 200;
  delta.commits_read_only = 150;
  delta.commits_write = 50;
  delta.aborts_root[static_cast<std::size_t>(tfa::AbortCause::kLockConflict)] = 10;
  delta.nested_commits = 400;
  delta.nested_aborts_total = 20;
  delta.nested_aborts_parent_cause = 15;
  delta.rpc_retries = 3;
  for (int i = 0; i < 100; ++i) delta.latency.add(1'000'000 + i * 10'000);
  return delta;
}

double metric_of(const BenchPoint& p, const std::string& key) {
  for (const auto& [k, v] : p.metrics())
    if (k == key) return v;
  ADD_FAILURE() << "metric not found: " << key;
  return -1.0;
}

bool has_metric(const BenchPoint& p, const std::string& key) {
  for (const auto& [k, v] : p.metrics())
    if (k == key) return true;
  return false;
}

TEST(BenchPoint, FromMetricsEmitsTheStandardVocabulary) {
  BenchPoint p;
  p.from_metrics(sample_delta(), 2.0, 5000, 123456, true);

  EXPECT_DOUBLE_EQ(metric_of(p, "throughput"), 100.0);  // 200 commits / 2 s
  EXPECT_DOUBLE_EQ(metric_of(p, "commits_root"), 200.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "abort_lock_conflict"), 10.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "aborts_total"), 10.0);
  EXPECT_NEAR(metric_of(p, "abort_ratio"), 10.0 / 210.0, 1e-12);
  EXPECT_NEAR(metric_of(p, "nested_abort_rate"), 0.75, 1e-12);
  EXPECT_DOUBLE_EQ(metric_of(p, "messages"), 5000.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "bytes"), 123456.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "rpc_retries"), 3.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "dedup_hits"), 0.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "watchdog_aborts"), 0.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "grant_reforwards"), 0.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "verified"), 1.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "latency_count"), 100.0);
  // 100 samples spread over [1.0ms, 1.99ms]: p50 ~1.5ms, p99 near the top.
  EXPECT_NEAR(metric_of(p, "latency_p50_us"), 1500.0, 150.0);
  EXPECT_GT(metric_of(p, "latency_p99_us"), metric_of(p, "latency_p50_us"));
  EXPECT_DOUBLE_EQ(metric_of(p, "latency_overflow"), 0.0);
  // Every abort cause appears, even all-zero ones (stable schema).
  EXPECT_TRUE(has_metric(p, "abort_early_validation"));
  EXPECT_TRUE(has_metric(p, "abort_watchdog"));
}

TEST(BenchPoint, ZeroWindowDoesNotDivide) {
  BenchPoint p;
  const runtime::MetricsSnapshot empty;
  p.from_metrics(empty, 0.0, 0, 0, true);
  EXPECT_DOUBLE_EQ(metric_of(p, "throughput"), 0.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "abort_ratio"), 0.0);
  EXPECT_DOUBLE_EQ(metric_of(p, "latency_p99_us"), 0.0);
}

TEST(BenchPoint, LabelsAndMetricsUpsert) {
  BenchPoint p;
  p.label("workload", "bank").label("workload", "dht");
  p.metric("x", 1.0).metric("x", 2.0);
  ASSERT_EQ(p.labels().size(), 1u);
  EXPECT_EQ(p.labels()[0].second, "dht");
  ASSERT_EQ(p.metrics().size(), 1u);
  EXPECT_DOUBLE_EQ(p.metrics()[0].second, 2.0);
}

TEST(BenchPoint, NumericLabelsRenderAsStrings) {
  BenchPoint p;
  p.label("nodes", std::int64_t{40}).label("read_ratio", 0.9);
  EXPECT_EQ(p.labels()[0].second, "40");
  EXPECT_EQ(p.labels()[1].second, "0.9");
}

TEST(BenchResult, DocumentShape) {
  BenchResult result("unit_test_bench");
  result.meta("seed", std::int64_t{42});
  result.meta("note", "hello \"world\"");
  result.add_point()
      .label("workload", "bank")
      .metric("throughput", 123.5)
      .metric("latency_p50_us", 10.0)
      .metric("latency_p99_us", 20.0)
      .metric("rpc_retries", 0.0)
      .metric("dedup_hits", 0.0)
      .metric("watchdog_aborts", 0.0)
      .metric("grant_reforwards", 0.0);

  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bench\": \"unit_test_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"hello \\\"world\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_time_s\""), std::string::npos);
  EXPECT_NE(json.find("\"workload\": \"bank\""), std::string::npos);
  EXPECT_NE(json.find("\"throughput\": 123.5"), std::string::npos);
}

TEST(BenchResult, MetaUpsertsByKey) {
  BenchResult result("b");
  result.meta("k", std::int64_t{1});
  result.meta("k", std::int64_t{2});
  const std::string json = result.to_json();
  EXPECT_EQ(json.find("\"k\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"k\": 2"), std::string::npos);
}

TEST(BenchResult, WriteRoundTrips) {
  const std::string path = ::testing::TempDir() + "/bench_result_test.json";
  BenchResult result("roundtrip");
  result.add_point().label("k", "v").metric("m", 1.0);
  ASSERT_TRUE(result.write(path));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  // wall_time_s is re-measured per to_json() call, so compare shape, not
  // bytes: the file must open/close the same document and carry the point.
  EXPECT_EQ(ss.str().front(), '{');
  EXPECT_EQ(ss.str().back(), '}');
  EXPECT_NE(ss.str().find("\"roundtrip\""), std::string::npos);
  EXPECT_NE(ss.str().find("\"m\": 1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GitSha, EnvOverrideWins) {
  ::setenv("HYFLOW_GIT_SHA", "deadbeef1234", 1);
  EXPECT_EQ(git_sha(), "deadbeef1234");
  ::unsetenv("HYFLOW_GIT_SHA");
  EXPECT_NE(git_sha(), "deadbeef1234");
}

}  // namespace
}  // namespace hyflow::bench
