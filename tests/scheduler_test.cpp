// Unit tests for the scheduler layer: Requester/RequesterList/SchedulingTable
// (Alg. 1), the contention tracker, the RTS decision rule (Alg. 3), queue
// hand-off order (Alg. 4), the baselines, and the threshold controller.
#include <gtest/gtest.h>

#include "core/backoff_scheduler.hpp"
#include "core/contention.hpp"
#include "core/requester_list.hpp"
#include "core/rts_scheduler.hpp"
#include "core/tfa_scheduler.hpp"
#include "core/threshold_controller.hpp"

namespace hyflow::core {
namespace {

net::QueuedRequester requester(std::uint64_t txn, net::AccessMode mode = net::AccessMode::kWrite,
                               std::uint32_t contention = 0) {
  net::QueuedRequester r;
  r.address = static_cast<NodeId>(txn % 7);
  r.txid = TxnId{txn};
  r.reply_msg_id = txn * 100;
  r.mode = mode;
  r.contention = contention;
  return r;
}

// -------------------------------------------------------- RequesterList ----

TEST(RequesterList, AddRecordsContention) {
  RequesterList list;
  EXPECT_EQ(list.contention(), 0u);
  list.add(3, requester(1));
  EXPECT_EQ(list.contention(), 3u);
  list.add(5, requester(2));
  EXPECT_EQ(list.contention(), 5u);  // Alg. 1: running value, telescoped by callers
  EXPECT_EQ(list.size(), 2u);
}

TEST(RequesterList, RemoveDuplicateByTxn) {
  RequesterList list;
  list.add(1, requester(1));
  list.add(2, requester(2));
  EXPECT_TRUE(list.remove_duplicate(TxnId{1}));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_FALSE(list.remove_duplicate(TxnId{1}));
}

TEST(RequesterList, PopHeadGroupSingleWriter) {
  RequesterList list;
  list.add(0, requester(1, net::AccessMode::kWrite));
  list.add(0, requester(2, net::AccessMode::kWrite));
  const auto group = list.pop_head_group();
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].txid, TxnId{1});
  EXPECT_EQ(list.size(), 1u);
}

TEST(RequesterList, PopHeadGroupAllLeadingReaders) {
  // §III-B: a committed object is sent to all consecutive waiting readers
  // simultaneously.
  RequesterList list;
  list.add(0, requester(1, net::AccessMode::kRead));
  list.add(0, requester(2, net::AccessMode::kRead));
  list.add(0, requester(3, net::AccessMode::kWrite));
  list.add(0, requester(4, net::AccessMode::kRead));
  const auto group = list.pop_head_group();
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].txid, TxnId{1});
  EXPECT_EQ(group[1].txid, TxnId{2});
  EXPECT_EQ(list.size(), 2u);  // writer then trailing reader stay queued
}

TEST(RequesterList, BkResetsWhenQueueEmpties) {
  RequesterList list;
  list.add_bk(sim_ms(5));
  list.add(2, requester(1));
  EXPECT_EQ(list.bk(), sim_ms(5));
  (void)list.pop_head_group();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.bk(), 0);
  EXPECT_EQ(list.contention(), 0u);
}

TEST(RequesterList, DrainReturnsAllInOrder) {
  RequesterList list;
  for (std::uint64_t i = 1; i <= 4; ++i) list.add(0, requester(i));
  const auto all = list.drain();
  ASSERT_EQ(all.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(all[i].txid, TxnId{i + 1});
  EXPECT_TRUE(list.empty());
}

TEST(SchedulingTable, DepthAndRemove) {
  SchedulingTable table;
  table.with_list(ObjectId{1}, [&](RequesterList& list) {
    list.add(0, requester(1));
    list.add(0, requester(2));
    return 0;
  });
  EXPECT_EQ(table.depth(ObjectId{1}), 2u);
  EXPECT_EQ(table.depth(ObjectId{2}), 0u);
  EXPECT_EQ(table.total_queued(), 2u);
  EXPECT_TRUE(table.remove(ObjectId{1}, TxnId{1}));
  EXPECT_FALSE(table.remove(ObjectId{1}, TxnId{9}));
  // Popping the last entry erases the list.
  EXPECT_EQ(table.pop_head_group(ObjectId{1}).size(), 1u);
  EXPECT_EQ(table.depth(ObjectId{1}), 0u);
  EXPECT_EQ(table.total_queued(), 0u);
}

// ---------------------------------------------------- ContentionTracker ----

TEST(ContentionTracker, CountsDistinctTransactionsInWindow) {
  ContentionTracker tracker(sim_ms(10));
  const SimTime t0 = 1000000;
  tracker.record_request(ObjectId{1}, TxnId{1}, t0);
  tracker.record_request(ObjectId{1}, TxnId{2}, t0 + sim_ms(1));
  tracker.record_request(ObjectId{1}, TxnId{1}, t0 + sim_ms(2));  // repeat
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(3)), 2u);
  EXPECT_EQ(tracker.local_cl(ObjectId{2}, t0), 0u);
}

TEST(ContentionTracker, WindowExpires) {
  ContentionTracker tracker(sim_ms(10));
  const SimTime t0 = 1000000;
  tracker.record_request(ObjectId{1}, TxnId{1}, t0);
  tracker.record_request(ObjectId{1}, TxnId{2}, t0 + sim_ms(8));
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(9)), 2u);
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(15)), 1u);  // txn 1 aged out
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(30)), 0u);
}

TEST(ContentionTracker, RepeatRefreshesWindow) {
  ContentionTracker tracker(sim_ms(10));
  const SimTime t0 = 1000000;
  tracker.record_request(ObjectId{1}, TxnId{1}, t0);
  tracker.record_request(ObjectId{1}, TxnId{1}, t0 + sim_ms(8));
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(15)), 1u);  // still fresh
}

TEST(ContentionTracker, ForgetDropsObject) {
  ContentionTracker tracker(sim_ms(10));
  tracker.record_request(ObjectId{1}, TxnId{1}, 1000);
  tracker.forget(ObjectId{1});
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, 2000), 0u);
}

// ------------------------------------------------------------------ RTS ----

SchedulerConfig rts_config(std::uint32_t threshold = 3) {
  SchedulerConfig cfg;
  cfg.kind = "rts";
  cfg.cl_threshold = threshold;
  cfg.handoff_slack = sim_ms(1);
  return cfg;
}

ConflictContext conflict(std::uint64_t txn, SimDuration exec_so_far,
                         std::uint32_t requester_cl = 0,
                         SimDuration validator_remaining = sim_ms(1)) {
  ConflictContext ctx;
  ctx.oid = ObjectId{1};
  ctx.requester_node = 2;
  ctx.request_msg_id = txn * 10;
  ctx.request.oid = ObjectId{1};
  ctx.request.txid = TxnId{txn};
  ctx.request.mode = net::AccessMode::kWrite;
  ctx.request.requester_cl = requester_cl;
  ctx.request.ets.start = 1000000;
  ctx.request.ets.request = 1000000 + exec_so_far;
  ctx.request.ets.expected_commit = ctx.request.ets.request + sim_ms(4);
  ctx.validator_remaining = validator_remaining;
  ctx.now = ctx.request.ets.request;
  return ctx;
}

TEST(RtsScheduler, ShortTransactionAborts) {
  RtsScheduler rts(rts_config());
  // Execution so far (0.5ms) below the wait ahead (1ms validator remaining).
  const auto d = rts.on_conflict(conflict(1, sim_us(500)));
  EXPECT_EQ(d.action, ConflictAction::kAbort);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 0u);
}

TEST(RtsScheduler, LongTransactionLowContentionEnqueues) {
  RtsScheduler rts(rts_config());
  const auto d = rts.on_conflict(conflict(1, sim_ms(10)));
  EXPECT_EQ(d.action, ConflictAction::kEnqueue);
  EXPECT_GE(d.backoff, sim_ms(1));  // at least the validator remaining
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 1u);
}

TEST(RtsScheduler, HighContentionAborts) {
  RtsScheduler rts(rts_config(/*threshold=*/3));
  const auto d = rts.on_conflict(conflict(1, sim_ms(10), /*requester_cl=*/5));
  EXPECT_EQ(d.action, ConflictAction::kAbort);
}

TEST(RtsScheduler, QueueContentionAccumulates) {
  RtsScheduler rts(rts_config(/*threshold=*/4));
  EXPECT_EQ(rts.on_conflict(conflict(1, sim_ms(50), 2)).action, ConflictAction::kEnqueue);
  // Queue contention (2) + requester CL (2) hits the threshold: abort.
  EXPECT_EQ(rts.on_conflict(conflict(2, sim_ms(50), 2)).action, ConflictAction::kAbort);
  // A low-CL late arrival with enough age still gets in behind the queue.
  const auto d = rts.on_conflict(conflict(3, sim_ms(50), 0));
  EXPECT_EQ(d.action, ConflictAction::kEnqueue);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 2u);
}

TEST(RtsScheduler, LaterArrivalsWaitLonger) {
  RtsScheduler rts(rts_config(/*threshold=*/10));
  const auto first = rts.on_conflict(conflict(1, sim_ms(50)));
  const auto second = rts.on_conflict(conflict(2, sim_ms(60)));
  ASSERT_EQ(first.action, ConflictAction::kEnqueue);
  ASSERT_EQ(second.action, ConflictAction::kEnqueue);
  EXPECT_GT(second.backoff, first.backoff);  // waits behind txn 1 as well
}

TEST(RtsScheduler, DuplicateRequesterReplaced) {
  RtsScheduler rts(rts_config());
  ASSERT_EQ(rts.on_conflict(conflict(1, sim_ms(10))).action, ConflictAction::kEnqueue);
  // Same transaction re-requests (its backoff expired): still one entry.
  ASSERT_EQ(rts.on_conflict(conflict(1, sim_ms(20))).action, ConflictAction::kEnqueue);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 1u);
}

TEST(RtsScheduler, HandoffAndQueueTransfer) {
  RtsScheduler rts(rts_config(/*threshold=*/10));
  rts.on_conflict(conflict(1, sim_ms(50)));
  rts.on_conflict(conflict(2, sim_ms(60)));
  // Ownership transfer drains the queue...
  auto moved = rts.extract_queue(ObjectId{1});
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 0u);
  // ... and the new owner's scheduler absorbs it, preserving order.
  RtsScheduler new_owner(rts_config(10));
  new_owner.absorb_queue(ObjectId{1}, std::move(moved));
  const auto group = new_owner.on_object_available(ObjectId{1});
  ASSERT_EQ(group.size(), 1u);  // head writer only
  EXPECT_EQ(group[0].txid, TxnId{1});
  EXPECT_EQ(new_owner.queue_depth(ObjectId{1}), 1u);
}

TEST(RtsScheduler, RemoveRequesterOnNotInterested) {
  RtsScheduler rts(rts_config(/*threshold=*/10));
  rts.on_conflict(conflict(1, sim_ms(50)));
  rts.on_conflict(conflict(2, sim_ms(60)));
  rts.remove_requester(ObjectId{1}, TxnId{1});
  const auto group = rts.on_object_available(ObjectId{1});
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].txid, TxnId{2});
}

// ------------------------------------------------------------ Baselines ----

TEST(TfaScheduler, AlwaysAborts) {
  TfaScheduler tfa;
  const auto d = tfa.on_conflict(conflict(1, sim_ms(100)));
  EXPECT_EQ(d.action, ConflictAction::kAbort);
  EXPECT_EQ(d.backoff, 0);
  EXPECT_TRUE(tfa.extract_queue(ObjectId{1}).empty());
}

TEST(BackoffScheduler, AbortsWithStall) {
  SchedulerConfig cfg;
  cfg.kind = "backoff";
  BackoffScheduler backoff(cfg);
  const auto d = backoff.on_conflict(conflict(1, sim_ms(10)));
  EXPECT_EQ(d.action, ConflictAction::kAbortWithStall);
  EXPECT_EQ(d.backoff, sim_ms(4));  // ETS.c - ETS.r
}

TEST(BackoffScheduler, StallClamped) {
  SchedulerConfig cfg;
  cfg.kind = "backoff";
  cfg.min_backoff = sim_ms(2);
  cfg.max_backoff = sim_ms(3);
  BackoffScheduler backoff(cfg);
  EXPECT_EQ(backoff.on_conflict(conflict(1, sim_ms(10))).backoff, sim_ms(3));
}

TEST(SchedulerFactory, MakesAllKinds) {
  SchedulerConfig cfg;
  cfg.kind = "rts";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "rts");
  cfg.kind = "tfa";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "tfa");
  cfg.kind = "backoff";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "tfa+backoff");
  cfg.kind = "tfa+backoff";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "tfa+backoff");
}

// -------------------------------------------------- ThresholdController ----

TEST(ThresholdController, StaysWithinBounds) {
  ThresholdController ctl(3, 1, 8, sim_ms(1));
  SimTime t = 1;
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (int i = 0; i < 10; ++i) ctl.note_commit(t);
    t += sim_ms(2);
  }
  EXPECT_GE(ctl.threshold(), 1u);
  EXPECT_LE(ctl.threshold(), 8u);
  EXPECT_GT(ctl.epochs(), 10u);
}

TEST(ThresholdController, ReversesOnDecline) {
  ThresholdController ctl(4, 1, 16, sim_ms(1));
  SimTime t = 1;
  // Epoch 1: high rate.
  for (int i = 0; i < 100; ++i) ctl.note_commit(t + i);
  t += sim_ms(2);
  ctl.note_commit(t);
  const auto after_first = ctl.threshold();
  // Epoch 2: much lower rate -> direction must flip on the next rollover.
  t += sim_ms(2);
  ctl.note_commit(t);
  const auto after_second = ctl.threshold();
  EXPECT_NE(after_first, after_second);
}

TEST(RtsScheduler, AdaptiveThresholdEngages) {
  auto cfg = rts_config(4);
  cfg.adaptive_threshold = true;
  RtsScheduler rts(cfg);
  EXPECT_EQ(rts.current_threshold(), 4u);
  SimTime t = 1;
  for (int i = 0; i < 1000; ++i) {
    rts.note_commit(t);
    t += sim_us(500);
  }
  EXPECT_GE(rts.current_threshold(), 1u);
  EXPECT_LE(rts.current_threshold(), 16u);
}

}  // namespace
}  // namespace hyflow::core
