// Unit tests for the scheduler layer: Requester/RequesterList/SchedulingTable
// (Alg. 1), the contention tracker, the RTS decision rule (Alg. 3), queue
// hand-off order (Alg. 4), the baselines, and the threshold controller.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/backoff_scheduler.hpp"
#include "core/contention.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/karma_scheduler.hpp"
#include "core/requester_list.hpp"
#include "core/rts_scheduler.hpp"
#include "core/steal_on_abort_scheduler.hpp"
#include "core/tfa_scheduler.hpp"
#include "core/threshold_controller.hpp"

namespace hyflow::core {
namespace {

net::QueuedRequester requester(std::uint64_t txn, net::AccessMode mode = net::AccessMode::kWrite,
                               std::uint32_t contention = 0) {
  net::QueuedRequester r;
  r.address = static_cast<NodeId>(txn % 7);
  r.txid = TxnId{txn};
  r.reply_msg_id = txn * 100;
  r.mode = mode;
  r.contention = contention;
  return r;
}

// -------------------------------------------------------- RequesterList ----

TEST(RequesterList, AddRecordsContention) {
  RequesterList list;
  EXPECT_EQ(list.contention(), 0u);
  list.add(3, requester(1));
  EXPECT_EQ(list.contention(), 3u);
  list.add(5, requester(2));
  EXPECT_EQ(list.contention(), 5u);  // Alg. 1: running value, telescoped by callers
  EXPECT_EQ(list.size(), 2u);
}

TEST(RequesterList, RemoveDuplicateByTxn) {
  RequesterList list;
  list.add(1, requester(1));
  list.add(2, requester(2));
  EXPECT_TRUE(list.remove_duplicate(TxnId{1}));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_FALSE(list.remove_duplicate(TxnId{1}));
}

TEST(RequesterList, PopHeadGroupSingleWriter) {
  RequesterList list;
  list.add(0, requester(1, net::AccessMode::kWrite));
  list.add(0, requester(2, net::AccessMode::kWrite));
  const auto group = list.pop_head_group();
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].txid, TxnId{1});
  EXPECT_EQ(list.size(), 1u);
}

TEST(RequesterList, PopHeadGroupAllLeadingReaders) {
  // §III-B: a committed object is sent to all consecutive waiting readers
  // simultaneously.
  RequesterList list;
  list.add(0, requester(1, net::AccessMode::kRead));
  list.add(0, requester(2, net::AccessMode::kRead));
  list.add(0, requester(3, net::AccessMode::kWrite));
  list.add(0, requester(4, net::AccessMode::kRead));
  const auto group = list.pop_head_group();
  ASSERT_EQ(group.size(), 2u);
  EXPECT_EQ(group[0].txid, TxnId{1});
  EXPECT_EQ(group[1].txid, TxnId{2});
  EXPECT_EQ(list.size(), 2u);  // writer then trailing reader stay queued
}

TEST(RequesterList, BkResetsWhenQueueEmpties) {
  RequesterList list;
  list.add_bk(sim_ms(5));
  list.add(2, requester(1));
  EXPECT_EQ(list.bk(), sim_ms(5));
  (void)list.pop_head_group();
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.bk(), 0);
  EXPECT_EQ(list.contention(), 0u);
}

TEST(RequesterList, DrainReturnsAllInOrder) {
  RequesterList list;
  for (std::uint64_t i = 1; i <= 4; ++i) list.add(0, requester(i));
  const auto all = list.drain();
  ASSERT_EQ(all.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(all[i].txid, TxnId{i + 1});
  EXPECT_TRUE(list.empty());
}

TEST(SchedulingTable, DepthAndRemove) {
  SchedulingTable table;
  table.with_list(ObjectId{1}, [&](RequesterList& list) {
    list.add(0, requester(1));
    list.add(0, requester(2));
    return 0;
  });
  EXPECT_EQ(table.depth(ObjectId{1}), 2u);
  EXPECT_EQ(table.depth(ObjectId{2}), 0u);
  EXPECT_EQ(table.total_queued(), 2u);
  EXPECT_TRUE(table.remove(ObjectId{1}, TxnId{1}));
  EXPECT_FALSE(table.remove(ObjectId{1}, TxnId{9}));
  // Popping the last entry erases the list.
  EXPECT_EQ(table.pop_head_group(ObjectId{1}).size(), 1u);
  EXPECT_EQ(table.depth(ObjectId{1}), 0u);
  EXPECT_EQ(table.total_queued(), 0u);
}

// ---------------------------------------------------- ContentionTracker ----

TEST(ContentionTracker, CountsDistinctTransactionsInWindow) {
  ContentionTracker tracker(sim_ms(10));
  const SimTime t0 = 1000000;
  tracker.record_request(ObjectId{1}, TxnId{1}, t0);
  tracker.record_request(ObjectId{1}, TxnId{2}, t0 + sim_ms(1));
  tracker.record_request(ObjectId{1}, TxnId{1}, t0 + sim_ms(2));  // repeat
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(3)), 2u);
  EXPECT_EQ(tracker.local_cl(ObjectId{2}, t0), 0u);
}

TEST(ContentionTracker, WindowExpires) {
  ContentionTracker tracker(sim_ms(10));
  const SimTime t0 = 1000000;
  tracker.record_request(ObjectId{1}, TxnId{1}, t0);
  tracker.record_request(ObjectId{1}, TxnId{2}, t0 + sim_ms(8));
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(9)), 2u);
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(15)), 1u);  // txn 1 aged out
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(30)), 0u);
}

TEST(ContentionTracker, RepeatRefreshesWindow) {
  ContentionTracker tracker(sim_ms(10));
  const SimTime t0 = 1000000;
  tracker.record_request(ObjectId{1}, TxnId{1}, t0);
  tracker.record_request(ObjectId{1}, TxnId{1}, t0 + sim_ms(8));
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, t0 + sim_ms(15)), 1u);  // still fresh
}

TEST(ContentionTracker, ForgetDropsObject) {
  ContentionTracker tracker(sim_ms(10));
  tracker.record_request(ObjectId{1}, TxnId{1}, 1000);
  tracker.forget(ObjectId{1});
  EXPECT_EQ(tracker.local_cl(ObjectId{1}, 2000), 0u);
}

// ------------------------------------------------------------------ RTS ----

SchedulerConfig rts_config(std::uint32_t threshold = 3) {
  SchedulerConfig cfg;
  cfg.kind = "rts";
  cfg.cl_threshold = threshold;
  cfg.handoff_slack = sim_ms(1);
  return cfg;
}

ConflictContext conflict(std::uint64_t txn, SimDuration exec_so_far,
                         std::uint32_t requester_cl = 0,
                         SimDuration validator_remaining = sim_ms(1)) {
  ConflictContext ctx;
  ctx.oid = ObjectId{1};
  ctx.requester_node = 2;
  ctx.request_msg_id = txn * 10;
  ctx.request.oid = ObjectId{1};
  ctx.request.txid = TxnId{txn};
  ctx.request.mode = net::AccessMode::kWrite;
  ctx.request.requester_cl = requester_cl;
  ctx.request.ets.start = 1000000;
  ctx.request.ets.request = 1000000 + exec_so_far;
  ctx.request.ets.expected_commit = ctx.request.ets.request + sim_ms(4);
  ctx.validator_remaining = validator_remaining;
  ctx.now = ctx.request.ets.request;
  return ctx;
}

TEST(RtsScheduler, ShortTransactionAborts) {
  RtsScheduler rts(rts_config());
  // Execution so far (0.5ms) below the wait ahead (1ms validator remaining).
  const auto d = rts.on_conflict(conflict(1, sim_us(500)));
  EXPECT_EQ(d.action, ConflictAction::kAbort);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 0u);
}

TEST(RtsScheduler, LongTransactionLowContentionEnqueues) {
  RtsScheduler rts(rts_config());
  const auto d = rts.on_conflict(conflict(1, sim_ms(10)));
  EXPECT_EQ(d.action, ConflictAction::kEnqueue);
  EXPECT_GE(d.backoff, sim_ms(1));  // at least the validator remaining
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 1u);
}

TEST(RtsScheduler, HighContentionAborts) {
  RtsScheduler rts(rts_config(/*threshold=*/3));
  const auto d = rts.on_conflict(conflict(1, sim_ms(10), /*requester_cl=*/5));
  EXPECT_EQ(d.action, ConflictAction::kAbort);
}

TEST(RtsScheduler, QueueContentionAccumulates) {
  RtsScheduler rts(rts_config(/*threshold=*/4));
  EXPECT_EQ(rts.on_conflict(conflict(1, sim_ms(50), 2)).action, ConflictAction::kEnqueue);
  // Queue contention (2) + requester CL (2) hits the threshold: abort.
  EXPECT_EQ(rts.on_conflict(conflict(2, sim_ms(50), 2)).action, ConflictAction::kAbort);
  // A low-CL late arrival with enough age still gets in behind the queue.
  const auto d = rts.on_conflict(conflict(3, sim_ms(50), 0));
  EXPECT_EQ(d.action, ConflictAction::kEnqueue);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 2u);
}

TEST(RtsScheduler, LaterArrivalsWaitLonger) {
  RtsScheduler rts(rts_config(/*threshold=*/10));
  const auto first = rts.on_conflict(conflict(1, sim_ms(50)));
  const auto second = rts.on_conflict(conflict(2, sim_ms(60)));
  ASSERT_EQ(first.action, ConflictAction::kEnqueue);
  ASSERT_EQ(second.action, ConflictAction::kEnqueue);
  EXPECT_GT(second.backoff, first.backoff);  // waits behind txn 1 as well
}

TEST(RtsScheduler, DuplicateRequesterReplaced) {
  RtsScheduler rts(rts_config());
  ASSERT_EQ(rts.on_conflict(conflict(1, sim_ms(10))).action, ConflictAction::kEnqueue);
  // Same transaction re-requests (its backoff expired): still one entry.
  ASSERT_EQ(rts.on_conflict(conflict(1, sim_ms(20))).action, ConflictAction::kEnqueue);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 1u);
}

TEST(RtsScheduler, HandoffAndQueueTransfer) {
  RtsScheduler rts(rts_config(/*threshold=*/10));
  rts.on_conflict(conflict(1, sim_ms(50)));
  rts.on_conflict(conflict(2, sim_ms(60)));
  // Ownership transfer drains the queue...
  auto moved = rts.extract_queue(ObjectId{1});
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(rts.queue_depth(ObjectId{1}), 0u);
  // ... and the new owner's scheduler absorbs it, preserving order.
  RtsScheduler new_owner(rts_config(10));
  new_owner.absorb_queue(ObjectId{1}, std::move(moved));
  const auto group = new_owner.on_object_available(ObjectId{1});
  ASSERT_EQ(group.size(), 1u);  // head writer only
  EXPECT_EQ(group[0].txid, TxnId{1});
  EXPECT_EQ(new_owner.queue_depth(ObjectId{1}), 1u);
}

TEST(RtsScheduler, RemoveRequesterOnNotInterested) {
  RtsScheduler rts(rts_config(/*threshold=*/10));
  rts.on_conflict(conflict(1, sim_ms(50)));
  rts.on_conflict(conflict(2, sim_ms(60)));
  rts.remove_requester(ObjectId{1}, TxnId{1});
  const auto group = rts.on_object_available(ObjectId{1});
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].txid, TxnId{2});
}

// ------------------------------------------------------------ Baselines ----

TEST(TfaScheduler, AlwaysAborts) {
  TfaScheduler tfa;
  const auto d = tfa.on_conflict(conflict(1, sim_ms(100)));
  EXPECT_EQ(d.action, ConflictAction::kAbort);
  EXPECT_EQ(d.backoff, 0);
  EXPECT_TRUE(tfa.extract_queue(ObjectId{1}).empty());
}

TEST(BackoffScheduler, AbortsWithStall) {
  SchedulerConfig cfg;
  cfg.kind = "backoff";
  BackoffScheduler backoff(cfg);
  const auto d = backoff.on_conflict(conflict(1, sim_ms(10)));
  EXPECT_EQ(d.action, ConflictAction::kAbortWithStall);
  EXPECT_EQ(d.backoff, sim_ms(4));  // ETS.c - ETS.r
}

TEST(BackoffScheduler, StallClamped) {
  SchedulerConfig cfg;
  cfg.kind = "backoff";
  cfg.min_backoff = sim_ms(2);
  cfg.max_backoff = sim_ms(3);
  BackoffScheduler backoff(cfg);
  EXPECT_EQ(backoff.on_conflict(conflict(1, sim_ms(10))).backoff, sim_ms(3));
}

TEST(SchedulerFactory, MakesAllKinds) {
  SchedulerConfig cfg;
  cfg.kind = "rts";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "rts");
  cfg.kind = "tfa";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "tfa");
  cfg.kind = "backoff";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "tfa+backoff");
  cfg.kind = "tfa+backoff";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "tfa+backoff");
  cfg.kind = "bi";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "bi-interval");
  cfg.kind = "greedy";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "greedy");
  cfg.kind = "polka";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "karma");
  cfg.kind = "steal";
  EXPECT_STREQ(make_scheduler(cfg)->name(), "steal-on-abort");
}

TEST(SchedulerFactory, NamesCoverTheZoo) {
  const auto names = scheduler_names();
  EXPECT_GE(names.size(), 7u);
  for (const char* expected : {"rts", "tfa", "backoff", "bi-interval", "greedy", "karma",
                               "steal-on-abort"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing policy: " << expected;
  }
  for (const auto& name : names) EXPECT_EQ(canonical_scheduler_name(name), name);
  EXPECT_EQ(canonical_scheduler_name("bi"), "bi-interval");
  EXPECT_EQ(canonical_scheduler_name("polka"), "karma");
  EXPECT_EQ(canonical_scheduler_name("no-such-policy"), "");
}

using SchedulerFactoryDeathTest = ::testing::Test;

TEST(SchedulerFactoryDeathTest, UnknownKindDiesListingValidNames) {
  SchedulerConfig cfg;
  cfg.kind = "rst";  // plausible typo for "rts"
  EXPECT_DEATH(make_scheduler(cfg),
               "unknown scheduler kind 'rst'.*rts.*tfa.*backoff.*bi-interval.*greedy.*"
               "karma.*steal-on-abort");
}

// ----------------------------------------------------- zoo challengers ----

// Like conflict(), but with an explicit first-attempt start so timestamp /
// investment policies see distinct transaction identities and ages.
ConflictContext conflict_from(std::uint64_t txn, SimTime start, SimDuration exec_so_far,
                              net::AccessMode mode = net::AccessMode::kWrite) {
  ConflictContext ctx = conflict(txn, exec_so_far);
  ctx.request.mode = mode;
  ctx.request.ets.start = start;
  ctx.request.ets.request = start + exec_so_far;
  ctx.request.ets.expected_commit = ctx.request.ets.request + sim_ms(4);
  ctx.now = ctx.request.ets.request;
  return ctx;
}

SchedulerConfig zoo_config(const char* kind, std::uint32_t max_queue = 16) {
  SchedulerConfig cfg;
  cfg.kind = kind;
  cfg.max_queue = max_queue;
  cfg.handoff_slack = sim_ms(1);
  return cfg;
}

TEST(GreedyScheduler, OldestServedFirstRegardlessOfArrival) {
  GreedyScheduler greedy(zoo_config("greedy"));
  // Younger (later start) arrives first, older second.
  EXPECT_EQ(greedy.on_conflict(conflict_from(1, 2000000, sim_ms(5))).action,
            ConflictAction::kEnqueue);
  EXPECT_EQ(greedy.on_conflict(conflict_from(2, 1000000, sim_ms(5))).action,
            ConflictAction::kEnqueue);
  const auto group = greedy.on_object_available(ObjectId{1});
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].txid, TxnId{2});  // the older transaction wins
}

TEST(GreedyScheduler, EveryConflictParksBelowCap) {
  GreedyScheduler greedy(zoo_config("greedy", /*max_queue=*/3));
  for (std::uint64_t txn = 1; txn <= 3; ++txn) {
    EXPECT_EQ(greedy.on_conflict(conflict_from(txn, 1000000 + txn, sim_us(10))).action,
              ConflictAction::kEnqueue);
  }
  // At the cap even a very old newcomer aborts (and will retry with its
  // timestamp intact).
  EXPECT_EQ(greedy.on_conflict(conflict_from(9, 1, sim_ms(50))).action,
            ConflictAction::kAbort);
  EXPECT_EQ(greedy.queue_depth(ObjectId{1}), 3u);
}

TEST(GreedyScheduler, AbsorbKeepsTimestampOrder) {
  GreedyScheduler old_owner(zoo_config("greedy"));
  old_owner.on_conflict(conflict_from(1, 3000000, sim_ms(5)));
  old_owner.on_conflict(conflict_from(2, 1000000, sim_ms(5)));
  GreedyScheduler new_owner(zoo_config("greedy"));
  new_owner.on_conflict(conflict_from(3, 2000000, sim_ms(5)));
  new_owner.absorb_queue(ObjectId{1}, old_owner.extract_queue(ObjectId{1}));
  // Served oldest-first across both origins: 2 (t=1ms), 3 (t=2ms), 1 (t=3ms).
  EXPECT_EQ(new_owner.on_object_available(ObjectId{1})[0].txid, TxnId{2});
  EXPECT_EQ(new_owner.on_object_available(ObjectId{1})[0].txid, TxnId{3});
  EXPECT_EQ(new_owner.on_object_available(ObjectId{1})[0].txid, TxnId{1});
}

TEST(KarmaScheduler, UnderInvestedLosesWithRandomizedStallAndGainsKarma) {
  auto cfg = zoo_config("karma");
  KarmaScheduler karma(cfg);
  // A heavy investor parks first.
  ASSERT_EQ(karma.on_conflict(conflict_from(1, 1000000, sim_ms(20))).action,
            ConflictAction::kEnqueue);
  // A light newcomer loses: abort + stall, and its loss streak rises.
  const auto d = karma.on_conflict(conflict_from(2, 5000000, sim_us(100)));
  EXPECT_EQ(d.action, ConflictAction::kAbortWithStall);
  EXPECT_GE(d.backoff, cfg.min_backoff);
  EXPECT_LE(d.backoff, cfg.max_backoff);
  EXPECT_EQ(karma.loss_streak(2, 5000000), 1u);
  EXPECT_EQ(karma.queue_depth(ObjectId{1}), 1u);
}

TEST(KarmaScheduler, RepeatLoserEventuallyWins) {
  auto cfg = zoo_config("karma");
  KarmaScheduler karma(cfg);
  ASSERT_EQ(karma.on_conflict(conflict_from(1, 1000000, sim_ms(50))).action,
            ConflictAction::kEnqueue);
  // The same light transaction keeps losing; each loss boosts its karma
  // until it out-ranks the queue and parks.
  int attempts = 0;
  ConflictDecision d{};
  do {
    d = karma.on_conflict(conflict_from(2, 5000000, sim_us(100)));
    ++attempts;
    ASSERT_LT(attempts, 200) << "karma boost never overcame the queue";
  } while (d.action == ConflictAction::kAbortWithStall);
  EXPECT_EQ(d.action, ConflictAction::kEnqueue);
  EXPECT_EQ(karma.loss_streak(2, 5000000), 0u);  // streak forgotten on win
  EXPECT_EQ(karma.queue_depth(ObjectId{1}), 2u);
}

TEST(KarmaScheduler, BiggestInvestmentServedFirst) {
  KarmaScheduler karma(zoo_config("karma"));
  ASSERT_EQ(karma.on_conflict(conflict_from(1, 1000000, sim_ms(5))).action,
            ConflictAction::kEnqueue);
  ASSERT_EQ(karma.on_conflict(conflict_from(2, 2000000, sim_ms(30))).action,
            ConflictAction::kEnqueue);
  const auto group = karma.on_object_available(ObjectId{1});
  ASSERT_EQ(group.size(), 1u);
  EXPECT_EQ(group[0].txid, TxnId{2});  // 30ms invested beats 5ms
}

TEST(StealOnAbortScheduler, FifoAndCap) {
  StealOnAbortScheduler steal(zoo_config("steal-on-abort", /*max_queue=*/2));
  EXPECT_EQ(steal.on_conflict(conflict_from(1, 1000000, sim_us(10))).action,
            ConflictAction::kEnqueue);
  EXPECT_EQ(steal.on_conflict(conflict_from(2, 500000, sim_ms(50))).action,
            ConflictAction::kEnqueue);
  EXPECT_EQ(steal.on_conflict(conflict_from(3, 1, sim_ms(90))).action,
            ConflictAction::kAbort);  // cap; age does not matter
  // Strict arrival order, no reordering by age or investment.
  EXPECT_EQ(steal.on_object_available(ObjectId{1})[0].txid, TxnId{1});
  EXPECT_EQ(steal.on_object_available(ObjectId{1})[0].txid, TxnId{2});
}

TEST(StealOnAbortScheduler, StolenRequestersQueueBehindTheWinners) {
  StealOnAbortScheduler loser(zoo_config("steal-on-abort"));
  loser.on_conflict(conflict_from(1, 1000000, sim_ms(5)));
  loser.on_conflict(conflict_from(2, 1000001, sim_ms(5)));
  StealOnAbortScheduler winner(zoo_config("steal-on-abort"));
  winner.on_conflict(conflict_from(3, 1000002, sim_ms(5)));
  winner.absorb_queue(ObjectId{1}, loser.extract_queue(ObjectId{1}));
  // The winner's own requester is served before the stolen ones.
  EXPECT_EQ(winner.on_object_available(ObjectId{1})[0].txid, TxnId{3});
  EXPECT_EQ(winner.on_object_available(ObjectId{1})[0].txid, TxnId{1});
  EXPECT_EQ(winner.on_object_available(ObjectId{1})[0].txid, TxnId{2});
}

// --------------------------------------- policy-parameterized coverage ----
//
// Every registered policy — present and future — passes this block; it is
// instantiated straight from the factory's name list, so adding a row to
// the registry automatically adds coverage (the deep queue-protocol
// invariants live in tests/scheduler_conformance_test.cpp).

class SchedulerPolicyTest : public ::testing::TestWithParam<std::string> {
 protected:
  SchedulerConfig config() const {
    SchedulerConfig cfg;
    cfg.kind = GetParam();
    cfg.cl_threshold = 8;
    cfg.max_queue = 8;
    cfg.handoff_slack = sim_ms(1);
    return cfg;
  }
  std::unique_ptr<Scheduler> make() const { return make_scheduler(config()); }
};

TEST_P(SchedulerPolicyTest, FactoryRoundTrip) {
  auto s = make();
  ASSERT_NE(s, nullptr);
  EXPECT_STRNE(s->name(), "");
}

TEST_P(SchedulerPolicyTest, DecisionIsWellFormedAndQueueConsistent) {
  auto s = make();
  const auto d = s->on_conflict(conflict_from(1, 1000000, sim_ms(20)));
  EXPECT_GE(d.backoff, 0);
  if (d.action == ConflictAction::kEnqueue) {
    EXPECT_EQ(s->queue_depth(ObjectId{1}), 1u);
    EXPECT_EQ(s->total_queued(), 1u);
  } else {
    EXPECT_EQ(s->queue_depth(ObjectId{1}), 0u);
    EXPECT_EQ(s->total_queued(), 0u);
  }
}

TEST_P(SchedulerPolicyTest, ReRequestNeverDoubleQueues) {
  auto s = make();
  for (int attempt = 0; attempt < 3; ++attempt) {
    s->on_conflict(conflict_from(1, 1000000, sim_ms(20) + sim_ms(10) * attempt));
    EXPECT_LE(s->queue_depth(ObjectId{1}), 1u) << "attempt " << attempt;
  }
}

TEST_P(SchedulerPolicyTest, ExtractAbsorbConservesRequesters) {
  auto old_owner = make();
  std::set<std::uint64_t> parked;
  for (std::uint64_t txn = 1; txn <= 6; ++txn) {
    const auto mode = txn % 3 == 0 ? net::AccessMode::kRead : net::AccessMode::kWrite;
    if (old_owner->on_conflict(conflict_from(txn, 1000000 + txn * 1000, sim_ms(30), mode))
            .action == ConflictAction::kEnqueue) {
      parked.insert(txn);
    }
  }
  ASSERT_EQ(old_owner->total_queued(), parked.size());

  auto moved = old_owner->extract_queue(ObjectId{1});
  EXPECT_EQ(old_owner->queue_depth(ObjectId{1}), 0u);
  std::set<std::uint64_t> moved_txns;
  for (const auto& r : moved) moved_txns.insert(r.txid.value);
  EXPECT_EQ(moved_txns, parked);  // nothing lost, nothing invented

  auto new_owner = make();
  new_owner->absorb_queue(ObjectId{1}, std::move(moved));
  EXPECT_EQ(new_owner->total_queued(), parked.size());

  // Drain: every parked requester is served exactly once.
  std::set<std::uint64_t> served;
  while (new_owner->total_queued() > 0) {
    const auto group = new_owner->on_object_available(ObjectId{1});
    ASSERT_FALSE(group.empty()) << "queue non-empty but nothing served";
    for (const auto& r : group) EXPECT_TRUE(served.insert(r.txid.value).second);
  }
  EXPECT_EQ(served, parked);
}

TEST_P(SchedulerPolicyTest, RemoveRequesterDropsExactlyThatEntry) {
  auto s = make();
  std::set<std::uint64_t> parked;
  for (std::uint64_t txn = 1; txn <= 3; ++txn) {
    if (s->on_conflict(conflict_from(txn, 1000000 + txn, sim_ms(30))).action ==
        ConflictAction::kEnqueue) {
      parked.insert(txn);
    }
  }
  s->remove_requester(ObjectId{1}, TxnId{2});
  parked.erase(2);
  EXPECT_EQ(s->total_queued(), parked.size());
  std::set<std::uint64_t> served;
  while (s->total_queued() > 0) {
    for (const auto& r : s->on_object_available(ObjectId{1})) served.insert(r.txid.value);
  }
  EXPECT_EQ(served, parked);
}

INSTANTIATE_TEST_SUITE_P(Zoo, SchedulerPolicyTest, ::testing::ValuesIn(scheduler_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-' || c == '+') c = '_';
                           return name;
                         });

// -------------------------------------------------- ThresholdController ----

TEST(ThresholdController, StaysWithinBounds) {
  ThresholdController ctl(3, 1, 8, sim_ms(1));
  SimTime t = 1;
  for (int epoch = 0; epoch < 50; ++epoch) {
    for (int i = 0; i < 10; ++i) ctl.note_commit(t);
    t += sim_ms(2);
  }
  EXPECT_GE(ctl.threshold(), 1u);
  EXPECT_LE(ctl.threshold(), 8u);
  EXPECT_GT(ctl.epochs(), 10u);
}

TEST(ThresholdController, ReversesOnDecline) {
  ThresholdController ctl(4, 1, 16, sim_ms(1));
  SimTime t = 1;
  // Epoch 1: high rate.
  for (int i = 0; i < 100; ++i) ctl.note_commit(t + i);
  t += sim_ms(2);
  ctl.note_commit(t);
  const auto after_first = ctl.threshold();
  // Epoch 2: much lower rate -> direction must flip on the next rollover.
  t += sim_ms(2);
  ctl.note_commit(t);
  const auto after_second = ctl.threshold();
  EXPECT_NE(after_first, after_second);
}

TEST(RtsScheduler, AdaptiveThresholdEngages) {
  auto cfg = rts_config(4);
  cfg.adaptive_threshold = true;
  RtsScheduler rts(cfg);
  EXPECT_EQ(rts.current_threshold(), 4u);
  SimTime t = 1;
  for (int i = 0; i < 1000; ++i) {
    rts.note_commit(t);
    t += sim_us(500);
  }
  EXPECT_GE(rts.current_threshold(), 1u);
  EXPECT_LE(rts.current_threshold(), 16u);
}

}  // namespace
}  // namespace hyflow::core
