// Stress and robustness suites: correctness under message-delay jitter
// (reordering), hot-spot storms, reader-interval concurrency, version
// monotonicity, and message-economy properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "dsm/directory.hpp"
#include "runtime/experiment.hpp"
#include "workloads/bank.hpp"
#include "workloads/registry.hpp"

namespace hyflow {
namespace {

class Cell : public TxObject<Cell> {
 public:
  explicit Cell(ObjectId id) : TxObject(id) {}
  std::int64_t value = 0;
};

// ----------------------------------------------------- jitter/reordering ---

class JitterCorrectness : public ::testing::TestWithParam<double> {};

TEST_P(JitterCorrectness, BankConservationUnderJitter) {
  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = 0.2;
  wcfg.objects_per_node = 5;
  wcfg.local_work = sim_us(50);
  workloads::BankWorkload bank(wcfg);

  runtime::ExperimentConfig cfg;
  cfg.cluster.nodes = 5;
  cfg.cluster.workers_per_node = 2;
  cfg.cluster.scheduler.kind = "rts";
  cfg.cluster.topology.min_delay = sim_us(20);
  cfg.cluster.topology.max_delay = sim_us(400);
  cfg.cluster.topology.jitter = GetParam();  // breaks per-pair FIFO
  cfg.warmup = sim_ms(30);
  cfg.measure = sim_ms(250);
  const auto result = runtime::run_experiment(bank, cfg);
  EXPECT_GT(result.delta.commits_root, 0u);
  EXPECT_TRUE(result.verified) << "conservation violated under jitter " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sweep, JitterCorrectness, ::testing::Values(0.0, 0.3, 0.9),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "jitter" + std::to_string(static_cast<int>(
                                                 info.param * 100));
                         });

// ----------------------------------------------------------- hot object ----

TEST(Stress, SingleHotObjectManyWriters) {
  // The worst case of SS III-D as a correctness test: every node hammers one
  // object; the final value must equal the number of committed increments.
  runtime::ClusterConfig cfg;
  cfg.nodes = 6;
  cfg.workers_per_node = 0;
  cfg.scheduler.kind = "rts";
  cfg.scheduler.cl_threshold = 8;
  cfg.topology.min_delay = sim_us(10);
  cfg.topology.max_delay = sim_us(200);
  runtime::Cluster cluster(cfg);
  const ObjectId hot{4242};
  cluster.create_object(std::make_unique<Cell>(hot), 0);

  constexpr int kPerNode = 8;
  {
    std::vector<std::jthread> writers;
    for (NodeId n = 0; n < 6; ++n) {
      writers.emplace_back([&cluster, n, hot] {
        for (int i = 0; i < kPerNode; ++i) {
          ASSERT_TRUE(cluster.execute(n, 1, [&](tfa::Txn& tx) {
            tx.nested([&](tfa::Txn& child) { child.write<Cell>(hot).value += 1; });
          }).committed);
        }
      });
    }
  }
  EXPECT_EQ(object_cast<Cell>(*cluster.committed_copy(hot)).value, 6 * kPerNode);
  cluster.shutdown();
}

TEST(Stress, ReadersProceedWhileWriterStorms) {
  // Readers must keep committing against a write-stormed object (reads
  // never lock; queued readers are released together).
  runtime::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  cfg.scheduler.kind = "rts";
  runtime::Cluster cluster(cfg);
  const ObjectId hot{4243};
  cluster.create_object(std::make_unique<Cell>(hot), 0);

  std::atomic<bool> stop{false};
  std::atomic<int> reads_done{0};
  {
    std::vector<std::jthread> threads;
    threads.emplace_back([&] {  // writer storm (lightly paced so the test
                                // bounds its own runtime; readers must
                                // still interleave with ongoing commits)
      while (!stop.load()) {
        cluster.execute(1, 1, [&](tfa::Txn& tx) { tx.write<Cell>(hot).value += 1; });
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (NodeId n = 2; n < 4; ++n) {
      threads.emplace_back([&, n] {
        for (int i = 0; i < 15; ++i) {
          std::int64_t v = -1;
          ASSERT_TRUE(cluster.execute(n, 2, [&](tfa::Txn& tx) {
            v = tx.read<Cell>(hot).value;
          }).committed);
          ASSERT_GE(v, 0);
          reads_done.fetch_add(1);
        }
      });
    }
    while (reads_done.load() < 30) std::this_thread::sleep_for(std::chrono::milliseconds(5));
    stop.store(true);
  }
  EXPECT_EQ(reads_done.load(), 30);
  cluster.shutdown();
}

// ----------------------------------------------------- version ordering ----

TEST(Stress, CommittedVersionsStrictlyIncreasePerObject) {
  // Observed version clocks of one object form a strictly increasing
  // sequence across commits (TFA: each commit's clock exceeds everything
  // the committer observed).
  runtime::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  const ObjectId oid{4244};
  cluster.create_object(std::make_unique<Cell>(oid), 0);

  std::vector<std::uint64_t> clocks;
  for (int i = 0; i < 12; ++i) {
    const NodeId n = static_cast<NodeId>(i % 4);
    ASSERT_TRUE(cluster.execute(n, 1, [&](tfa::Txn& tx) {
      tx.write<Cell>(oid).value += 1;
    }).committed);
    // Read the committed version straight from the owner's store.
    const NodeId home = dsm::home_node(oid, cluster.size());
    const auto owner = cluster.node(home).directory().lookup(oid);
    ASSERT_TRUE(owner.has_value());
    const auto slot = cluster.node(*owner).store().get(oid);
    ASSERT_TRUE(slot.has_value());
    clocks.push_back(slot->version.clock);
  }
  for (std::size_t i = 1; i < clocks.size(); ++i)
    EXPECT_GT(clocks[i], clocks[i - 1]) << "version clocks must strictly increase";
  cluster.shutdown();
}

// ------------------------------------------------------- message economy ---

TEST(Stress, ReadOnlyTransactionsSendNoLockOrCommitTraffic) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  const ObjectId oid{4245};
  cluster.create_object(std::make_unique<Cell>(oid), 2);

  // Warm the owner hint, then measure a pure read transaction.
  cluster.execute(0, 1, [&](tfa::Txn& tx) { (void)tx.read<Cell>(oid); });
  const auto before = cluster.network().stats().messages.load();
  ASSERT_TRUE(cluster.execute(0, 1, [&](tfa::Txn& tx) {
    (void)tx.read<Cell>(oid).value;
  }).committed);
  cluster.network().wait_idle();
  const auto sent = cluster.network().stats().messages.load() - before;
  // Fetch (request+response) only: a single-object read transaction skips
  // commit validation entirely; no find-owner (hint cached), no locks, no
  // registration, no transfer.
  EXPECT_LE(sent, 2u);
  cluster.shutdown();
}

TEST(Stress, LocallyOwnedTransactionIsCheap) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  const ObjectId oid{4246};
  cluster.create_object(std::make_unique<Cell>(oid), 1);

  cluster.execute(1, 1, [&](tfa::Txn& tx) { tx.write<Cell>(oid).value = 1; });
  const auto before = cluster.network().stats().messages.load();
  ASSERT_TRUE(cluster.execute(1, 1, [&](tfa::Txn& tx) {
    tx.write<Cell>(oid).value += 1;
  }).committed);
  cluster.network().wait_idle();
  const auto sent = cluster.network().stats().messages.load() - before;
  // Self-fetch still rides the proxy (2 messages) and registration goes to
  // the home node (2); locks and publication are local.
  EXPECT_LE(sent, 6u);
  cluster.shutdown();
}

// ----------------------------------------------------- mixed load sweep ----

TEST(Stress, AllWorkloadsConcurrentlyOnOneCluster) {
  // All six workloads share a cluster and run under concurrent load; every
  // verifier must pass afterwards (id spaces are disjoint by construction).
  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = 0.5;
  wcfg.objects_per_node = 4;
  wcfg.local_work = 0;

  runtime::ClusterConfig cfg;
  cfg.nodes = 6;
  cfg.workers_per_node = 0;
  cfg.topology.min_delay = sim_us(5);
  cfg.topology.max_delay = sim_us(100);
  runtime::Cluster cluster(cfg);

  std::vector<std::unique_ptr<workloads::Workload>> wls;
  for (const auto& name : workloads::workload_names()) {
    wls.push_back(workloads::make_workload(name, wcfg));
    wls.back()->setup(cluster);
  }
  {
    std::vector<std::jthread> drivers;
    for (std::size_t w = 0; w < wls.size(); ++w) {
      drivers.emplace_back([&, w] {
        Xoshiro256 rng(100 + w);
        const NodeId node = static_cast<NodeId>(w % 6);
        for (int i = 0; i < 25; ++i) {
          const auto op = wls[w]->next_op(node, rng);
          ASSERT_TRUE(cluster.execute(node, op.profile, op.body).committed);
        }
      });
    }
  }
  for (auto& wl : wls) EXPECT_TRUE(wl->verify(cluster)) << wl->name();
  cluster.shutdown();
}

}  // namespace
}  // namespace hyflow
