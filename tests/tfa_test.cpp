// Unit tests for the TFA layer: node clocks, the stats table, access sets,
// transaction-tree mechanics, and the forwarding/validation protocol on a
// live mini-cluster.
#include <gtest/gtest.h>

#include "dsm/directory.hpp"
#include "runtime/cluster.hpp"
#include "tfa/node_clock.hpp"
#include "tfa/stats_table.hpp"
#include "tfa/transaction.hpp"

namespace hyflow::tfa {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

// ------------------------------------------------------------ NodeClock ----

TEST(NodeClock, AdvanceToIsMax) {
  NodeClock clock;
  EXPECT_EQ(clock.read(), 0u);
  clock.advance_to(5);
  EXPECT_EQ(clock.read(), 5u);
  clock.advance_to(3);  // never goes backwards
  EXPECT_EQ(clock.read(), 5u);
}

TEST(NodeClock, IncrementPastFloor) {
  NodeClock clock;
  clock.advance_to(10);
  EXPECT_EQ(clock.increment_past(4), 11u);   // clock dominates
  EXPECT_EQ(clock.increment_past(20), 21u);  // floor dominates
  EXPECT_EQ(clock.read(), 21u);
}

TEST(NodeClock, ConcurrentIncrementsUnique) {
  NodeClock clock;
  std::vector<std::uint64_t> results(4000);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < 1000; ++i) results[t * 1000 + i] = clock.increment_past(0);
      });
    }
  }
  std::sort(results.begin(), results.end());
  EXPECT_TRUE(std::adjacent_find(results.begin(), results.end()) == results.end());
}

// ----------------------------------------------------------- StatsTable ----

TEST(StatsTable, DefaultBeforeSeeding) {
  StatsTable table(sim_ms(3));
  EXPECT_EQ(table.expected_duration(1), sim_ms(3));
  EXPECT_EQ(table.expected_commit(1, 100), 100 + sim_ms(3));
}

TEST(StatsTable, EwmaTracksCommits) {
  StatsTable table(sim_ms(3));
  for (int i = 0; i < 50; ++i) table.record_commit(1, sim_ms(10));
  EXPECT_NEAR(static_cast<double>(table.expected_duration(1)),
              static_cast<double>(sim_ms(10)), static_cast<double>(sim_ms(1)));
  // Other profiles are independent.
  EXPECT_EQ(table.expected_duration(2), sim_ms(3));
  EXPECT_EQ(table.profile_count(), 1u);
}

TEST(StatsTable, BloomRemembersCommitBuckets) {
  StatsTable table(sim_ms(3), sim_us(100));
  table.record_commit(1, sim_us(450));
  EXPECT_TRUE(table.recently_observed(1, sim_us(420)));   // same bucket
  EXPECT_FALSE(table.recently_observed(1, sim_us(950)));  // different bucket
  EXPECT_FALSE(table.recently_observed(9, sim_us(450)));  // unknown profile
}

TEST(StatsTable, IgnoresNonPositiveDurations) {
  StatsTable table(sim_ms(3));
  table.record_commit(1, 0);
  table.record_commit(1, -5);
  EXPECT_EQ(table.expected_duration(1), sim_ms(3));
}

// ------------------------------------------------------------ AccessSet ----

TEST(AccessEntry, MutableCopyIsLazyAndIsolated) {
  AccessEntry entry;
  entry.base = std::make_shared<Box>(ObjectId{1}, 5);
  EXPECT_EQ(entry.working, nullptr);
  EXPECT_EQ(object_cast<Box>(entry.effective()).value, 5);
  auto& copy = object_cast<Box>(entry.mutable_copy());
  copy.value = 9;
  EXPECT_EQ(entry.mode, net::AccessMode::kWrite);
  EXPECT_EQ(object_cast<Box>(entry.effective()).value, 9);
  EXPECT_EQ(object_cast<Box>(*entry.base).value, 5);  // base untouched
  // Second call returns the same working copy.
  EXPECT_EQ(&entry.mutable_copy(), static_cast<AbstractObject*>(&copy));
}

TEST(AccessSet, WriteCountSkipsInheritedAndReads) {
  AccessSet set;
  AccessEntry read_entry;
  read_entry.base = std::make_shared<Box>(ObjectId{1});
  set.insert(ObjectId{1}, std::move(read_entry));

  AccessEntry write_entry;
  write_entry.base = std::make_shared<Box>(ObjectId{2});
  write_entry.mutable_copy();
  set.insert(ObjectId{2}, std::move(write_entry));

  AccessEntry inherited;
  inherited.base = std::make_shared<Box>(ObjectId{3});
  inherited.inherited = true;
  inherited.mutable_copy();
  set.insert(ObjectId{3}, std::move(inherited));

  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.write_count(), 1u);
}

// ------------------------------------------------------ Transaction tree ----

Transaction make_root() {
  return Transaction(TxnId::make(0, 1), /*profile=*/1, /*start_clock=*/3,
                     /*wall_start=*/100, /*expected_commit=*/200);
}

TEST(Transaction, RootState) {
  auto root = make_root();
  EXPECT_TRUE(root.is_root());
  EXPECT_EQ(root.depth(), 0);
  EXPECT_EQ(root.start_clock(), 3u);
  root.forward_to(9);
  EXPECT_EQ(root.start_clock(), 9u);
  EXPECT_EQ(root.wall_start(), 100);
  EXPECT_EQ(root.expected_commit(), 200);
}

TEST(Transaction, ChildChainAndActiveChild) {
  auto root = make_root();
  EXPECT_EQ(root.active_child(), nullptr);
  {
    Transaction child(root);
    EXPECT_EQ(child.depth(), 1);
    EXPECT_EQ(&child.root(), &root);
    EXPECT_EQ(root.active_child(), &child);
    {
      Transaction grandchild(child);
      EXPECT_EQ(grandchild.depth(), 2);
      EXPECT_EQ(&grandchild.root(), &root);
      // Forwarding through a grandchild moves the ROOT's clock.
      grandchild.forward_to(42);
      EXPECT_EQ(root.start_clock(), 42u);
    }
    EXPECT_EQ(child.active_child(), nullptr);
  }
  EXPECT_EQ(root.active_child(), nullptr);
}

AccessEntry fetched_entry(int value, std::uint32_t owner_cl = 0) {
  AccessEntry e;
  e.base = std::make_shared<Box>(ObjectId{1}, value);
  e.owner_cl = owner_cl;
  return e;
}

TEST(Transaction, FindUpSearchesAncestors) {
  auto root = make_root();
  root.set().insert(ObjectId{1}, fetched_entry(5));
  Transaction child(root);
  const auto found = child.find_up(ObjectId{1});
  ASSERT_NE(found.entry, nullptr);
  EXPECT_EQ(found.depth, 0);
  EXPECT_FALSE(child.find_up(ObjectId{2}).entry);
}

TEST(Transaction, MergeMovesFetchedEntries) {
  auto root = make_root();
  Transaction child(root);
  child.set().insert(ObjectId{1}, fetched_entry(5));
  child.merge_into_parent();
  EXPECT_TRUE(child.set().empty());
  ASSERT_NE(root.set().find(ObjectId{1}), nullptr);
  EXPECT_EQ(object_cast<Box>(root.set().find(ObjectId{1})->effective()).value, 5);
}

TEST(Transaction, MergeFoldsInheritedWriteIntoParentEntry) {
  auto root = make_root();
  root.set().insert(ObjectId{1}, fetched_entry(5));
  Transaction child(root);
  // Child writes the parent's object through an inherited view.
  AccessEntry view;
  view.inherited = true;
  view.base = root.set().find(ObjectId{1})->base;
  child.set().insert(ObjectId{1}, std::move(view));
  object_cast<Box>(child.set().find(ObjectId{1})->mutable_copy()).value = 7;
  child.merge_into_parent();

  AccessEntry* pe = root.set().find(ObjectId{1});
  ASSERT_NE(pe, nullptr);
  EXPECT_FALSE(pe->inherited);
  EXPECT_EQ(pe->mode, net::AccessMode::kWrite);
  EXPECT_EQ(object_cast<Box>(pe->effective()).value, 7);
}

TEST(Transaction, ChildAbortLeavesParentUntouched) {
  auto root = make_root();
  root.set().insert(ObjectId{1}, fetched_entry(5));
  {
    Transaction child(root);
    AccessEntry view;
    view.inherited = true;
    view.base = root.set().find(ObjectId{1})->base;
    child.set().insert(ObjectId{1}, std::move(view));
    object_cast<Box>(child.set().find(ObjectId{1})->mutable_copy()).value = 99;
    // Child destroyed without merge: an abort.
  }
  EXPECT_EQ(object_cast<Box>(root.set().find(ObjectId{1})->effective()).value, 5);
}

TEST(Transaction, CollectMyClSumsChain) {
  auto root = make_root();
  root.set().insert(ObjectId{1}, fetched_entry(0, 3));
  Transaction child(root);
  auto e = fetched_entry(0, 4);
  child.set().insert(ObjectId{2}, std::move(e));
  AccessEntry inherited;
  inherited.inherited = true;
  inherited.owner_cl = 100;  // must NOT be double counted
  inherited.base = std::make_shared<Box>(ObjectId{1});
  child.set().insert(ObjectId{1}, std::move(inherited));
  EXPECT_EQ(child.collect_my_cl(), 7u);
  EXPECT_EQ(root.collect_my_cl(), 3u);
}

// ----------------------------------------- Forwarding on a live cluster ----

TEST(TfaProtocol, ForwardingValidatesAndAdvancesStart) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  // Pick object ids whose home nodes avoid node 0, so node 0's Lamport
  // clock stays at zero until it fetches — guaranteeing the second fetch
  // observes a clock ahead of the transaction's start (a forwarding).
  ObjectId first{0}, second{0};
  for (std::uint64_t v = 101; !first.valid() || !second.valid(); ++v) {
    const ObjectId oid{v};
    if (dsm::home_node(oid, 3) == 0) continue;
    (first.valid() ? second : first) = oid;
  }
  cluster.create_object(std::make_unique<Box>(first, 0), 1);
  cluster.create_object(std::make_unique<Box>(second, 0), 2);
  const ObjectId o101 = first, o102 = second;

  // Bump node 2's clock with a couple of commits.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.execute(2, 1, [&](tfa::Txn& tx) {
      tx.write<Box>(o102).value += 1;
    }).committed);
  }

  const auto before = cluster.node(0).metrics().snapshot();
  // Node 0 reads the first object, then the second (whose owner's clock is
  // ahead): forwarding.
  int v = 0;
  ASSERT_TRUE(cluster.execute(0, 2, [&](tfa::Txn& tx) {
    v += tx.read<Box>(o101).value;
    v += tx.read<Box>(o102).value;
  }).committed);
  const auto after = cluster.node(0).metrics().snapshot();
  EXPECT_EQ(v, 3);
  EXPECT_GT(after.forwardings, before.forwardings);
  cluster.shutdown();
}

TEST(TfaProtocol, StaleReadAbortsAndRetries) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  cluster.create_object(std::make_unique<Box>(ObjectId{110}, 0), 0);
  cluster.create_object(std::make_unique<Box>(ObjectId{111}, 0), 1);

  // A transaction that reads 110, then (once, mid-flight) lets a rival
  // commit a write to 110 before opening 111 — its read must be detected
  // stale and the transaction must retry and still commit.
  bool rival_done = false;
  const auto result = cluster.execute(0, 3, [&](tfa::Txn& tx) {
    (void)tx.read<Box>(ObjectId{110});
    if (!rival_done) {
      rival_done = true;
      ASSERT_TRUE(cluster.execute(1, 4, [&](tfa::Txn& rival) {
        tx.runtime();  // silence unused warnings; rival writes 110
        rival.write<Box>(ObjectId{110}).value = 77;
      }).committed);
    }
    tx.write<Box>(ObjectId{111}).value = tx.read<Box>(ObjectId{110}).value;
  });
  EXPECT_TRUE(result.committed);
  EXPECT_GE(result.attempts, 2u);
  // The retried transaction saw the rival's write.
  int final_value = -1;
  cluster.execute(1, 5, [&](tfa::Txn& tx) { final_value = tx.read<Box>(ObjectId{111}).value; });
  EXPECT_EQ(final_value, 77);
  cluster.shutdown();
}

TEST(TfaProtocol, WriteWriteConflictOneWins) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  cluster.create_object(std::make_unique<Box>(ObjectId{120}, 0), 0);

  // Concurrent increments from all nodes must serialise to an exact sum.
  std::vector<std::jthread> threads;
  for (NodeId n = 0; n < 4; ++n) {
    threads.emplace_back([&cluster, n] {
      for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(cluster.execute(n, 6, [&](tfa::Txn& tx) {
          tx.write<Box>(ObjectId{120}).value += 1;
        }).committed);
      }
    });
  }
  threads.clear();
  int final_value = 0;
  cluster.execute(0, 7, [&](tfa::Txn& tx) { final_value = tx.read<Box>(ObjectId{120}).value; });
  EXPECT_EQ(final_value, 20);
  cluster.shutdown();
}

}  // namespace
}  // namespace hyflow::tfa
