// Unit tests for the runtime layer: metrics snapshot algebra, cluster
// construction/placement/audit helpers, worker lifecycle, the experiment
// harness, and shutdown robustness (repeated cycles, shutdown under load).
#include <gtest/gtest.h>

#include <thread>

#include "dsm/directory.hpp"
#include "runtime/experiment.hpp"
#include "workloads/registry.hpp"

namespace hyflow::runtime {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

// -------------------------------------------------------------- metrics ----

TEST(Metrics, SnapshotReflectsCounters) {
  NodeMetrics metrics;
  metrics.add_commit(/*read_only=*/true);
  metrics.add_commit(/*read_only=*/false);
  metrics.add_root_abort(tfa::AbortCause::kSchedulerDenied);
  metrics.add_root_abort(tfa::AbortCause::kEarlyValidation);
  metrics.add_nested_commit();
  metrics.add_nested_abort(/*parent_cause=*/true, 3);
  metrics.add_nested_abort(/*parent_cause=*/false);
  metrics.add_enqueued();
  metrics.add_handoff_received();

  const auto s = metrics.snapshot();
  EXPECT_EQ(s.commits_root, 2u);
  EXPECT_EQ(s.commits_read_only, 1u);
  EXPECT_EQ(s.commits_write, 1u);
  EXPECT_EQ(s.aborts_total(), 2u);
  EXPECT_EQ(s.nested_commits, 1u);
  EXPECT_EQ(s.nested_aborts_total, 4u);
  EXPECT_EQ(s.nested_aborts_parent_cause, 3u);
  EXPECT_EQ(s.nested_aborts_own_cause, 1u);
  EXPECT_DOUBLE_EQ(s.nested_abort_rate(), 0.75);
  EXPECT_EQ(s.enqueued, 1u);
}

TEST(Metrics, SnapshotDifference) {
  NodeMetrics metrics;
  metrics.add_commit(false);
  const auto before = metrics.snapshot();
  metrics.add_commit(false);
  metrics.add_commit(true);
  metrics.add_root_abort(tfa::AbortCause::kLockConflict);
  const auto delta = metrics.snapshot() - before;
  EXPECT_EQ(delta.commits_root, 2u);
  EXPECT_EQ(delta.aborts_total(), 1u);
}

TEST(Metrics, SnapshotSum) {
  MetricsSnapshot a, b;
  a.commits_root = 3;
  a.nested_aborts_total = 2;
  b.commits_root = 4;
  b.nested_aborts_total = 5;
  a += b;
  EXPECT_EQ(a.commits_root, 7u);
  EXPECT_EQ(a.nested_aborts_total, 7u);
}

TEST(Metrics, EmptyNestedAbortRateIsZero) {
  MetricsSnapshot s;
  EXPECT_DOUBLE_EQ(s.nested_abort_rate(), 0.0);
}

// -------------------------------------------------------------- cluster ----

ClusterConfig tiny_cluster(std::uint32_t nodes = 3) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.workers_per_node = 0;
  cfg.topology.min_delay = sim_us(1);
  cfg.topology.max_delay = sim_us(30);
  return cfg;
}

TEST(Cluster, CreateObjectPlacesStoreAndDirectory) {
  Cluster cluster(tiny_cluster());
  const ObjectId oid{900};
  cluster.create_object(std::make_unique<Box>(oid, 5), /*owner=*/2);
  EXPECT_TRUE(cluster.node(2).store().owns(oid));
  const NodeId home = dsm::home_node(oid, cluster.size());
  EXPECT_EQ(cluster.node(home).directory().lookup(oid).value(), 2u);
  cluster.shutdown();
}

TEST(Cluster, CommittedCopyFollowsOwnership) {
  Cluster cluster(tiny_cluster());
  const ObjectId oid{901};
  cluster.create_object(std::make_unique<Box>(oid, 1), 0);
  ASSERT_TRUE(cluster.execute(1, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(oid).value = 42;
  }).committed);
  const auto snap = cluster.committed_copy(oid);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(object_cast<Box>(*snap).value, 42);
  EXPECT_EQ(cluster.committed_copy(ObjectId{999}), nullptr);
  cluster.shutdown();
}

TEST(Cluster, ExecuteFromEveryNode) {
  Cluster cluster(tiny_cluster(4));
  const ObjectId oid{902};
  cluster.create_object(std::make_unique<Box>(oid, 0), 3);
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_TRUE(cluster.execute(n, 1, [&](tfa::Txn& tx) {
      tx.write<Box>(oid).value += 1;
    }).committed);
  }
  EXPECT_EQ(object_cast<Box>(*cluster.committed_copy(oid)).value, 4);
  cluster.shutdown();
}

TEST(Cluster, ShutdownIsIdempotent) {
  Cluster cluster(tiny_cluster());
  cluster.shutdown();
  cluster.shutdown();  // second call must be a no-op
}

TEST(Cluster, RepeatedWorkerCycles) {
  auto wl = workloads::make_workload("dht", [] {
    workloads::WorkloadConfig c;
    c.local_work = 0;
    return c;
  }());
  ClusterConfig cfg = tiny_cluster(3);
  cfg.workers_per_node = 2;
  Cluster cluster(cfg);
  wl->setup(cluster);
  for (int cycle = 0; cycle < 3; ++cycle) {
    cluster.start_workers(*wl);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    cluster.stop_workers();
    EXPECT_TRUE(wl->verify(cluster)) << "cycle " << cycle;
  }
  EXPECT_GT(cluster.total_metrics().commits_root, 0u);
  cluster.shutdown();
}

TEST(Cluster, ShutdownUnderLoadIsSafe) {
  // Shut down abruptly while workers are mid-transaction: no hang, no crash.
  auto wl = workloads::make_workload("bank", [] {
    workloads::WorkloadConfig c;
    c.read_ratio = 0.1;
    return c;
  }());
  ClusterConfig cfg = tiny_cluster(4);
  cfg.workers_per_node = 2;
  Cluster cluster(cfg);
  wl->setup(cluster);
  cluster.start_workers(*wl);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cluster.shutdown();  // includes worker stop + pending-call cut
}

TEST(Cluster, MergedLatencyPopulatedAfterStop) {
  auto wl = workloads::make_workload("dht", [] {
    workloads::WorkloadConfig c;
    c.local_work = 0;
    return c;
  }());
  ClusterConfig cfg = tiny_cluster(2);
  cfg.workers_per_node = 1;
  Cluster cluster(cfg);
  wl->setup(cluster);
  cluster.start_workers(*wl);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  cluster.stop_workers();
  EXPECT_GT(cluster.merged_latency().count(), 0u);
  EXPECT_GT(cluster.merged_latency().value_at_percentile(50), 0u);
  cluster.shutdown();
}

TEST(Cluster, TwoWorkloadsCoexist) {
  // Id spaces are disjoint: bank and dht can share one cluster.
  workloads::WorkloadConfig c;
  c.local_work = 0;
  auto bank = workloads::make_workload("bank", c);
  auto dht = workloads::make_workload("dht", c);
  Cluster cluster(tiny_cluster(3));
  bank->setup(cluster);
  dht->setup(cluster);
  Xoshiro256 rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto op_a = bank->next_op(0, rng);
    const auto op_b = dht->next_op(1, rng);
    ASSERT_TRUE(cluster.execute(0, op_a.profile, op_a.body).committed);
    ASSERT_TRUE(cluster.execute(1, op_b.profile, op_b.body).committed);
  }
  EXPECT_TRUE(bank->verify(cluster));
  EXPECT_TRUE(dht->verify(cluster));
  cluster.shutdown();
}

// ----------------------------------------------------------- experiment ----

TEST(Experiment, ProducesConsistentResult) {
  auto wl = workloads::make_workload("dht", [] {
    workloads::WorkloadConfig c;
    c.read_ratio = 0.5;
    c.local_work = 0;
    return c;
  }());
  ExperimentConfig cfg;
  cfg.cluster = tiny_cluster(3);
  cfg.cluster.workers_per_node = 2;
  cfg.warmup = sim_ms(30);
  cfg.measure = sim_ms(120);
  const auto result = run_experiment(*wl, cfg);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_GT(result.delta.commits_root, 0u);
  EXPECT_TRUE(result.verified);
  EXPECT_GT(result.messages, result.delta.commits_root);  // >1 message per txn
  EXPECT_FALSE(result.summary().empty());
  // Throughput must equal window commits / window seconds (approximately;
  // the window is wall-clock measured).
  const double implied =
      result.throughput * 0.12;  // measure = 120 ms
  EXPECT_NEAR(implied, static_cast<double>(result.delta.commits_root),
              static_cast<double>(result.delta.commits_root) * 0.25 + 2);
}

TEST(Experiment, RunResultAttemptsCounted) {
  Cluster cluster(tiny_cluster(2));
  const ObjectId oid{903};
  cluster.create_object(std::make_unique<Box>(oid, 0), 0);
  int tries = 0;
  const auto result = cluster.execute(0, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(oid).value += 1;
    if (++tries < 3) tx.retry();
  });
  EXPECT_TRUE(result.committed);
  EXPECT_EQ(result.attempts, 3u);
  EXPECT_GT(result.latency, 0);
  cluster.shutdown();
}

}  // namespace
}  // namespace hyflow::runtime
