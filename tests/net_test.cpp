// Unit tests for the network substrate: topology/latency model, message
// delivery, RPC matching (single reply, double reply, abandonment/orphans,
// shutdown), and transport statistics.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "net/comm.hpp"
#include "net/network.hpp"
#include "net/rpc.hpp"

namespace hyflow::net {
namespace {

TopologyConfig fast_topology(std::uint32_t nodes) {
  TopologyConfig cfg;
  cfg.nodes = nodes;
  cfg.min_delay = sim_us(50);
  cfg.max_delay = sim_us(300);
  cfg.local_delay = sim_us(1);
  cfg.seed = 42;
  return cfg;
}

// ------------------------------------------------------------- Topology ----

TEST(Topology, DelaysSymmetricAndBounded) {
  Topology topo(fast_topology(16));
  for (NodeId i = 0; i < 16; ++i) {
    for (NodeId j = 0; j < 16; ++j) {
      const auto d = topo.delay(i, j);
      EXPECT_EQ(d, topo.delay(j, i));
      if (i == j) {
        EXPECT_EQ(d, sim_us(1));
      } else {
        EXPECT_GE(d, sim_us(50));
        EXPECT_LE(d, sim_us(300));
      }
    }
  }
}

TEST(Topology, DeterministicBySeed) {
  Topology a(fast_topology(8)), b(fast_topology(8));
  auto cfg = fast_topology(8);
  cfg.seed = 1234;
  Topology c(cfg);
  bool differs = false;
  for (NodeId i = 0; i < 8; ++i) {
    for (NodeId j = 0; j < 8; ++j) {
      EXPECT_EQ(a.delay(i, j), b.delay(i, j));
      differs |= a.delay(i, j) != c.delay(i, j);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(Topology, TriangleInequalityOnDistances) {
  Topology topo(fast_topology(10));
  for (NodeId i = 0; i < 10; ++i)
    for (NodeId j = 0; j < 10; ++j)
      for (NodeId k = 0; k < 10; ++k)
        EXPECT_LE(topo.distance(i, j), topo.distance(i, k) + topo.distance(k, j) + 1e-12);
}

TEST(Topology, FullDelayRangeUsed) {
  Topology topo(fast_topology(32));
  SimDuration lo = sim_ms(1000), hi = 0;
  for (NodeId i = 0; i < 32; ++i)
    for (NodeId j = 0; j < 32; ++j)
      if (i != j) {
        lo = std::min(lo, topo.delay(i, j));
        hi = std::max(hi, topo.delay(i, j));
      }
  EXPECT_GE(lo, sim_us(50));   // never below the configured minimum
  EXPECT_EQ(hi, sim_us(300));  // the diameter pair is pinned to the maximum
  EXPECT_LT(lo, hi);           // and the range is genuinely spread
}

// -------------------------------------------------------------- Network ----

struct TestNet {
  explicit TestNet(std::uint32_t nodes) : network(Topology(fast_topology(nodes)), 2) {
    inboxes.resize(nodes);
    for (NodeId id = 0; id < nodes; ++id) {
      network.register_handler(id, [this, id](Message m) {
        std::scoped_lock lk(mu);
        inboxes[id].push_back(std::move(m));
      });
    }
    network.start();
  }
  // Stop (and join) the delivery threads before the members they touch —
  // `mu`/`inboxes` — are destroyed; members destruct in reverse order, so
  // without this the handlers race the fixture teardown.
  ~TestNet() { network.stop(); }
  std::vector<Message> inbox(NodeId id) {
    std::scoped_lock lk(mu);
    return inboxes[id];
  }
  Network network;
  std::mutex mu;
  std::vector<std::vector<Message>> inboxes;
};

Message make_msg(NodeId from, NodeId to) {
  Message m;
  m.from = from;
  m.to = to;
  m.payload = FindOwnerRequest{ObjectId{1}};
  return m;
}

TEST(Network, DeliversToHandler) {
  TestNet net(4);
  const auto id = net.network.send(make_msg(0, 3));
  EXPECT_GT(id, 0u);
  net.network.wait_idle();
  const auto inbox = net.inbox(3);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].from, 0u);
  EXPECT_EQ(inbox[0].msg_id, id);
}

TEST(Network, PerPairFifo) {
  TestNet net(2);
  std::vector<std::uint64_t> sent;
  for (int i = 0; i < 50; ++i) sent.push_back(net.network.send(make_msg(0, 1)));
  net.network.wait_idle();
  const auto inbox = net.inbox(1);
  ASSERT_EQ(inbox.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(inbox[i].msg_id, sent[i]);
}

TEST(Network, SelfSendWorks) {
  TestNet net(2);
  net.network.send(make_msg(1, 1));
  net.network.wait_idle();
  EXPECT_EQ(net.inbox(1).size(), 1u);
}

TEST(Network, LatencyRespected) {
  TestNet net(8);
  // Find the farthest pair and check wall-clock delivery takes >= its delay.
  NodeId a = 0, b = 1;
  SimDuration best = 0;
  for (NodeId i = 0; i < 8; ++i)
    for (NodeId j = 0; j < 8; ++j)
      if (net.network.topology().delay(i, j) > best) {
        best = net.network.topology().delay(i, j);
        a = i;
        b = j;
      }
  const SimTime t0 = sim_now();
  net.network.send(make_msg(a, b));
  net.network.wait_idle();
  EXPECT_GE(sim_now() - t0, best);
}

TEST(Network, StatsCount) {
  TestNet net(3);
  for (int i = 0; i < 7; ++i) net.network.send(make_msg(0, 1));
  net.network.wait_idle();
  EXPECT_EQ(net.network.stats().messages.load(), 7u);
  EXPECT_GT(net.network.stats().bytes.load(), 0u);
}

TEST(Network, SendAfterStopDropped) {
  auto net = std::make_unique<TestNet>(2);
  net->network.stop();
  EXPECT_EQ(net->network.send(make_msg(0, 1)), 0u);
}

// Regression: stop() used to notify timer_cv_ without holding timer_mu_.
// The dispatcher's wake condition includes st.stop_requested(), which is not
// written under that mutex, so the notify could land between the
// dispatcher's check and its wait and be lost — stop() then hung joining a
// dispatcher that slept forever. Not deterministically reproducible (the
// window is a few instructions), so hammer start/stop cycles against an
// idle dispatcher: pre-fix this eventually wedges, post-fix every stop()
// returns promptly.
TEST(Network, StopWakesIdleDispatcher) {
  for (int i = 0; i < 200; ++i) {
    TestNet net(2);
    if (i % 2 == 0) {
      net.network.send(make_msg(0, 1));  // alternate idle and busy stops
      net.network.wait_idle();
    }
    net.network.stop();
  }
}

// ----------------------------------------------------------------- RPC -----

TEST(PendingCalls, SingleReply) {
  PendingCalls pending;
  auto call = pending.open(10);
  Message reply;
  reply.reply_to = 10;
  reply.payload = FindOwnerResponse{ObjectId{1}, 2, true};
  EXPECT_TRUE(pending.deliver(reply));
  const auto got = pending.wait(call, 10, std::nullopt);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::get<FindOwnerResponse>(got->payload).owner, 2u);
  pending.done(10);
  EXPECT_EQ(pending.open_count(), 0u);
}

TEST(PendingCalls, TwoRepliesSameCall) {
  // The enqueue-then-handoff flow: one request, two replies.
  PendingCalls pending;
  auto call = pending.open(5);
  Message first;
  first.reply_to = 5;
  first.payload = ObjectResponse{};  // "enqueued"
  Message second;
  second.reply_to = 5;
  second.payload = ObjectResponse{};  // the pushed object
  EXPECT_TRUE(pending.deliver(first));
  EXPECT_TRUE(pending.deliver(second));
  EXPECT_TRUE(pending.wait(call, 5, std::nullopt).has_value());
  EXPECT_TRUE(pending.wait(call, 5, std::nullopt).has_value());
  pending.done(5);
}

TEST(PendingCalls, TimeoutAbandonsAndOrphansLateReply) {
  PendingCalls pending;
  auto call = pending.open(7);
  const auto got = pending.wait(call, 7, sim_ms(5));
  EXPECT_FALSE(got.has_value());
  Message late;
  late.reply_to = 7;
  EXPECT_FALSE(pending.deliver(late));  // orphan
}

TEST(PendingCalls, ReplyWinsRaceAgainstTimeout) {
  PendingCalls pending;
  auto call = pending.open(9);
  std::jthread replier([&pending] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Message reply;
    reply.reply_to = 9;
    pending.deliver(reply);
  });
  // Generous timeout: the reply must be returned, not abandoned.
  const auto got = pending.wait(call, 9, sim_ms(500));
  EXPECT_TRUE(got.has_value());
  pending.done(9);
}

TEST(PendingCalls, CloseAllUnblocksWaiters) {
  PendingCalls pending;
  auto call = pending.open(11);
  std::jthread closer([&pending] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pending.close_all();
  });
  EXPECT_FALSE(pending.wait(call, 11, std::nullopt).has_value());
  // After close, new calls fail fast.
  auto call2 = pending.open(12);
  EXPECT_FALSE(pending.wait(call2, 12, std::nullopt).has_value());
  // reopen() re-arms.
  pending.reopen();
  auto call3 = pending.open(13);
  Message reply;
  reply.reply_to = 13;
  EXPECT_TRUE(pending.deliver(reply));
  EXPECT_TRUE(pending.wait(call3, 13, std::nullopt).has_value());
}

TEST(PendingCalls, UnknownReplyIsOrphan) {
  PendingCalls pending;
  Message reply;
  reply.reply_to = 999;
  EXPECT_FALSE(pending.deliver(reply));
}

TEST(PendingCalls, AbandonRaceNeverLosesAReply) {
  // Regression: a reply racing a timeout-abandon must end up exactly one
  // place — returned by wait() or reported as an orphan by deliver() —
  // never accepted by deliver() yet unseen by wait() (a lost lock grant).
  // The 1-tick timeout against an immediate deliver makes both interleavings
  // common across iterations.
  for (int i = 0; i < 300; ++i) {
    PendingCalls pending;
    const std::uint64_t id = 100 + static_cast<std::uint64_t>(i);
    auto call = pending.open(id);
    std::promise<bool> accepted;
    std::jthread replier([&pending, id, &accepted] {
      Message reply;
      reply.reply_to = id;
      accepted.set_value(pending.deliver(reply));
    });
    const auto got = pending.wait(call, id, 1);  // 1ns: expires immediately
    const bool delivered = accepted.get_future().get();
    EXPECT_FALSE(delivered && !got.has_value())
        << "iteration " << i << ": deliver() accepted the reply but wait() lost it";
    if (got) pending.done(id);
    // Either way, any further reply must be an orphan now.
    Message late;
    late.reply_to = id;
    if (!got) {
      EXPECT_FALSE(pending.deliver(late));
    }
  }
}

TEST(Network, StopCountsAndReportsInFlightMessages) {
  // Messages still ticking in the timer queue when stop() cuts them off
  // must be accounted, not silently discarded.
  TopologyConfig cfg;
  cfg.nodes = 2;
  cfg.min_delay = sim_ms(200);  // far enough out that stop() beats delivery
  cfg.max_delay = sim_ms(200);
  cfg.local_delay = sim_ms(200);
  Network net{Topology(cfg)};
  net.register_handler(0, [](Message) {});
  net.register_handler(1, [](Message) {});
  net.start();
  for (int i = 0; i < 10; ++i) net.send(make_msg(0, 1));
  net.stop();
  EXPECT_EQ(net.stats().dropped_on_stop.load(), 10u);
  EXPECT_EQ(net.stats().messages.load(), 10u);
}

TEST(Network, CleanStopDropsNothing) {
  TestNet net(2);
  for (int i = 0; i < 10; ++i) net.network.send(make_msg(0, 1));
  net.network.wait_idle();
  net.network.stop();
  EXPECT_EQ(net.network.stats().dropped_on_stop.load(), 0u);
}

TEST(RetryPolicy, TimeoutsGrowAndStayBounded) {
  RetryPolicy policy;
  policy.base_timeout = sim_ms(8);
  policy.max_timeout = sim_ms(50);
  for (std::uint64_t id = 1; id <= 20; ++id) {
    SimDuration prev = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const SimDuration t = policy.timeout_for(attempt, id);
      EXPECT_GE(t, static_cast<SimDuration>(static_cast<double>(policy.base_timeout) * 0.74));
      EXPECT_LE(t, static_cast<SimDuration>(static_cast<double>(policy.max_timeout) * 1.26));
      // Deterministic: same (attempt, id) always yields the same timeout.
      EXPECT_EQ(t, policy.timeout_for(attempt, id));
      if (attempt >= 4) {
        EXPECT_GT(t, prev / 2);  // capped region stays high
      }
      prev = t;
    }
  }
}

}  // namespace
}  // namespace hyflow::net
