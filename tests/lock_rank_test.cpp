// Tests for the runtime lock-rank deadlock validator (util/lock_rank.hpp):
// acquiring ranked locks against the documented hierarchy must abort with
// both acquisition sites; following the hierarchy must be silent.

#include <gtest/gtest.h>

#include "util/blocking_queue.hpp"
#include "util/lock_rank.hpp"
#include "util/mutex.hpp"
#include "util/spinlock.hpp"

namespace hyflow {
namespace {

#ifdef HYFLOW_LOCK_RANK_CHECKS

TEST(LockRankDeathTest, OutOfOrderAcquisitionAborts) {
  // Alg. 4's chain is directory -> store -> queue; taking the directory
  // *after* the store inverts it and must die, naming both locks.
  auto invert = [] {
    Mutex store(LockRank::kObjectStore, "test-store");
    Mutex dir(LockRank::kDirectory, "test-directory");
    MutexLock hold_store(store);
    MutexLock hold_dir(dir);  // rank 10 under rank 20: inversion
  };
  EXPECT_DEATH(invert(), "lock-rank violation.*test-directory.*test-store");
}

TEST(LockRankDeathTest, EqualRankNestingAborts) {
  // Two instances of the same class must never nest (A->B in one thread,
  // B->A in another deadlocks while each order alone looks fine).
  auto nest_same_rank = [] {
    Mutex a(LockRank::kInbox, "inbox-a");
    Mutex b(LockRank::kInbox, "inbox-b");
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  };
  EXPECT_DEATH(nest_same_rank(), "lock-rank violation.*inbox-b.*inbox-a");
}

TEST(LockRankDeathTest, SpinLockParticipates) {
  auto invert = [] {
    SpinLock inner(LockRank::kSchedulerQueue, "test-queue");
    Mutex outer(LockRank::kContention, "test-contention");
    MutexLock hold(outer);
    inner.lock();  // rank 30 under rank 50: inversion
  };
  EXPECT_DEATH(invert(), "lock-rank violation.*test-queue.*test-contention");
}

TEST(LockRank, InOrderChainPasses) {
  Mutex dir(LockRank::kDirectory, "test-directory");
  Mutex store(LockRank::kObjectStore, "test-store");
  Mutex queue(LockRank::kSchedulerQueue, "test-queue");
  {
    MutexLock hold_dir(dir);
    MutexLock hold_store(store);
    MutexLock hold_queue(queue);
    EXPECT_EQ(lock_rank::held_count(), 3);
  }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRank, ReleaseRestoresFreedom) {
  // Sequential (non-nested) use in any order is legal: the inversion rule
  // only applies to locks held simultaneously.
  Mutex dir(LockRank::kDirectory, "test-directory");
  Mutex store(LockRank::kObjectStore, "test-store");
  {
    MutexLock hold(store);
  }
  {
    MutexLock hold(dir);  // lower rank, but nothing is held any more
  }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRank, TryLockIsExemptButRecorded) {
  Mutex store(LockRank::kObjectStore, "test-store");
  Mutex dir(LockRank::kDirectory, "test-directory");
  MutexLock hold(store);
  // A non-blocking acquisition cannot deadlock, so inverting via try_lock
  // is allowed...
  ASSERT_TRUE(dir.try_lock());
  EXPECT_EQ(lock_rank::held_count(), 2);
  dir.unlock();
  EXPECT_EQ(lock_rank::held_count(), 1);
}

TEST(LockRankDeathTest, BlockingAcquireAfterTryLockStillChecked) {
  // ...but the try-locked capability is recorded, so a later *blocking*
  // acquisition below it still trips the validator.
  auto blocked_under_trylock = [] {
    Mutex queue(LockRank::kSchedulerQueue, "test-queue");
    Mutex store(LockRank::kObjectStore, "test-store");
    ASSERT_TRUE(queue.try_lock());
    MutexLock hold(store);  // rank 20 under recorded rank 30
  };
  EXPECT_DEATH(blocked_under_trylock(), "lock-rank violation.*test-store.*test-queue");
}

TEST(LockRank, UnrankedLocksOptOut) {
  Mutex ranked(LockRank::kObjectStore, "test-store");
  Mutex unranked;  // kUnranked: utility lock, exempt from ordering
  MutexLock hold_ranked(ranked);
  {
    MutexLock hold_unranked(unranked);
    EXPECT_EQ(lock_rank::held_count(), 1);  // unranked never recorded
  }
}

TEST(LockRank, BlockingQueueRanksAsInbox) {
  // The production BlockingQueue participates: popping while holding the
  // (higher-ranked) log lock would abort, normal use is silent.
  BlockingQueue<int> q;
  q.push(7);
  EXPECT_EQ(q.try_pop(), std::optional<int>(7));
  EXPECT_EQ(lock_rank::held_count(), 0);
}

#else  // !HYFLOW_LOCK_RANK_CHECKS

TEST(LockRank, DisabledAtBuildTime) {
  GTEST_SKIP() << "built with -DHYFLOW_LOCK_RANK=OFF; validator compiled out";
}

#endif

}  // namespace
}  // namespace hyflow
