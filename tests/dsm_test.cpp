// Unit tests for the dataflow object layer: directory shard semantics,
// owner-side object store (lock/validate/evict/commit), object cloning and
// the owner resolver over a live mini-cluster.
#include <gtest/gtest.h>

#include <set>

#include "dsm/directory.hpp"
#include "dsm/object_store.hpp"
#include "runtime/cluster.hpp"

namespace hyflow {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

ObjectSnapshot snap(ObjectId id, int v) { return std::make_shared<Box>(id, v); }

// ------------------------------------------------------------ Directory ----

TEST(Directory, PublishLookup) {
  dsm::DirectoryShard dir;
  dir.publish(ObjectId{1}, 3);
  EXPECT_EQ(dir.lookup(ObjectId{1}).value(), 3u);
  EXPECT_FALSE(dir.lookup(ObjectId{2}).has_value());
  EXPECT_EQ(dir.size(), 1u);
}

TEST(Directory, RegistrationIsMonotonic) {
  dsm::DirectoryShard dir;
  dir.publish(ObjectId{1}, 0);
  EXPECT_TRUE(dir.register_owner(ObjectId{1}, 5, 10));
  EXPECT_EQ(dir.lookup(ObjectId{1}).value(), 5u);
  // A stale registration (older clock) must not clobber the newer owner.
  EXPECT_FALSE(dir.register_owner(ObjectId{1}, 7, 9));
  EXPECT_EQ(dir.lookup(ObjectId{1}).value(), 5u);
  // Equal clock re-registration is accepted (idempotent retry).
  EXPECT_TRUE(dir.register_owner(ObjectId{1}, 6, 10));
  EXPECT_EQ(dir.lookup(ObjectId{1}).value(), 6u);
}

TEST(Directory, RegisterUnknownObjectCreates) {
  dsm::DirectoryShard dir;
  EXPECT_TRUE(dir.register_owner(ObjectId{9}, 2, 1));
  EXPECT_EQ(dir.lookup(ObjectId{9}).value(), 2u);
}

TEST(Directory, HomeNodeSpreadsObjects) {
  std::set<NodeId> homes;
  for (std::uint64_t i = 1; i <= 200; ++i) homes.insert(dsm::home_node(ObjectId{i}, 8));
  EXPECT_EQ(homes.size(), 8u);  // every node is home to something
  // Deterministic.
  EXPECT_EQ(dsm::home_node(ObjectId{42}, 8), dsm::home_node(ObjectId{42}, 8));
}

// ---------------------------------------------------------- ObjectStore ----

TEST(ObjectStore, InstallGetOwns) {
  dsm::ObjectStore store;
  EXPECT_FALSE(store.owns(ObjectId{1}));
  store.install(snap(ObjectId{1}, 7), Version{3, 0});
  ASSERT_TRUE(store.owns(ObjectId{1}));
  const auto view = store.get(ObjectId{1});
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(object_cast<Box>(*view->object).value, 7);
  EXPECT_EQ(view->version.clock, 3u);
  EXPECT_FALSE(view->locked_by.valid());
}

TEST(ObjectStore, LockRequiresMatchingVersion) {
  dsm::ObjectStore store;
  store.install(snap(ObjectId{1}, 0), Version{5, 0});
  EXPECT_EQ(store.lock(ObjectId{1}, TxnId{10}, 4),
            dsm::ObjectStore::LockResult::kVersionMismatch);
  EXPECT_EQ(store.lock(ObjectId{1}, TxnId{10}, 5), dsm::ObjectStore::LockResult::kGranted);
}

TEST(ObjectStore, LockExclusiveButReentrant) {
  dsm::ObjectStore store;
  store.install(snap(ObjectId{1}, 0), Version{1, 0});
  EXPECT_EQ(store.lock(ObjectId{1}, TxnId{10}, 1), dsm::ObjectStore::LockResult::kGranted);
  EXPECT_EQ(store.lock(ObjectId{1}, TxnId{11}, 1), dsm::ObjectStore::LockResult::kBusy);
  EXPECT_EQ(store.lock(ObjectId{1}, TxnId{10}, 1), dsm::ObjectStore::LockResult::kGranted);
}

TEST(ObjectStore, LockUnknownObjectIsNotOwner) {
  dsm::ObjectStore store;
  EXPECT_EQ(store.lock(ObjectId{1}, TxnId{10}, 0), dsm::ObjectStore::LockResult::kNotOwner);
}

TEST(ObjectStore, UnlockOnlyByHolder) {
  dsm::ObjectStore store;
  store.install(snap(ObjectId{1}, 0), Version{1, 0});
  store.lock(ObjectId{1}, TxnId{10}, 1);
  EXPECT_FALSE(store.unlock(ObjectId{1}, TxnId{11}));
  EXPECT_TRUE(store.unlock(ObjectId{1}, TxnId{10}));
  EXPECT_FALSE(store.get(ObjectId{1})->locked_by.valid());
}

TEST(ObjectStore, ValidateSemantics) {
  dsm::ObjectStore store;
  store.install(snap(ObjectId{1}, 0), Version{4, 0});
  EXPECT_EQ(store.validate(ObjectId{1}, 4, kInvalidTxn),
            dsm::ObjectStore::ValidateResult::kValid);
  EXPECT_EQ(store.validate(ObjectId{1}, 3, kInvalidTxn),
            dsm::ObjectStore::ValidateResult::kInvalid);
  EXPECT_EQ(store.validate(ObjectId{2}, 0, kInvalidTxn),
            dsm::ObjectStore::ValidateResult::kNotOwner);
  // A slot locked by someone else is about to change: invalid.
  store.lock(ObjectId{1}, TxnId{10}, 4);
  EXPECT_EQ(store.validate(ObjectId{1}, 4, kInvalidTxn),
            dsm::ObjectStore::ValidateResult::kInvalid);
  // ... but valid for the lock holder itself.
  EXPECT_EQ(store.validate(ObjectId{1}, 4, TxnId{10}),
            dsm::ObjectStore::ValidateResult::kValid);
}

TEST(ObjectStore, CommitInPlaceBumpsVersionAndUnlocks) {
  dsm::ObjectStore store;
  store.install(snap(ObjectId{1}, 1), Version{1, 0});
  store.lock(ObjectId{1}, TxnId{10}, 1);
  EXPECT_TRUE(store.commit_in_place(ObjectId{1}, TxnId{10}, snap(ObjectId{1}, 2), Version{2, 0}));
  const auto view = store.get(ObjectId{1});
  EXPECT_EQ(object_cast<Box>(*view->object).value, 2);
  EXPECT_EQ(view->version.clock, 2u);
  EXPECT_FALSE(view->locked_by.valid());
  // Without the lock, commit_in_place is refused.
  EXPECT_FALSE(store.commit_in_place(ObjectId{1}, TxnId{10}, snap(ObjectId{1}, 3), Version{3, 0}));
}

TEST(ObjectStore, EvictRemovesAndReturnsState) {
  dsm::ObjectStore store;
  store.install(snap(ObjectId{1}, 9), Version{1, 0});
  store.lock(ObjectId{1}, TxnId{10}, 1);
  const auto view = store.evict(ObjectId{1}, TxnId{10});
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(object_cast<Box>(*view->object).value, 9);
  EXPECT_FALSE(store.owns(ObjectId{1}));
  EXPECT_FALSE(store.evict(ObjectId{1}, TxnId{10}).has_value());
}

TEST(ObjectStore, OwnedIds) {
  dsm::ObjectStore store;
  store.install(snap(ObjectId{1}, 0), Version{1, 0});
  store.install(snap(ObjectId{2}, 0), Version{1, 0});
  auto ids = store.owned_ids();
  EXPECT_EQ(ids.size(), 2u);
  EXPECT_EQ(store.size(), 2u);
}

// --------------------------------------------------------------- Object ----

TEST(Object, CloneIsDeep) {
  Box original(ObjectId{1}, 5);
  auto copy = original.clone();
  object_cast<Box>(*copy).value = 6;
  EXPECT_EQ(original.value, 5);
  EXPECT_EQ(copy->id(), ObjectId{1});
}

TEST(Object, ObjectCastChecksType) {
  class Other : public TxObject<Other> {
   public:
    using TxObject::TxObject;
  };
  Box box(ObjectId{1});
  AbstractObject& ref = box;
  EXPECT_NO_THROW(object_cast<Box>(ref));
  EXPECT_THROW(object_cast<Other>(ref), std::bad_cast);
}

// -------------------------------------------------- Resolver on cluster ----

TEST(OwnerResolver, ResolvesThroughDirectoryAndTracksMoves) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  cluster.create_object(std::make_unique<Box>(ObjectId{70}, 1), /*owner=*/2);

  // A transaction from node 0 must find the object on node 2 and, after a
  // write commit from node 1, the ownership must move to node 1.
  int seen = 0;
  auto r0 = cluster.execute(0, 1, [&](tfa::Txn& tx) { seen = tx.read<Box>(ObjectId{70}).value; });
  EXPECT_TRUE(r0.committed);
  EXPECT_EQ(seen, 1);

  auto r1 = cluster.execute(1, 2, [&](tfa::Txn& tx) { tx.write<Box>(ObjectId{70}).value = 2; });
  EXPECT_TRUE(r1.committed);
  EXPECT_TRUE(cluster.node(1).store().owns(ObjectId{70}));
  EXPECT_FALSE(cluster.node(2).store().owns(ObjectId{70}));

  // Directory agrees.
  const NodeId home = dsm::home_node(ObjectId{70}, 4);
  EXPECT_EQ(cluster.node(home).directory().lookup(ObjectId{70}).value(), 1u);

  // Stale hints on node 0 recover via wrong_owner.
  auto r2 = cluster.execute(0, 1, [&](tfa::Txn& tx) { seen = tx.read<Box>(ObjectId{70}).value; });
  EXPECT_TRUE(r2.committed);
  EXPECT_EQ(seen, 2);
  cluster.shutdown();
}

}  // namespace
}  // namespace hyflow
