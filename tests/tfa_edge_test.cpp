// Edge cases of the TFA runtime: access-mode upgrades, ownership chasing,
// deep nesting, child-retry escalation, stats-table feedback, and the
// TFA+Backoff stall path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/cluster.hpp"

namespace hyflow {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

runtime::ClusterConfig quick(std::uint32_t nodes, const char* scheduler = "rts") {
  runtime::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.workers_per_node = 0;
  cfg.scheduler.kind = scheduler;
  cfg.topology.min_delay = sim_us(5);
  cfg.topology.max_delay = sim_us(80);
  return cfg;
}

TEST(TfaEdge, ReadThenWriteUpgradeUsesOneFetch) {
  runtime::Cluster cluster(quick(2));
  cluster.create_object(std::make_unique<Box>(ObjectId{1}, 3), 1);
  ASSERT_TRUE(cluster.execute(0, 1, [&](tfa::Txn& tx) {
    const int seen = tx.read<Box>(ObjectId{1}).value;    // fetch happens here
    const auto payloads_before = cluster.network().stats().object_payloads.load();
    tx.write<Box>(ObjectId{1}).value = seen + 1;         // upgrade: no refetch
    EXPECT_EQ(cluster.network().stats().object_payloads.load(), payloads_before);
    // The read view now reflects the buffered write.
    EXPECT_EQ(tx.read<Box>(ObjectId{1}).value, 4);
  }).committed);
  int v = 0;
  cluster.execute(1, 2, [&](tfa::Txn& tx) { v = tx.read<Box>(ObjectId{1}).value; });
  EXPECT_EQ(v, 4);
  cluster.shutdown();
}

TEST(TfaEdge, ReaderChasesMigratingObject) {
  // The object's ownership hops between nodes while a third node keeps
  // reading it: wrong-owner retries must always converge.
  runtime::Cluster cluster(quick(4));
  cluster.create_object(std::make_unique<Box>(ObjectId{2}, 0), 0);
  std::atomic<bool> stop{false};
  std::jthread migrator([&] {
    NodeId n = 1;
    while (!stop.load()) {
      cluster.execute(n, 1, [&](tfa::Txn& tx) { tx.write<Box>(ObjectId{2}).value += 1; });
      n = (n % 3) + 1;  // cycle nodes 1..3
    }
  });
  for (int i = 0; i < 25; ++i) {
    int v = -1;
    ASSERT_TRUE(cluster.execute(0, 2, [&](tfa::Txn& tx) {
      v = tx.read<Box>(ObjectId{2}).value;
    }).committed);
    ASSERT_GE(v, 0);
  }
  stop.store(true);
  migrator.join();
  cluster.shutdown();
}

TEST(TfaEdge, DeepNestingFourLevels) {
  runtime::Cluster cluster(quick(3));
  for (std::uint64_t i = 1; i <= 4; ++i)
    cluster.create_object(std::make_unique<Box>(ObjectId{i}, 0), static_cast<NodeId>(i % 3));
  ASSERT_TRUE(cluster.execute(0, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(ObjectId{1}).value = 1;
    tx.nested([&](tfa::Txn& l1) {
      l1.write<Box>(ObjectId{2}).value = 2;
      l1.nested([&](tfa::Txn& l2) {
        l2.write<Box>(ObjectId{3}).value = 3;
        l2.nested([&](tfa::Txn& l3) {
          EXPECT_EQ(l3.depth(), 3);
          l3.write<Box>(ObjectId{4}).value = 4;
          // The deepest level sees every ancestor's buffered write.
          EXPECT_EQ(l3.read<Box>(ObjectId{1}).value, 1);
          EXPECT_EQ(l3.read<Box>(ObjectId{2}).value, 2);
          EXPECT_EQ(l3.read<Box>(ObjectId{3}).value, 3);
        });
      });
    });
  }).committed);
  for (std::uint64_t i = 1; i <= 4; ++i) {
    int v = 0;
    cluster.execute(1, 2, [&](tfa::Txn& tx) { v = tx.read<Box>(ObjectId{i}).value; });
    EXPECT_EQ(v, static_cast<int>(i));
  }
  cluster.shutdown();
}

TEST(TfaEdge, ChildRetryEscalatesToParentAfterCap) {
  // A child whose reads are invalidated on every try must not spin forever:
  // after max_child_retries the abort escalates to the parent.
  runtime::ClusterConfig cfg = quick(2);
  cfg.tfa.max_child_retries = 2;
  runtime::Cluster cluster(cfg);
  cluster.create_object(std::make_unique<Box>(ObjectId{5}, 0), 1);
  cluster.create_object(std::make_unique<Box>(ObjectId{6}, 0), 1);

  std::atomic<int> child_runs{0};
  std::atomic<int> parent_runs{0};
  ASSERT_TRUE(cluster.execute(0, 1, [&](tfa::Txn& tx) {
    const int parent_attempt = parent_runs.fetch_add(1);
    tx.nested([&](tfa::Txn& child) {
      const int run = child_runs.fetch_add(1);
      (void)child.read<Box>(ObjectId{5});
      // Invalidate our own read a few times; stop after the parent has
      // restarted once so the test terminates.
      if (parent_attempt == 0 && run < 5) {
        ASSERT_TRUE(cluster.execute(1, 2, [&](tfa::Txn& rival) {
          rival.write<Box>(ObjectId{5}).value += 1;
        }).committed);
      }
      child.write<Box>(ObjectId{6}).value += 1;
    });
  }).committed);
  EXPECT_GE(parent_runs.load(), 2);  // escalation happened
  int v = 0;
  cluster.execute(1, 3, [&](tfa::Txn& tx) { v = tx.read<Box>(ObjectId{6}).value; });
  EXPECT_EQ(v, 1);  // exactly one child commit survived
  cluster.shutdown();
}

TEST(TfaEdge, StatsTableLearnsFromCommits) {
  runtime::Cluster cluster(quick(2));
  cluster.create_object(std::make_unique<Box>(ObjectId{7}, 0), 1);
  auto& stats = cluster.node(0).stats();
  const auto before = stats.expected_duration(42);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.execute(0, 42, [&](tfa::Txn& tx) {
      tx.write<Box>(ObjectId{7}).value += 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(3));
    }).committed);
  }
  const auto after = stats.expected_duration(42);
  EXPECT_NE(after, before);          // seeded by real commits
  EXPECT_GE(after, sim_ms(3));       // at least the injected local work
  cluster.shutdown();
}

TEST(TfaEdge, BackoffSchedulerStallsBeforeRetry) {
  // Under TFA+Backoff a denied transaction stalls; its total latency shows
  // the stall. Create a conflict window deterministically: T1 holds the
  // lock by committing a large write set while T2 requests mid-window.
  runtime::ClusterConfig cfg = quick(3, "backoff");
  cfg.scheduler.min_backoff = sim_ms(20);
  cfg.scheduler.max_backoff = sim_ms(30);
  runtime::Cluster cluster(cfg);
  cluster.create_object(std::make_unique<Box>(ObjectId{8}, 0), 1);

  std::atomic<bool> go{false};
  std::jthread holder([&] {
    cluster.execute(1, 1, [&](tfa::Txn& tx) {
      tx.write<Box>(ObjectId{8}).value += 1;
      go.store(true);
      // Stretch the pre-commit phase so the rival's request lands while we
      // validate... commit starts after body; stretch via many objects is
      // complex — instead rely on repetition below.
    });
  });
  while (!go.load()) std::this_thread::sleep_for(std::chrono::microseconds(50));
  // Hammer from node 2: some attempts hit the validation window and stall.
  const auto t0 = sim_now();
  std::uint64_t denials = 0;
  for (int i = 0; i < 20; ++i) {
    const auto r = cluster.execute(2, 2, [&](tfa::Txn& tx) {
      tx.write<Box>(ObjectId{8}).value += 1;
    });
    ASSERT_TRUE(r.committed);
    denials += r.attempts - 1;
  }
  holder.join();
  (void)t0;
  // Every transaction eventually commits even with stalls configured.
  int v = 0;
  cluster.execute(0, 3, [&](tfa::Txn& tx) { v = tx.read<Box>(ObjectId{8}).value; });
  EXPECT_EQ(v, 21);
  cluster.shutdown();
}

TEST(TfaEdge, ProfileIsolationInStatsTable) {
  runtime::Cluster cluster(quick(2));
  cluster.create_object(std::make_unique<Box>(ObjectId{9}, 0), 1);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.execute(0, 100, [&](tfa::Txn& tx) {
      tx.write<Box>(ObjectId{9}).value += 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }).committed);
  }
  auto& stats = cluster.node(0).stats();
  EXPECT_GE(stats.expected_duration(100), sim_ms(2));
  // Unrelated profile keeps the default estimate.
  EXPECT_EQ(stats.expected_duration(101),
            cluster.config().tfa.default_expected_duration);
  cluster.shutdown();
}

}  // namespace
}  // namespace hyflow
