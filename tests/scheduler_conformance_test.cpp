// Policy-conformance harness: every registered scheduler policy is driven
// with seeded randomized traces of conflicts, grants, NotInterested drops and
// Alg. 4 ownership hand-offs, checked step-by-step against a reference model
// of what must be parked where. The invariants are policy-agnostic — they
// pin down the queue *protocol*, not the ordering heuristics:
//
//   * no lost requester  — everything parked is eventually served (or was
//     explicitly removed), with address/mode/reply_msg_id intact
//   * no duplicate grant — a parked requester is served at most once
//   * grant-group shape  — one writer, or only readers
//   * hand-off conservation — extract_queue returns exactly the parked set
//     and absorb_queue re-parks all of it at the new owner, nothing invented
//   * bookkeeping        — queue_depth/total_queued always match the model
//
// Every suite name contains "Conformance" so the tsan-chaos preset picks the
// whole file up; the Hammer test is the data-race probe.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace hyflow::core {
namespace {

using net::AccessMode;

struct Parked {
  NodeId address = kInvalidNode;
  AccessMode mode = AccessMode::kRead;
  std::uint64_t reply_msg_id = 0;
};

// (oid -> txid -> routing info the scheduler must preserve)
using Model = std::map<std::uint64_t, std::map<std::uint64_t, Parked>>;

ConflictContext make_ctx(std::uint64_t oid, std::uint64_t txn, AccessMode mode,
                         SimDuration invested, std::uint32_t cl) {
  ConflictContext ctx;
  ctx.oid = ObjectId{oid};
  ctx.requester_node = static_cast<NodeId>(1 + txn % 64);
  ctx.request_msg_id = txn * 7 + 1;
  ctx.request.oid = ObjectId{oid};
  ctx.request.txid = TxnId{txn};
  ctx.request.mode = mode;
  ctx.request.requester_cl = cl;
  // Distinct per-txn start so timestamp/investment policies see distinct
  // identities; `invested` is the age the policy reads off the ETS.
  ctx.request.ets.start = 1000000 + static_cast<SimTime>(txn) * 131;
  ctx.request.ets.request = ctx.request.ets.start + invested;
  ctx.request.ets.expected_commit = ctx.request.ets.request + sim_ms(4);
  ctx.local_cl = cl;
  ctx.validator_remaining = sim_us(200);
  ctx.now = ctx.request.ets.request;
  return ctx;
}

SchedulerConfig conformance_config(const std::string& kind) {
  SchedulerConfig cfg;
  cfg.kind = kind;
  cfg.cl_threshold = 1000;  // RTS: park as much as possible
  cfg.max_queue = 32;
  return cfg;
}

// Checks one grant group against the model: known, unserved-before, fields
// preserved, and the all-readers-or-one-writer shape. Served entries are
// erased from the model (a second grant would then fail the "known" check).
void check_grant_group(const std::vector<net::QueuedRequester>& group,
                       std::map<std::uint64_t, Parked>& parked_at_oid, std::uint64_t oid) {
  std::size_t writers = 0;
  for (const auto& r : group) {
    const auto it = parked_at_oid.find(r.txid.value);
    ASSERT_NE(it, parked_at_oid.end())
        << "oid " << oid << ": granted txn " << r.txid.value
        << " that is not parked (duplicate grant or invented requester)";
    EXPECT_EQ(r.address, it->second.address) << "txn " << r.txid.value;
    EXPECT_EQ(r.mode, it->second.mode) << "txn " << r.txid.value;
    EXPECT_EQ(r.reply_msg_id, it->second.reply_msg_id) << "txn " << r.txid.value;
    if (r.mode == AccessMode::kWrite) ++writers;
    parked_at_oid.erase(it);
  }
  if (writers > 0) {
    EXPECT_EQ(group.size(), 1u) << "a writer must be granted alone (oid " << oid << ")";
  }
}

class SchedulerConformanceTest : public ::testing::TestWithParam<std::string> {};

// The main randomized trace: two scheduler instances stand in for two
// owner nodes; each object's queue migrates between them via
// extract_queue/absorb_queue exactly as a TFA commit hand-off would.
TEST_P(SchedulerConformanceTest, RandomizedTraceMatchesReferenceModel) {
  constexpr std::uint64_t kObjects = 4;
  for (const std::uint64_t seed : {11u, 42u, 1234u}) {
    const auto cfg = conformance_config(GetParam());
    auto owner_a = make_scheduler(cfg);
    auto owner_b = make_scheduler(cfg);
    Scheduler* owners[2] = {owner_a.get(), owner_b.get()};
    std::array<int, kObjects> owner_of{};  // which instance owns each object
    Model model;
    Xoshiro256 rng(seed);
    std::uint64_t next_txn = 1;

    for (int step = 0; step < 3000; ++step) {
      const std::uint64_t oid = 1 + rng.below(kObjects);
      auto& parked = model[oid];
      Scheduler& sched = *owners[owner_of[oid - 1]];
      const auto op = rng.below(100);

      if (op < 55) {  // fresh conflicting requester
        const std::uint64_t txn = next_txn++;
        const auto mode = rng.chance(0.3) ? AccessMode::kRead : AccessMode::kWrite;
        const auto ctx = make_ctx(oid, txn, mode, sim_us(100 + rng.below(50000)),
                                  static_cast<std::uint32_t>(rng.below(6)));
        const auto d = sched.on_conflict(ctx);
        EXPECT_GE(d.backoff, 0);
        if (d.action == ConflictAction::kEnqueue)
          parked[txn] = {ctx.requester_node, mode, ctx.request_msg_id};
      } else if (op < 70) {  // object became available: serve the head group
        auto group = sched.on_object_available(ObjectId{oid});
        if (parked.empty()) {
          EXPECT_TRUE(group.empty());
        }
        check_grant_group(group, parked, oid);
      } else if (op < 80 && !parked.empty()) {  // NotInterested from a parked txn
        auto it = parked.begin();
        std::advance(it, static_cast<long>(rng.below(parked.size())));
        sched.remove_requester(ObjectId{oid}, TxnId{it->first});
        parked.erase(it);
      } else if (op < 90) {  // ownership hand-off to the other instance
        auto moved = sched.extract_queue(ObjectId{oid});
        EXPECT_EQ(sched.queue_depth(ObjectId{oid}), 0u);
        std::set<std::uint64_t> moved_txns;
        for (const auto& r : moved) moved_txns.insert(r.txid.value);
        std::set<std::uint64_t> expected;
        for (const auto& [txn, info] : parked) expected.insert(txn);
        EXPECT_EQ(moved_txns, expected)
            << "oid " << oid << ": extract_queue lost or invented requesters";
        owner_of[oid - 1] ^= 1;
        owners[owner_of[oid - 1]]->absorb_queue(ObjectId{oid}, std::move(moved));
      } else if (!parked.empty()) {  // retry of an already-parked txn
        auto it = parked.begin();
        std::advance(it, static_cast<long>(rng.below(parked.size())));
        const std::uint64_t txn = it->first;
        const auto ctx = make_ctx(oid, txn, it->second.mode, sim_ms(60), 1);
        // The policy de-duplicates first, then re-decides from scratch; either
        // way the old entry must not linger next to a new one.
        if (sched.on_conflict(ctx).action == ConflictAction::kEnqueue)
          it->second = {ctx.requester_node, ctx.request.mode, ctx.request_msg_id};
        else
          parked.erase(it);
      }

      // Bookkeeping must track the model exactly, every step.
      ASSERT_EQ(owners[owner_of[oid - 1]]->queue_depth(ObjectId{oid}), parked.size())
          << GetParam() << " seed " << seed << " step " << step << " oid " << oid;
      ASSERT_EQ(owners[owner_of[oid - 1] ^ 1]->queue_depth(ObjectId{oid}), 0u);
    }

    // Drain: everything still parked must be served, each exactly once.
    for (std::uint64_t oid = 1; oid <= kObjects; ++oid) {
      Scheduler& sched = *owners[owner_of[oid - 1]];
      auto& parked = model[oid];
      int guard = 0;
      while (!parked.empty()) {
        auto group = sched.on_object_available(ObjectId{oid});
        ASSERT_FALSE(group.empty())
            << GetParam() << ": queue stuck with " << parked.size() << " parked at oid "
            << oid;
        check_grant_group(group, parked, oid);
        ASSERT_LT(++guard, 10000);
      }
    }
    EXPECT_EQ(owner_a->total_queued(), 0u) << GetParam() << " seed " << seed;
    EXPECT_EQ(owner_b->total_queued(), 0u) << GetParam() << " seed " << seed;
  }
}

// Concurrency probe (run under the tsan preset): several threads hammer one
// scheduler instance with disjoint txid ranges while grants and hand-offs
// race against enqueues. Exact ordering is unobservable here; conservation
// is: after a final drain, grants == enqueues and nothing stays parked.
TEST_P(SchedulerConformanceTest, ConcurrentHammerConservesRequesters) {
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 1500;
  constexpr std::uint64_t kObjects = 8;
  const auto cfg = conformance_config(GetParam());
  auto sched = make_scheduler(cfg);
  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> granted{0};
  std::atomic<std::uint64_t> removed{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(0xc0ffee + static_cast<std::uint64_t>(t));
      std::uint64_t next_txn = static_cast<std::uint64_t>(t) * 1000000 + 1;
      std::uint64_t last_parked_txn = 0;
      std::uint64_t last_parked_oid = 0;
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::uint64_t oid = 1 + rng.below(kObjects);
        const auto op = rng.below(100);
        if (op < 70) {
          const std::uint64_t txn = next_txn++;
          const auto mode = rng.chance(0.3) ? AccessMode::kRead : AccessMode::kWrite;
          const auto ctx = make_ctx(oid, txn, mode, sim_us(100 + rng.below(50000)),
                                    static_cast<std::uint32_t>(rng.below(6)));
          if (sched->on_conflict(ctx).action == ConflictAction::kEnqueue) {
            enqueued.fetch_add(1, std::memory_order_relaxed);
            last_parked_txn = txn;
            last_parked_oid = oid;
          }
        } else if (op < 90) {
          granted.fetch_add(sched->on_object_available(ObjectId{oid}).size(),
                            std::memory_order_relaxed);
        } else if (last_parked_txn != 0) {
          // NotInterested for this thread's own most recent parked txn. It
          // may already have been granted by another thread — then the
          // remove is a no-op and the count stays conservative, which is
          // why the final check is an inequality on removed.
          sched->remove_requester(ObjectId{last_parked_oid}, TxnId{last_parked_txn});
          removed.fetch_add(1, std::memory_order_relaxed);
          last_parked_txn = 0;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  for (std::uint64_t oid = 1; oid <= kObjects; ++oid) {
    int guard = 0;
    while (sched->queue_depth(ObjectId{oid}) > 0) {
      const auto group = sched->on_object_available(ObjectId{oid});
      ASSERT_FALSE(group.empty()) << "non-empty queue refused to drain at oid " << oid;
      granted.fetch_add(group.size(), std::memory_order_relaxed);
      ASSERT_LT(++guard, 100000);
    }
  }
  EXPECT_EQ(sched->total_queued(), 0u);
  // Every enqueue ends in exactly one grant or one successful remove; the
  // remove counter includes no-op removes, hence the bracket.
  EXPECT_LE(granted.load(), enqueued.load());
  EXPECT_GE(granted.load() + removed.load(), enqueued.load());
}

INSTANTIATE_TEST_SUITE_P(Zoo, SchedulerConformanceTest,
                         ::testing::ValuesIn(scheduler_names()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-' || c == '+') c = '_';
                           return name;
                         });

}  // namespace
}  // namespace hyflow::core
