// Node/Comm-layer tests: envelope construction, request/reply routing, the
// routed reply used by queue hand-offs, Lamport clock propagation through
// message envelopes, and orphan-reply handling.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/cluster.hpp"

namespace hyflow::runtime {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

struct NodePair : ::testing::Test {
  void SetUp() override {
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.workers_per_node = 0;
    cfg.topology.min_delay = sim_us(5);
    cfg.topology.max_delay = sim_us(60);
    cluster = std::make_unique<Cluster>(cfg);
  }
  void TearDown() override { cluster->shutdown(); }
  std::unique_ptr<Cluster> cluster;
};

TEST_F(NodePair, RequestReplyRoundTrip) {
  // Use the directory protocol as a ready-made request/reply pair.
  cluster->node(1).directory().publish(ObjectId{50}, 2);
  auto call = cluster->node(0).request(1, net::FindOwnerRequest{ObjectId{50}});
  const auto reply = call.wait();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->from, 1u);
  EXPECT_EQ(reply->to, 0u);
  const auto& resp = std::get<net::FindOwnerResponse>(reply->payload);
  EXPECT_TRUE(resp.known);
  EXPECT_EQ(resp.owner, 2u);
}

TEST_F(NodePair, RequestToUnknownObjectSaysUnknown) {
  auto call = cluster->node(0).request(1, net::FindOwnerRequest{ObjectId{51}});
  const auto reply = call.wait();
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(std::get<net::FindOwnerResponse>(reply->payload).known);
}

TEST_F(NodePair, EnvelopeCarriesSenderClock) {
  // Bump node 2's clock via commits; a later message from node 2 to node 0
  // must advance node 0's clock (Lamport receive rule).
  const ObjectId oid{52};
  cluster->create_object(std::make_unique<Box>(oid), 2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster->execute(2, 1, [&](tfa::Txn& tx) {
      tx.write<Box>(oid).value += 1;
    }).committed);
  }
  const auto clock2 = cluster->node(2).clock().read();
  ASSERT_GE(clock2, 3u);
  ASSERT_LT(cluster->node(0).clock().read(), clock2);
  // Any request/response pair with node 2 synchronises node 0.
  auto call = cluster->node(0).request(2, net::FindOwnerRequest{ObjectId{52}});
  ASSERT_TRUE(call.wait().has_value());
  EXPECT_GE(cluster->node(0).clock().read(), clock2);
}

TEST_F(NodePair, PostIsFireAndForget) {
  // AbortUnlock for a lock nobody holds is harmless and produces no reply.
  cluster->create_object(std::make_unique<Box>(ObjectId{53}), 1);
  net::AbortUnlock msg;
  msg.oid = ObjectId{53};
  msg.txid = TxnId{99};
  cluster->node(0).post(1, msg);
  cluster->network().wait_idle();
  EXPECT_FALSE(cluster->node(1).store().get(ObjectId{53})->locked_by.valid());
}

TEST_F(NodePair, RoutedReplyReachesForeignCall) {
  // reply_routed answers a request that a *different* node received — the
  // queue hand-off path: node 0 sends a request towards node 1 (a one-way
  // payload, so node 1 stays silent) and node 2 answers it by routed reply.
  auto call = cluster->node(0).request(1, net::NotInterested{ObjectId{54}, TxnId{7}});
  net::ObjectResponse grant;
  grant.oid = ObjectId{54};
  grant.txid = TxnId{7};
  grant.object = std::make_shared<Box>(ObjectId{54}, 5);
  cluster->node(2).reply_routed(/*to=*/0, call.id(), grant);
  const auto got = call.wait_for(sim_ms(500));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, 2u);  // the answer came from the third party
  const auto& resp = std::get<net::ObjectResponse>(got->payload);
  ASSERT_NE(resp.object, nullptr);
  EXPECT_EQ(object_cast<Box>(*resp.object).value, 5);
}

TEST_F(NodePair, OrphanGrantTriggersNotInterestedForwarding) {
  // A granted object whose requester abandoned its call must flow to the
  // next queued requester. Drive the real path: two transactions race for
  // an object under validation with RTS; one expires its backoff.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 0;
  cfg.scheduler.kind = "rts";
  cfg.scheduler.cl_threshold = 8;
  // Tiny max_backoff: enqueued requesters expire before hand-off.
  cfg.scheduler.min_backoff = sim_us(10);
  cfg.scheduler.max_backoff = sim_us(50);
  cfg.scheduler.handoff_slack = 0;
  Cluster c2(cfg);
  const ObjectId oid{55};
  c2.create_object(std::make_unique<Box>(oid), 0);
  // Plain concurrent increments; expiries must not lose updates.
  std::vector<std::jthread> threads;
  for (NodeId n = 0; n < 2; ++n) {
    threads.emplace_back([&c2, n, oid] {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(c2.execute(n, 1, [&](tfa::Txn& tx) {
          tx.write<Box>(oid).value += 1;
        }).committed);
      }
    });
  }
  threads.clear();
  int v = 0;
  c2.execute(0, 2, [&](tfa::Txn& tx) { v = tx.read<Box>(oid).value; });
  EXPECT_EQ(v, 20);
  c2.shutdown();
}

TEST_F(NodePair, WaitForTimesOutCleanly) {
  // A request whose reply is slower than the timeout: wait_for returns
  // nothing and the system keeps running (the late reply becomes an orphan).
  auto call = cluster->node(0).request(2, net::FindOwnerRequest{ObjectId{56}});
  const auto got = call.wait_for(1);  // 1 ns: guaranteed expiry
  EXPECT_FALSE(got.has_value());
  cluster->network().wait_idle();  // the orphan reply is absorbed
}

TEST_F(NodePair, StaleOwnerHintRetriesViaWrongOwner) {
  // The stale-directory path of Alg. 2: node 0 caches node 1 as the owner,
  // the object then migrates to node 2 (node 2's write commit registers it
  // there and evicts node 1's copy), and node 0's next write must bounce
  // off node 1 with wrong_owner, re-resolve, and still commit.
  const ObjectId oid{57};
  cluster->create_object(std::make_unique<Box>(oid, 5), 1);

  // Prime node 0's owner hint with a read served by node 1.
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    EXPECT_EQ(tx.read<Box>(oid).value, 5);
  }).committed);

  // Move ownership: a write from node 2 makes node 2 the owner.
  ASSERT_TRUE(cluster->execute(2, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(oid).value = 6;
  }).committed);
  cluster->network().wait_idle();

  const auto before = cluster->total_metrics();
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(oid).value += 10;
  }).committed);
  cluster->network().wait_idle();
  const auto after = cluster->total_metrics();
  EXPECT_GT(after.wrong_owner_retries, before.wrong_owner_retries)
      << "the stale hint should have forced at least one wrong-owner retry";
  EXPECT_EQ(object_cast<Box>(*cluster->committed_copy(oid)).value, 16);
}

TEST_F(NodePair, DuplicateRequestIsAnsweredFromTheReplyCache) {
  // Receiver-side dedup: re-sending a request under its original msg_id
  // must not re-execute the handler — the cached reply is replayed and the
  // dedup counter ticks.
  cluster->node(1).directory().publish(ObjectId{58}, 2);
  const net::FindOwnerRequest req{ObjectId{58}};
  auto call = cluster->node(0).request(1, req);
  const auto first = call.wait_for(sim_ms(100));
  ASSERT_TRUE(first.has_value());

  const auto before = cluster->node(1).metrics().snapshot();
  cluster->node(0).resend(1, call.id(), /*attempt=*/1, req);
  const auto second = call.wait_for(sim_ms(100));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(std::get<net::FindOwnerResponse>(second->payload).owner, 2u);
  cluster->network().wait_idle();
  const auto after = cluster->node(1).metrics().snapshot();
  EXPECT_EQ(after.dedup_hits, before.dedup_hits + 1);
  // And the resend itself is counted by the sender.
  EXPECT_GT(cluster->node(0).metrics().snapshot().rpc_retries, 0u);
}

}  // namespace
}  // namespace hyflow::runtime
