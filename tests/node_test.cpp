// Node/Comm-layer tests: envelope construction, request/reply routing, the
// routed reply used by queue hand-offs, Lamport clock propagation through
// message envelopes, and orphan-reply handling.
#include <gtest/gtest.h>

#include <thread>

#include "runtime/cluster.hpp"

namespace hyflow::runtime {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

struct NodePair : ::testing::Test {
  void SetUp() override {
    ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.workers_per_node = 0;
    cfg.topology.min_delay = sim_us(5);
    cfg.topology.max_delay = sim_us(60);
    cluster = std::make_unique<Cluster>(cfg);
  }
  void TearDown() override { cluster->shutdown(); }
  std::unique_ptr<Cluster> cluster;
};

TEST_F(NodePair, RequestReplyRoundTrip) {
  // Use the directory protocol as a ready-made request/reply pair.
  cluster->node(1).directory().publish(ObjectId{50}, 2);
  auto call = cluster->node(0).request(1, net::FindOwnerRequest{ObjectId{50}});
  const auto reply = call.wait();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->from, 1u);
  EXPECT_EQ(reply->to, 0u);
  const auto& resp = std::get<net::FindOwnerResponse>(reply->payload);
  EXPECT_TRUE(resp.known);
  EXPECT_EQ(resp.owner, 2u);
}

TEST_F(NodePair, RequestToUnknownObjectSaysUnknown) {
  auto call = cluster->node(0).request(1, net::FindOwnerRequest{ObjectId{51}});
  const auto reply = call.wait();
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(std::get<net::FindOwnerResponse>(reply->payload).known);
}

TEST_F(NodePair, EnvelopeCarriesSenderClock) {
  // Bump node 2's clock via commits; a later message from node 2 to node 0
  // must advance node 0's clock (Lamport receive rule).
  const ObjectId oid{52};
  cluster->create_object(std::make_unique<Box>(oid), 2);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster->execute(2, 1, [&](tfa::Txn& tx) {
      tx.write<Box>(oid).value += 1;
    }).committed);
  }
  const auto clock2 = cluster->node(2).clock().read();
  ASSERT_GE(clock2, 3u);
  ASSERT_LT(cluster->node(0).clock().read(), clock2);
  // Any request/response pair with node 2 synchronises node 0.
  auto call = cluster->node(0).request(2, net::FindOwnerRequest{ObjectId{52}});
  ASSERT_TRUE(call.wait().has_value());
  EXPECT_GE(cluster->node(0).clock().read(), clock2);
}

TEST_F(NodePair, PostIsFireAndForget) {
  // AbortUnlock for a lock nobody holds is harmless and produces no reply.
  cluster->create_object(std::make_unique<Box>(ObjectId{53}), 1);
  net::AbortUnlock msg;
  msg.oid = ObjectId{53};
  msg.txid = TxnId{99};
  cluster->node(0).post(1, msg);
  cluster->network().wait_idle();
  EXPECT_FALSE(cluster->node(1).store().get(ObjectId{53})->locked_by.valid());
}

TEST_F(NodePair, RoutedReplyReachesForeignCall) {
  // reply_routed answers a request that a *different* node received — the
  // queue hand-off path: node 0 sends a request towards node 1 (a one-way
  // payload, so node 1 stays silent) and node 2 answers it by routed reply.
  auto call = cluster->node(0).request(1, net::NotInterested{ObjectId{54}, TxnId{7}});
  net::ObjectResponse grant;
  grant.oid = ObjectId{54};
  grant.txid = TxnId{7};
  grant.object = std::make_shared<Box>(ObjectId{54}, 5);
  cluster->node(2).reply_routed(/*to=*/0, call.id(), grant);
  const auto got = call.wait_for(sim_ms(500));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->from, 2u);  // the answer came from the third party
  const auto& resp = std::get<net::ObjectResponse>(got->payload);
  ASSERT_NE(resp.object, nullptr);
  EXPECT_EQ(object_cast<Box>(*resp.object).value, 5);
}

TEST_F(NodePair, OrphanGrantTriggersNotInterestedForwarding) {
  // A granted object whose requester abandoned its call must flow to the
  // next queued requester. Drive the real path: two transactions race for
  // an object under validation with RTS; one expires its backoff.
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 0;
  cfg.scheduler.kind = "rts";
  cfg.scheduler.cl_threshold = 8;
  // Tiny max_backoff: enqueued requesters expire before hand-off.
  cfg.scheduler.min_backoff = sim_us(10);
  cfg.scheduler.max_backoff = sim_us(50);
  cfg.scheduler.handoff_slack = 0;
  Cluster c2(cfg);
  const ObjectId oid{55};
  c2.create_object(std::make_unique<Box>(oid), 0);
  // Plain concurrent increments; expiries must not lose updates.
  std::vector<std::jthread> threads;
  for (NodeId n = 0; n < 2; ++n) {
    threads.emplace_back([&c2, n, oid] {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(c2.execute(n, 1, [&](tfa::Txn& tx) {
          tx.write<Box>(oid).value += 1;
        }).committed);
      }
    });
  }
  threads.clear();
  int v = 0;
  c2.execute(0, 2, [&](tfa::Txn& tx) { v = tx.read<Box>(oid).value; });
  EXPECT_EQ(v, 20);
  c2.shutdown();
}

TEST_F(NodePair, WaitForTimesOutCleanly) {
  // A request whose reply is slower than the timeout: wait_for returns
  // nothing and the system keeps running (the late reply becomes an orphan).
  auto call = cluster->node(0).request(2, net::FindOwnerRequest{ObjectId{56}});
  const auto got = call.wait_for(1);  // 1 ns: guaranteed expiry
  EXPECT_FALSE(got.has_value());
  cluster->network().wait_idle();  // the orphan reply is absorbed
}

}  // namespace
}  // namespace hyflow::runtime
