// Closed-nesting semantics on a live cluster: child abort/retry isolation,
// parent abort rolling back committed children, visibility rules, deep
// nesting, object reuse across levels, and the Table-I abort accounting.
#include <gtest/gtest.h>

#include <atomic>

#include "runtime/cluster.hpp"

namespace hyflow {
namespace {

class Box : public TxObject<Box> {
 public:
  explicit Box(ObjectId id, int v = 0) : TxObject(id), value(v) {}
  int value;
};

struct NestingCluster : ::testing::Test {
  void SetUp() override {
    runtime::ClusterConfig cfg;
    cfg.nodes = 3;
    cfg.workers_per_node = 0;
    cluster = std::make_unique<runtime::Cluster>(cfg);
    for (std::uint64_t i = 1; i <= 6; ++i) {
      cluster->create_object(std::make_unique<Box>(ObjectId{i}, 0),
                             static_cast<NodeId>(i % 3));
    }
  }
  void TearDown() override { cluster->shutdown(); }

  int read_value(ObjectId oid) {
    int v = -1;
    cluster->execute(0, 99, [&](tfa::Txn& tx) { v = tx.read<Box>(oid).value; });
    return v;
  }

  std::unique_ptr<runtime::Cluster> cluster;
};

TEST_F(NestingCluster, ChildCommitMergesIntoParent) {
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.nested([&](tfa::Txn& child) { child.write<Box>(ObjectId{1}).value = 10; });
    // The parent sees the committed child's write...
    EXPECT_EQ(tx.read<Box>(ObjectId{1}).value, 10);
    // ... and can keep writing on top of it.
    tx.write<Box>(ObjectId{1}).value += 1;
  }).committed);
  EXPECT_EQ(read_value(ObjectId{1}), 11);
}

TEST_F(NestingCluster, ChildUserRetryDoesNotRollBackParent) {
  int child_attempts = 0;
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(ObjectId{1}).value = 5;
    tx.nested([&](tfa::Txn& child) {
      child.write<Box>(ObjectId{2}).value = 7;
      // Parent state is visible inside the child.
      EXPECT_EQ(child.read<Box>(ObjectId{1}).value, 5);
      ++child_attempts;
    });
  }).committed);
  EXPECT_EQ(child_attempts, 1);
  EXPECT_EQ(read_value(ObjectId{1}), 5);
  EXPECT_EQ(read_value(ObjectId{2}), 7);
}

TEST_F(NestingCluster, ParentAbortRollsBackCommittedChildren) {
  // The parent writes through a child, then force-aborts once via a rival
  // commit that invalidates its read set: the child's effect must vanish
  // on the aborted attempt and reappear only via the successful retry.
  std::atomic<int> attempts{0};
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    const int attempt = attempts.fetch_add(1);
    tx.nested([&](tfa::Txn& child) { child.write<Box>(ObjectId{1}).value += 100; });
    (void)tx.read<Box>(ObjectId{3});
    if (attempt == 0) {
      // Rival invalidates object 3 -> parent abort at commit validation.
      ASSERT_TRUE(cluster->execute(1, 2, [&](tfa::Txn& rival) {
        rival.write<Box>(ObjectId{3}).value += 1;
      }).committed);
    }
  }).committed);
  EXPECT_GE(attempts.load(), 2);
  // Exactly one increment survived: committed children of aborted attempts
  // rolled back with their parent.
  EXPECT_EQ(read_value(ObjectId{1}), 100);
}

TEST_F(NestingCluster, ParentAbortCountsNestedAbortsAsParentCaused) {
  const auto before = cluster->node(0).metrics().snapshot();
  std::atomic<int> attempts{0};
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    const int attempt = attempts.fetch_add(1);
    tx.nested([&](tfa::Txn& child) { child.write<Box>(ObjectId{1}).value += 1; });
    tx.nested([&](tfa::Txn& child) { child.write<Box>(ObjectId{2}).value += 1; });
    (void)tx.read<Box>(ObjectId{3});
    if (attempt == 0) {
      ASSERT_TRUE(cluster->execute(1, 2, [&](tfa::Txn& rival) {
        rival.write<Box>(ObjectId{3}).value += 1;
      }).committed);
    }
  }).committed);
  const auto after = cluster->node(0).metrics().snapshot();
  const auto delta = after - before;
  // The first attempt committed 2 children, then aborted: 2 parent-caused
  // nested aborts; the second attempt commits 2 children.
  EXPECT_GE(delta.nested_aborts_parent_cause, 2u);
  EXPECT_GE(delta.nested_commits, 4u);
}

TEST_F(NestingCluster, ChildWritesInvisibleUntilParentCommit) {
  // While the parent is live (child committed but parent not), another
  // transaction must still see the old value.
  int observed = -1;
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.nested([&](tfa::Txn& child) { child.write<Box>(ObjectId{4}).value = 50; });
    ASSERT_TRUE(cluster->execute(1, 2, [&](tfa::Txn& other) {
      observed = other.read<Box>(ObjectId{4}).value;
    }).committed);
  }).committed);
  EXPECT_EQ(observed, 0);               // pre-commit view
  EXPECT_EQ(read_value(ObjectId{4}), 50);  // post-commit view
}

TEST_F(NestingCluster, DeepNestingMergesThroughAllLevels) {
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(ObjectId{1}).value = 1;
    tx.nested([&](tfa::Txn& child) {
      child.write<Box>(ObjectId{1}).value += 10;  // writes through to ancestor
      child.write<Box>(ObjectId{2}).value = 2;
      child.nested([&](tfa::Txn& grandchild) {
        grandchild.write<Box>(ObjectId{1}).value += 100;
        grandchild.write<Box>(ObjectId{2}).value += 20;
        grandchild.write<Box>(ObjectId{3}).value = 3;
        EXPECT_EQ(grandchild.depth(), 2);
      });
      // Grandchild's effects visible in the child after its commit.
      EXPECT_EQ(child.read<Box>(ObjectId{1}).value, 111);
      EXPECT_EQ(child.read<Box>(ObjectId{2}).value, 22);
    });
    EXPECT_EQ(tx.read<Box>(ObjectId{3}).value, 3);
  }).committed);
  EXPECT_EQ(read_value(ObjectId{1}), 111);
  EXPECT_EQ(read_value(ObjectId{2}), 22);
  EXPECT_EQ(read_value(ObjectId{3}), 3);
}

TEST_F(NestingCluster, NestedObjectsFetchedOnceAcrossLevels) {
  // A child re-opening an object fetched by the parent must not trigger a
  // second network fetch: object-payload message count stays flat.
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    (void)tx.read<Box>(ObjectId{5});
    const auto payloads_before = cluster->network().stats().object_payloads.load();
    tx.nested([&](tfa::Txn& child) {
      (void)child.read<Box>(ObjectId{5});
      child.nested([&](tfa::Txn& grandchild) { (void)grandchild.read<Box>(ObjectId{5}); });
    });
    const auto payloads_after = cluster->network().stats().object_payloads.load();
    EXPECT_EQ(payloads_before, payloads_after);
  }).committed);
}

TEST_F(NestingCluster, UserRetryRestartsWholeTransaction) {
  std::atomic<int> attempts{0};
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.write<Box>(ObjectId{6}).value += 1;
    if (attempts.fetch_add(1) == 0) tx.retry();
  }).committed);
  EXPECT_EQ(attempts.load(), 2);
  EXPECT_EQ(read_value(ObjectId{6}), 1);  // only the committed attempt counts
}

TEST_F(NestingCluster, SiblingChildrenShareParentContext) {
  ASSERT_TRUE(cluster->execute(0, 1, [&](tfa::Txn& tx) {
    tx.nested([&](tfa::Txn& child) { child.write<Box>(ObjectId{1}).value = 5; });
    tx.nested([&](tfa::Txn& child) {
      // Second sibling sees the first sibling's committed effect.
      EXPECT_EQ(child.read<Box>(ObjectId{1}).value, 5);
      child.write<Box>(ObjectId{2}).value = child.read<Box>(ObjectId{1}).value * 2;
    });
  }).committed);
  EXPECT_EQ(read_value(ObjectId{2}), 10);
}

}  // namespace
}  // namespace hyflow
