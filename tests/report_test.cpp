// Tests for the reporting layer (CSV writer, cluster report) and assorted
// small surfaces: identifier packing, payload naming/sizing, Lamport
// envelope propagation, and the logger.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "net/payloads.hpp"
#include "runtime/metrics.hpp"
#include "runtime/report.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "workloads/dht.hpp"
#include "workloads/registry.hpp"

namespace hyflow {
namespace {

// ------------------------------------------------------------------ CSV ----

struct TempFile {
  TempFile() {
    path = std::filesystem::temp_directory_path() /
           ("hyflow_csv_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
  }
  ~TempFile() { std::filesystem::remove(path); }
  std::string read() const {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  std::filesystem::path path;
  static inline int counter = 0;
};

TEST(Csv, WritesHeaderOnceAndAppends) {
  TempFile tmp;
  {
    CsvWriter csv(tmp.path.string(), {"a", "b"});
    ASSERT_TRUE(csv.enabled());
    csv.row().cell(std::string("x")).cell(std::int64_t{1});
  }
  {
    CsvWriter csv(tmp.path.string(), {"a", "b"});  // reopened: no second header
    csv.row().cell(std::string("y")).cell(std::int64_t{2});
  }
  EXPECT_EQ(tmp.read(), "a,b\nx,1\ny,2\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, DisabledWriterIsNoop) {
  CsvWriter csv("", {"a"});
  EXPECT_FALSE(csv.enabled());
  csv.row().cell(std::string("dropped"));  // must not crash
}

TEST(Csv, NumericFormatting) {
  TempFile tmp;
  {
    CsvWriter csv(tmp.path.string(), {"d", "i", "u"});
    csv.row().cell(1.5).cell(std::int64_t{-3}).cell(std::uint64_t{7});
  }
  EXPECT_EQ(tmp.read(), "d,i,u\n1.5,-3,7\n");
}

// Regression: appending rows with a different column set used to silently
// produce a mixed-schema file; the writer must rotate the stale file aside
// and start fresh with the new header.
TEST(Csv, RotatesFileOnHeaderMismatch) {
  TempFile tmp;
  const std::string stale = tmp.path.string() + ".stale";
  {
    CsvWriter csv(tmp.path.string(), {"a", "b"});
    csv.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  }
  {
    CsvWriter csv(tmp.path.string(), {"a", "c"});  // schema changed
    csv.row().cell(std::int64_t{3}).cell(std::int64_t{4});
  }
  EXPECT_EQ(tmp.read(), "a,c\n3,4\n");
  std::ifstream in(stale);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "a,b\n1,2\n");
  std::filesystem::remove(stale);
}

TEST(Csv, MatchingHeaderDoesNotRotate) {
  TempFile tmp;
  {
    CsvWriter csv(tmp.path.string(), {"a", "b"});
    csv.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  }
  {
    CsvWriter csv(tmp.path.string(), {"a", "b"});
    csv.row().cell(std::int64_t{3}).cell(std::int64_t{4});
  }
  EXPECT_EQ(tmp.read(), "a,b\n1,2\n3,4\n");
  EXPECT_FALSE(std::filesystem::exists(tmp.path.string() + ".stale"));
}

// -------------------------------------------------------------- metrics ----

// Snapshot subtraction saturates instead of wrapping when a counter appears
// to run backwards (e.g. a window straddling a crash-reset).
TEST(Metrics, SnapshotDifferenceSaturates) {
  runtime::MetricsSnapshot before, after;
  before.commits_root = 100;
  after.commits_root = 40;  // "ran backwards"
  before.rpc_retries = 7;
  after.rpc_retries = 7;
  before.latency.add(50);
  before.latency.add(60);
  after.latency.add(50);  // one fewer sample than `before`
  const auto diff = after - before;
  EXPECT_EQ(diff.commits_root, 0u);  // not 2^64 - 60
  EXPECT_EQ(diff.rpc_retries, 0u);
  EXPECT_EQ(diff.latency.count(), 0u);
}

TEST(Metrics, SnapshotDifferenceIncludesLatencyWindow) {
  runtime::NodeMetrics metrics;
  metrics.record_latency(1000);
  const auto before = metrics.snapshot();
  metrics.record_latency(500000);
  metrics.record_latency(600000);
  auto after = metrics.snapshot();
  const auto diff = after - before;
  ASSERT_EQ(diff.latency.count(), 2u);
  EXPECT_GT(diff.latency.value_at_percentile(50), 1000u);
}

// --------------------------------------------------------------- report ----

TEST(Report, CollectsPerNodeState) {
  workloads::WorkloadConfig wcfg;
  wcfg.local_work = 0;
  auto wl = workloads::make_workload("dht", wcfg);
  runtime::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 0;
  cfg.topology.min_delay = sim_us(1);
  cfg.topology.max_delay = sim_us(20);
  runtime::Cluster cluster(cfg);
  wl->setup(cluster);
  Xoshiro256 rng(4);
  for (int i = 0; i < 10; ++i) {
    const auto op = wl->next_op(0, rng);
    ASSERT_TRUE(cluster.execute(0, op.profile, op.body).committed);
  }
  const auto report = runtime::collect_report(cluster);
  ASSERT_EQ(report.nodes.size(), 3u);
  EXPECT_EQ(report.totals.commits_root, 10u);
  EXPECT_EQ(report.total_objects, 3u * static_cast<std::size_t>(wcfg.objects_per_node));
  EXPECT_GT(report.messages, 0u);
  const auto text = report.to_string();
  EXPECT_NE(text.find("total commits=10"), std::string::npos);
  EXPECT_NE(text.find("network messages="), std::string::npos);
  cluster.shutdown();
}

// Commit latency recorded by the TFA runtime must surface in the aggregated
// report: non-zero percentiles in `totals` and a latency line in the text.
TEST(Report, LatencyPercentilesPropagate) {
  workloads::WorkloadConfig wcfg;
  wcfg.local_work = 0;
  auto wl = workloads::make_workload("dht", wcfg);
  runtime::ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.workers_per_node = 0;
  cfg.topology.min_delay = sim_us(1);
  cfg.topology.max_delay = sim_us(20);
  runtime::Cluster cluster(cfg);
  wl->setup(cluster);
  Xoshiro256 rng(9);
  for (int i = 0; i < 8; ++i) {
    const auto op = wl->next_op(0, rng);
    ASSERT_TRUE(cluster.execute(0, op.profile, op.body).committed);
  }
  const auto report = runtime::collect_report(cluster);
  EXPECT_EQ(report.totals.latency.count(), 8u);
  EXPECT_GT(report.totals.latency.value_at_percentile(50), 0u);
  EXPECT_GE(report.totals.latency.value_at_percentile(99),
            report.totals.latency.value_at_percentile(50));
  EXPECT_NE(report.to_string().find("latency ms p50="), std::string::npos);
  cluster.shutdown();
}

// Histogram overflow (latencies beyond the histogram range) must be called
// out in the report rather than silently clamping the tail.
TEST(Report, LatencyOverflowSurfaces) {
  runtime::ClusterConfig cfg;
  cfg.nodes = 1;
  cfg.workers_per_node = 0;
  runtime::Cluster cluster(cfg);
  cluster.node(0).metrics().record_latency(1ull << 60);  // beyond 2^40 range
  const auto report = runtime::collect_report(cluster);
  EXPECT_EQ(report.totals.latency.overflow_count(), 1u);
  EXPECT_NE(report.to_string().find("latency histogram overflow"), std::string::npos);
  cluster.shutdown();
}

// ----------------------------------------------------------- misc units ----

TEST(Identifiers, TxnIdPacksNodeAndSequence) {
  const TxnId id = TxnId::make(513, 0x123456789ull);
  EXPECT_EQ(id.node(), 513u);
  EXPECT_EQ(id.seq(), 0x123456789ull);
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(kInvalidTxn.valid());
  EXPECT_FALSE(kInvalidObject.valid());
}

TEST(Payloads, NamesAndSizes) {
  net::Payload p = net::ObjectRequest{};
  EXPECT_STREQ(net::payload_name(p), "ObjectRequest");
  p = net::CommitResponse{};
  EXPECT_STREQ(net::payload_name(p), "CommitResponse");

  net::ObjectResponse with_object;
  with_object.object = std::make_shared<workloads::Bucket>(ObjectId{1}, 0);
  net::ObjectResponse without_object;
  EXPECT_GT(net::payload_wire_size(net::Payload{with_object}),
            net::payload_wire_size(net::Payload{without_object}));
}

TEST(Log, LevelGating) {
  const auto old = Log::level();
  Log::set_level(LogLevel::kError);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kTrace);
  EXPECT_TRUE(Log::enabled(LogLevel::kDebug));
  Log::set_level(old);
}

TEST(Log, FormatParts) {
  EXPECT_EQ(log_detail::format_parts("x=", 42, " y=", 1.5), "x=42 y=1.5");
}

}  // namespace
}  // namespace hyflow
