// Tests for the reporting layer (CSV writer, cluster report) and assorted
// small surfaces: identifier packing, payload naming/sizing, Lamport
// envelope propagation, and the logger.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "net/payloads.hpp"
#include "runtime/report.hpp"
#include "util/csv.hpp"
#include "util/log.hpp"
#include "workloads/dht.hpp"
#include "workloads/registry.hpp"

namespace hyflow {
namespace {

// ------------------------------------------------------------------ CSV ----

struct TempFile {
  TempFile() {
    path = std::filesystem::temp_directory_path() /
           ("hyflow_csv_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
  }
  ~TempFile() { std::filesystem::remove(path); }
  std::string read() const {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
  std::filesystem::path path;
  static inline int counter = 0;
};

TEST(Csv, WritesHeaderOnceAndAppends) {
  TempFile tmp;
  {
    CsvWriter csv(tmp.path.string(), {"a", "b"});
    ASSERT_TRUE(csv.enabled());
    csv.row().cell(std::string("x")).cell(std::int64_t{1});
  }
  {
    CsvWriter csv(tmp.path.string(), {"a", "b"});  // reopened: no second header
    csv.row().cell(std::string("y")).cell(std::int64_t{2});
  }
  EXPECT_EQ(tmp.read(), "a,b\nx,1\ny,2\n");
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, DisabledWriterIsNoop) {
  CsvWriter csv("", {"a"});
  EXPECT_FALSE(csv.enabled());
  csv.row().cell(std::string("dropped"));  // must not crash
}

TEST(Csv, NumericFormatting) {
  TempFile tmp;
  {
    CsvWriter csv(tmp.path.string(), {"d", "i", "u"});
    csv.row().cell(1.5).cell(std::int64_t{-3}).cell(std::uint64_t{7});
  }
  EXPECT_EQ(tmp.read(), "d,i,u\n1.5,-3,7\n");
}

// --------------------------------------------------------------- report ----

TEST(Report, CollectsPerNodeState) {
  workloads::WorkloadConfig wcfg;
  wcfg.local_work = 0;
  auto wl = workloads::make_workload("dht", wcfg);
  runtime::ClusterConfig cfg;
  cfg.nodes = 3;
  cfg.workers_per_node = 0;
  cfg.topology.min_delay = sim_us(1);
  cfg.topology.max_delay = sim_us(20);
  runtime::Cluster cluster(cfg);
  wl->setup(cluster);
  Xoshiro256 rng(4);
  for (int i = 0; i < 10; ++i) {
    const auto op = wl->next_op(0, rng);
    ASSERT_TRUE(cluster.execute(0, op.profile, op.body).committed);
  }
  const auto report = runtime::collect_report(cluster);
  ASSERT_EQ(report.nodes.size(), 3u);
  EXPECT_EQ(report.totals.commits_root, 10u);
  EXPECT_EQ(report.total_objects, 3u * static_cast<std::size_t>(wcfg.objects_per_node));
  EXPECT_GT(report.messages, 0u);
  const auto text = report.to_string();
  EXPECT_NE(text.find("total commits=10"), std::string::npos);
  EXPECT_NE(text.find("network messages="), std::string::npos);
  cluster.shutdown();
}

// ----------------------------------------------------------- misc units ----

TEST(Identifiers, TxnIdPacksNodeAndSequence) {
  const TxnId id = TxnId::make(513, 0x123456789ull);
  EXPECT_EQ(id.node(), 513u);
  EXPECT_EQ(id.seq(), 0x123456789ull);
  EXPECT_TRUE(id.valid());
  EXPECT_FALSE(kInvalidTxn.valid());
  EXPECT_FALSE(kInvalidObject.valid());
}

TEST(Payloads, NamesAndSizes) {
  net::Payload p = net::ObjectRequest{};
  EXPECT_STREQ(net::payload_name(p), "ObjectRequest");
  p = net::CommitResponse{};
  EXPECT_STREQ(net::payload_name(p), "CommitResponse");

  net::ObjectResponse with_object;
  with_object.object = std::make_shared<workloads::Bucket>(ObjectId{1}, 0);
  net::ObjectResponse without_object;
  EXPECT_GT(net::payload_wire_size(net::Payload{with_object}),
            net::payload_wire_size(net::Payload{without_object}));
}

TEST(Log, LevelGating) {
  const auto old = Log::level();
  Log::set_level(LogLevel::kError);
  EXPECT_FALSE(Log::enabled(LogLevel::kDebug));
  EXPECT_FALSE(Log::enabled(LogLevel::kWarn));
  EXPECT_TRUE(Log::enabled(LogLevel::kError));
  Log::set_level(LogLevel::kTrace);
  EXPECT_TRUE(Log::enabled(LogLevel::kDebug));
  Log::set_level(old);
}

TEST(Log, FormatParts) {
  EXPECT_EQ(log_detail::format_parts("x=", 42, " y=", 1.5), "x=42 y=1.5");
}

}  // namespace
}  // namespace hyflow
