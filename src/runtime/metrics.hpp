// Per-node metrics: commit/abort counters broken down the way the paper's
// evaluation needs them.
//
//   * Throughput (Figs. 4/5/6) = root commits / wall time.
//   * Table I's "abort rate of nested transactions" = nested aborts caused
//     by a parent abort / total nested aborts.
//
// Counters are relaxed atomics (hot path); the commit-latency histogram is
// recorded by the TFA runtime under a per-node leaf spinlock (one brief
// acquisition per root commit — negligible next to the commit round-trips)
// so live snapshots and measurement-window deltas include percentiles.
// Snapshots are plain structs so benches can diff two snapshots for a
// measurement window; the diff is saturating (a counter that appears to run
// backwards — e.g. around a crash window reset — clamps to 0 instead of
// wrapping to 2^64).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "tfa/abort.hpp"
#include "util/histogram.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace hyflow::runtime {

struct MetricsSnapshot {
  std::uint64_t commits_root = 0;
  std::uint64_t commits_read_only = 0;
  std::uint64_t commits_write = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(tfa::AbortCause::kCauseCount)>
      aborts_root{};
  std::uint64_t nested_commits = 0;
  std::uint64_t nested_aborts_total = 0;
  std::uint64_t nested_aborts_parent_cause = 0;
  std::uint64_t nested_aborts_own_cause = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t handoffs_received = 0;
  std::uint64_t handoffs_sent = 0;
  std::uint64_t backoff_expired = 0;
  std::uint64_t not_interested = 0;
  std::uint64_t conflicts_seen = 0;
  std::uint64_t wrong_owner_retries = 0;
  std::uint64_t forwardings = 0;
  std::uint64_t open_nested_commits = 0;
  std::uint64_t compensations_run = 0;
  // Degradation counters (fault tolerance layer).
  std::uint64_t rpc_retries = 0;        // requests re-sent after a timeout
  std::uint64_t dedup_hits = 0;         // duplicate requests answered from cache
  std::uint64_t watchdog_aborts = 0;    // transactions aborted on retry exhaustion
  std::uint64_t grant_reforwards = 0;   // Alg. 4 grants re-forwarded after ack loss
  // Root-commit latency (ns), recorded at commit time. Bucket counts are
  // monotonic, so `after - before` yields the window's histogram.
  Histogram latency;

  std::uint64_t aborts_total() const {
    std::uint64_t sum = 0;
    for (auto v : aborts_root) sum += v;
    return sum;
  }

  MetricsSnapshot& operator+=(const MetricsSnapshot& other);
  MetricsSnapshot operator-(const MetricsSnapshot& other) const;

  // Table I: fraction of nested aborts caused by a parent abort.
  double nested_abort_rate() const {
    return nested_aborts_total == 0
               ? 0.0
               : static_cast<double>(nested_aborts_parent_cause) /
                     static_cast<double>(nested_aborts_total);
  }
};

class NodeMetrics {
 public:
  void add_commit(bool read_only) {
    commits_root_.fetch_add(1, std::memory_order_relaxed);
    (read_only ? commits_read_only_ : commits_write_).fetch_add(1, std::memory_order_relaxed);
  }
  void add_root_abort(tfa::AbortCause cause) {
    aborts_root_[static_cast<std::size_t>(cause)].fetch_add(1, std::memory_order_relaxed);
  }
  void add_nested_commit() { nested_commits_.fetch_add(1, std::memory_order_relaxed); }
  void add_nested_abort(bool parent_cause, std::uint64_t n = 1) {
    nested_aborts_total_.fetch_add(n, std::memory_order_relaxed);
    (parent_cause ? nested_aborts_parent_cause_ : nested_aborts_own_cause_)
        .fetch_add(n, std::memory_order_relaxed);
  }
  void add_enqueued() { enqueued_.fetch_add(1, std::memory_order_relaxed); }
  void add_handoff_received() { handoffs_received_.fetch_add(1, std::memory_order_relaxed); }
  void add_handoff_sent(std::uint64_t n = 1) {
    handoffs_sent_.fetch_add(n, std::memory_order_relaxed);
  }
  void add_backoff_expired() { backoff_expired_.fetch_add(1, std::memory_order_relaxed); }
  void add_not_interested() { not_interested_.fetch_add(1, std::memory_order_relaxed); }
  void add_conflict_seen() { conflicts_seen_.fetch_add(1, std::memory_order_relaxed); }
  void add_wrong_owner_retry() { wrong_owner_retries_.fetch_add(1, std::memory_order_relaxed); }
  void add_forwarding() { forwardings_.fetch_add(1, std::memory_order_relaxed); }
  void add_open_nested_commit() {
    open_nested_commits_.fetch_add(1, std::memory_order_relaxed);
  }
  void add_compensation_run() { compensations_run_.fetch_add(1, std::memory_order_relaxed); }
  void add_rpc_retry() { rpc_retries_.fetch_add(1, std::memory_order_relaxed); }
  void add_dedup_hit() { dedup_hits_.fetch_add(1, std::memory_order_relaxed); }
  void add_watchdog_abort() { watchdog_aborts_.fetch_add(1, std::memory_order_relaxed); }
  void add_grant_reforward() { grant_reforwards_.fetch_add(1, std::memory_order_relaxed); }

  // Records one root-commit latency (ns) into the per-node histogram.
  void record_latency(std::uint64_t ns);

  MetricsSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> commits_root_{0};
  std::atomic<std::uint64_t> commits_read_only_{0};
  std::atomic<std::uint64_t> commits_write_{0};
  std::array<std::atomic<std::uint64_t>, static_cast<std::size_t>(tfa::AbortCause::kCauseCount)>
      aborts_root_{};
  std::atomic<std::uint64_t> nested_commits_{0};
  std::atomic<std::uint64_t> nested_aborts_total_{0};
  std::atomic<std::uint64_t> nested_aborts_parent_cause_{0};
  std::atomic<std::uint64_t> nested_aborts_own_cause_{0};
  std::atomic<std::uint64_t> enqueued_{0};
  std::atomic<std::uint64_t> handoffs_received_{0};
  std::atomic<std::uint64_t> handoffs_sent_{0};
  std::atomic<std::uint64_t> backoff_expired_{0};
  std::atomic<std::uint64_t> not_interested_{0};
  std::atomic<std::uint64_t> conflicts_seen_{0};
  std::atomic<std::uint64_t> wrong_owner_retries_{0};
  std::atomic<std::uint64_t> forwardings_{0};
  std::atomic<std::uint64_t> open_nested_commits_{0};
  std::atomic<std::uint64_t> compensations_run_{0};
  std::atomic<std::uint64_t> rpc_retries_{0};
  std::atomic<std::uint64_t> dedup_hits_{0};
  std::atomic<std::uint64_t> watchdog_aborts_{0};
  std::atomic<std::uint64_t> grant_reforwards_{0};
  mutable Mutex latency_mu_{LockRank::kMetrics, "metrics-latency"};
  Histogram latency_ GUARDED_BY(latency_mu_);
};

}  // namespace hyflow::runtime
