// A logical cluster node: TM proxy, object store, directory shard,
// scheduler, stats table, logical clock and the TFA protocol engine, glued
// to the network through the Comm facade.
//
// Message flow: Network delivery threads call handle_message(); replies are
// routed to the node's pending calls (orphans trigger the NotInterested
// protocol), requests go to the TFA runtime's owner-side handlers. Worker
// threads run transactions through `runtime().run(...)`.
#pragma once

#include <memory>

#include "core/contention.hpp"
#include "core/scheduler.hpp"
#include "dsm/coherence.hpp"
#include "dsm/directory.hpp"
#include "dsm/object_store.hpp"
#include "net/comm.hpp"
#include "net/network.hpp"
#include "net/reply_cache.hpp"
#include "net/rpc.hpp"
#include "runtime/metrics.hpp"
#include "tfa/node_clock.hpp"
#include "tfa/stats_table.hpp"
#include "tfa/tfa_runtime.hpp"

namespace hyflow::runtime {

struct NodeConfig {
  core::SchedulerConfig scheduler;
  tfa::TfaConfig tfa;
  net::RetryPolicy rpc;  // retry schedule for reliable requests
};

class Node final : public net::Comm {
 public:
  Node(NodeId id, net::Network& network, const NodeConfig& cfg);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ---- net::Comm ----
  NodeId self() const override { return id_; }
  std::uint32_t cluster_size() const override { return network_.topology().node_count(); }
  net::RequestCall request(NodeId to, net::Payload payload) override;
  void post(NodeId to, net::Payload payload) override;
  void reply(const net::Message& request, net::Payload payload) override;
  void reply_routed(NodeId to, std::uint64_t reply_to, net::Payload payload) override;
  void resend(NodeId to, std::uint64_t msg_id, std::uint32_t attempt,
              net::Payload payload) override;
  const net::RetryPolicy& retry_policy() const override { return rpc_policy_; }
  bool closing() const override { return pending_.closed(); }

  // Entry point registered with the network.
  void handle_message(net::Message msg);

  // Unblocks every worker waiting on an RPC; call before joining workers.
  void close_pending();

  // Re-arms RPCs after close_pending() once the blocked workers are joined.
  void reopen_pending();

  tfa::TfaRuntime& runtime() { return *runtime_; }
  dsm::ObjectStore& store() { return store_; }
  dsm::DirectoryShard& directory() { return directory_; }
  core::Scheduler& scheduler() { return *scheduler_; }
  NodeMetrics& metrics() { return metrics_; }
  const NodeMetrics& metrics() const { return metrics_; }
  tfa::NodeClock& clock() { return clock_; }
  tfa::StatsTable& stats() { return stats_; }

 private:
  net::Message envelope(NodeId to, net::Payload payload) const;

  NodeId id_;
  net::Network& network_;
  net::PendingCalls pending_;
  net::RetryPolicy rpc_policy_;
  net::ReplyCache reply_cache_;  // request dedup for at-least-once delivery
  dsm::ObjectStore store_;
  dsm::DirectoryShard directory_;
  tfa::NodeClock clock_;
  tfa::StatsTable stats_;
  core::ContentionTracker contention_;
  std::unique_ptr<core::Scheduler> scheduler_;
  dsm::OwnerResolver resolver_;
  NodeMetrics metrics_;
  std::unique_ptr<tfa::TfaRuntime> runtime_;
};

}  // namespace hyflow::runtime
