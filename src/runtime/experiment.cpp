#include "runtime/experiment.hpp"

#include <sstream>
#include <thread>

#include "util/log.hpp"
#include "workloads/workload.hpp"

namespace hyflow::runtime {

ExperimentResult run_experiment(workloads::Workload& workload, const ExperimentConfig& cfg) {
  Cluster cluster(cfg.cluster);
  workload.setup(cluster);

  cluster.start_workers(workload);
  std::this_thread::sleep_for(to_chrono(cfg.warmup));

  const MetricsSnapshot before = cluster.total_metrics();
  const std::uint64_t messages_before = cluster.network().stats().messages.load();
  const std::uint64_t bytes_before = cluster.network().stats().bytes.load();
  const SimTime t0 = sim_now();
  std::this_thread::sleep_for(to_chrono(cfg.measure));
  const MetricsSnapshot after = cluster.total_metrics();
  const std::uint64_t messages_after = cluster.network().stats().messages.load();
  const std::uint64_t bytes_after = cluster.network().stats().bytes.load();
  const SimTime t1 = sim_now();

  cluster.stop_workers();

  ExperimentResult result;
  result.delta = after - before;
  const double secs = static_cast<double>(t1 - t0) * 1e-9;
  result.seconds = secs;
  result.throughput = static_cast<double>(result.delta.commits_root) / secs;
  result.nested_abort_rate = result.delta.nested_abort_rate();
  const std::uint64_t attempts = result.delta.commits_root + result.delta.aborts_total();
  result.abort_ratio = attempts == 0 ? 0.0
                                     : static_cast<double>(result.delta.aborts_total()) /
                                           static_cast<double>(attempts);
  result.messages = messages_after - messages_before;
  result.bytes = bytes_after - bytes_before;
  for (NodeId id = 0; id < cluster.size(); ++id)
    result.queue_residue += cluster.node(id).scheduler().total_queued();

  if (cfg.verify) {
    result.verified = workload.verify(cluster);
    if (!result.verified)
      HYFLOW_ERROR("workload '", workload.name(), "' failed its invariant audit");
  }
  cluster.shutdown();
  return result;
}

std::string ExperimentResult::summary() const {
  std::ostringstream os;
  os << "throughput=" << throughput << " txn/s"
     << " nested_abort_rate=" << nested_abort_rate << " abort_ratio=" << abort_ratio
     << " commits=" << delta.commits_root << " aborts=" << delta.aborts_total()
     << " enqueued=" << delta.enqueued << " handoffs=" << delta.handoffs_received
     << " messages=" << messages;
  if (delta.latency.count() > 0) {
    os << " p50_ms=" << static_cast<double>(delta.latency.value_at_percentile(50)) / 1e6
       << " p99_ms=" << static_cast<double>(delta.latency.value_at_percentile(99)) / 1e6;
  }
  os << (verified ? "" : " VERIFY-FAILED");
  return os.str();
}

}  // namespace hyflow::runtime
