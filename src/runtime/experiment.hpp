// Experiment harness: builds a cluster, runs a workload for a warmup +
// measurement window, and reduces the metrics into the quantities the
// paper reports — throughput (committed root transactions per second,
// Figs. 4/5), the nested-transaction abort rate (Table I), and the
// supporting abort/enqueue/hand-off counters.
#pragma once

#include <string>

#include "runtime/cluster.hpp"
#include "util/time.hpp"

namespace hyflow::workloads {
class Workload;
}

namespace hyflow::runtime {

struct ExperimentConfig {
  ClusterConfig cluster;
  SimDuration warmup = sim_ms(150);
  SimDuration measure = sim_ms(600);
  bool verify = true;  // run the workload's invariant audit afterwards
};

struct ExperimentResult {
  double throughput = 0.0;           // root commits / second (measurement window)
  double nested_abort_rate = 0.0;    // Table I metric
  double abort_ratio = 0.0;          // root aborts / (commits + aborts)
  MetricsSnapshot delta;             // window counters (incl. latency histogram)
  double seconds = 0.0;              // measured wall time of the window
  std::uint64_t messages = 0;        // transport messages in the window
  std::uint64_t bytes = 0;           // transport bytes in the window
  std::uint64_t queue_residue = 0;   // requesters still parked at the end
  bool verified = true;

  std::string summary() const;
};

// Runs `workload` on a fresh cluster built from `cfg`.
ExperimentResult run_experiment(workloads::Workload& workload, const ExperimentConfig& cfg);

}  // namespace hyflow::runtime
