// Cluster inspection report: a structured, printable snapshot of a live or
// quiesced cluster — per-node commit/abort/enqueue counters, store sizes,
// scheduler queue depths, logical clocks, and transport totals. Used by the
// CLI driver and handy when debugging protocol behaviour.
#pragma once

#include <string>
#include <vector>

#include "runtime/cluster.hpp"

namespace hyflow::runtime {

struct NodeReport {
  NodeId node = kInvalidNode;
  MetricsSnapshot metrics;
  std::size_t owned_objects = 0;
  std::size_t queued_requesters = 0;
  std::uint64_t clock = 0;
};

struct ClusterReport {
  std::vector<NodeReport> nodes;
  MetricsSnapshot totals;
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  std::uint64_t object_payloads = 0;
  std::uint64_t dropped_on_stop = 0;
  std::size_t total_objects = 0;
  // Injected-fault totals (all zero when fault injection is off).
  std::uint64_t faults_dropped = 0;
  std::uint64_t faults_duplicated = 0;
  std::uint64_t faults_delayed = 0;
  std::uint64_t faults_partition_dropped = 0;
  std::uint64_t faults_crash_dropped = 0;

  // Multi-line human-readable table.
  std::string to_string() const;
};

ClusterReport collect_report(Cluster& cluster);

}  // namespace hyflow::runtime
