#include "runtime/cluster.hpp"

#include "dsm/directory.hpp"
#include "util/assert.hpp"
#include "workloads/workload.hpp"

namespace hyflow::runtime {

Cluster::Cluster(const ClusterConfig& cfg) : cfg_(cfg) {
  HYFLOW_ASSERT(cfg.nodes >= 1);
  net::TopologyConfig topo = cfg.topology;
  topo.nodes = cfg.nodes;
  network_ = std::make_unique<net::Network>(net::Topology(topo), cfg.delivery_threads,
                                            cfg.fault);

  NodeConfig node_cfg;
  node_cfg.scheduler = cfg.scheduler;
  node_cfg.tfa = cfg.tfa;
  node_cfg.rpc = cfg.rpc;
  nodes_.reserve(cfg.nodes);
  for (NodeId id = 0; id < cfg.nodes; ++id) {
    nodes_.push_back(std::make_unique<Node>(id, *network_, node_cfg));
    network_->register_handler(id, [node = nodes_.back().get()](net::Message msg) {
      node->handle_message(std::move(msg));
    });
  }
  network_->start();
  maintenance_ = std::jthread([this](std::stop_token st) {
    while (!st.stop_requested()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const SimTime now = sim_now();
      for (auto& n : nodes_) n->runtime().sweep_grants(now);
    }
  });
}

Cluster::~Cluster() { shutdown(); }

void Cluster::create_object(std::unique_ptr<AbstractObject> obj, NodeId owner) {
  HYFLOW_ASSERT(owner < size());
  const ObjectId oid = obj->id();
  HYFLOW_ASSERT_MSG(oid.valid(), "objects need a non-zero id");
  ObjectSnapshot snapshot{std::move(obj)};
  node(owner).store().install(snapshot, kInitialVersion);
  node(dsm::home_node(oid, size())).directory().publish(oid, owner);
}

ObjectSnapshot Cluster::committed_copy(ObjectId oid) {
  const NodeId home = dsm::home_node(oid, size());
  const auto owner = node(home).directory().lookup(oid);
  if (owner) {
    if (auto slot = node(*owner).store().get(oid)) return slot->object;
  }
  // Directory and store can disagree transiently around shutdown; fall back
  // to a scan.
  for (auto& n : nodes_) {
    if (auto slot = n->store().get(oid)) return slot->object;
  }
  return nullptr;
}

void Cluster::start_workers(workloads::Workload& workload) {
  HYFLOW_ASSERT_MSG(workers_.empty(), "workers already running");
  std::uint64_t seed = cfg_.seed * 0x9e3779b97f4a7c15ull + 1;
  for (NodeId id = 0; id < size(); ++id) {
    for (int w = 0; w < cfg_.workers_per_node; ++w) {
      workers_.push_back(std::make_unique<Worker>(node(id), workload, seed++));
    }
  }
  for (auto& w : workers_) w->start();
}

void Cluster::stop_workers() {
  if (workers_.empty()) return;
  // Graceful stop: workers finish their current transaction. Every RPC wait
  // is reply-bounded while the network runs, and a parked transaction's
  // backoff is capped, so joins converge without cutting pending calls —
  // cutting them would eat lock-grant replies mid-commit and leak locks.
  for (auto& w : workers_) w->request_stop();
  for (auto& w : workers_) w->join();
  workers_.clear();
  // Drain in-flight messages (ownership transfers, unlock notifications) so
  // post-run audits see a quiescent, consistent cluster.
  network_->wait_idle();
}

tfa::RunResult Cluster::execute(NodeId node_id, std::uint32_t profile,
                                const std::function<void(tfa::Txn&)>& body) {
  return node(node_id).runtime().run(profile, body);
}

MetricsSnapshot Cluster::total_metrics() const {
  MetricsSnapshot total;
  for (const auto& n : nodes_) total += n->metrics().snapshot();
  return total;
}

Histogram Cluster::merged_latency() const { return total_metrics().latency; }

std::uint64_t Cluster::total_completed() const {
  std::uint64_t total = 0;
  for (const auto& w : workers_) total += w->completed();
  return total;
}

void Cluster::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  stop_workers();
  if (maintenance_.joinable()) {
    maintenance_.request_stop();
    maintenance_.join();
  }
  for (auto& n : nodes_) n->close_pending();
  network_->stop();
}

}  // namespace hyflow::runtime
