#include "runtime/worker.hpp"

#include "runtime/node.hpp"
#include "workloads/workload.hpp"

namespace hyflow::runtime {

Worker::Worker(Node& node, workloads::Workload& workload, std::uint64_t seed)
    : node_(node), workload_(workload), rng_(seed) {}

Worker::~Worker() {
  request_stop();
  join();
}

void Worker::start() {
  thread_ = std::jthread([this](std::stop_token st) { loop(st); });
}

void Worker::request_stop() {
  if (thread_.joinable()) thread_.request_stop();
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

void Worker::loop(std::stop_token st) {
  while (!st.stop_requested()) {
    auto op = workload_.next_op(node_.self(), rng_);
    const auto result = node_.runtime().run(op.profile, op.body,
                                            [&st] { return !st.stop_requested(); });
    // Commit latency lands in NodeMetrics (recorded by the TFA runtime).
    if (result.committed) completed_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace hyflow::runtime
