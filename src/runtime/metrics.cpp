#include "runtime/metrics.hpp"

namespace hyflow::runtime {

namespace {
// Counters are monotonic, so `after - before` should never go negative; if
// it does (a node reset inside the window), clamp to 0 rather than wrapping.
inline std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : 0;
}
}  // namespace

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& other) {
  commits_root += other.commits_root;
  commits_read_only += other.commits_read_only;
  commits_write += other.commits_write;
  for (std::size_t i = 0; i < aborts_root.size(); ++i) aborts_root[i] += other.aborts_root[i];
  nested_commits += other.nested_commits;
  nested_aborts_total += other.nested_aborts_total;
  nested_aborts_parent_cause += other.nested_aborts_parent_cause;
  nested_aborts_own_cause += other.nested_aborts_own_cause;
  enqueued += other.enqueued;
  handoffs_received += other.handoffs_received;
  handoffs_sent += other.handoffs_sent;
  backoff_expired += other.backoff_expired;
  not_interested += other.not_interested;
  conflicts_seen += other.conflicts_seen;
  wrong_owner_retries += other.wrong_owner_retries;
  forwardings += other.forwardings;
  open_nested_commits += other.open_nested_commits;
  compensations_run += other.compensations_run;
  rpc_retries += other.rpc_retries;
  dedup_hits += other.dedup_hits;
  watchdog_aborts += other.watchdog_aborts;
  grant_reforwards += other.grant_reforwards;
  latency.merge(other.latency);
  return *this;
}

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& other) const {
  MetricsSnapshot d = *this;
  d.commits_root = sat_sub(d.commits_root, other.commits_root);
  d.commits_read_only = sat_sub(d.commits_read_only, other.commits_read_only);
  d.commits_write = sat_sub(d.commits_write, other.commits_write);
  for (std::size_t i = 0; i < aborts_root.size(); ++i)
    d.aborts_root[i] = sat_sub(d.aborts_root[i], other.aborts_root[i]);
  d.nested_commits = sat_sub(d.nested_commits, other.nested_commits);
  d.nested_aborts_total = sat_sub(d.nested_aborts_total, other.nested_aborts_total);
  d.nested_aborts_parent_cause =
      sat_sub(d.nested_aborts_parent_cause, other.nested_aborts_parent_cause);
  d.nested_aborts_own_cause =
      sat_sub(d.nested_aborts_own_cause, other.nested_aborts_own_cause);
  d.enqueued = sat_sub(d.enqueued, other.enqueued);
  d.handoffs_received = sat_sub(d.handoffs_received, other.handoffs_received);
  d.handoffs_sent = sat_sub(d.handoffs_sent, other.handoffs_sent);
  d.backoff_expired = sat_sub(d.backoff_expired, other.backoff_expired);
  d.not_interested = sat_sub(d.not_interested, other.not_interested);
  d.conflicts_seen = sat_sub(d.conflicts_seen, other.conflicts_seen);
  d.wrong_owner_retries = sat_sub(d.wrong_owner_retries, other.wrong_owner_retries);
  d.forwardings = sat_sub(d.forwardings, other.forwardings);
  d.open_nested_commits = sat_sub(d.open_nested_commits, other.open_nested_commits);
  d.compensations_run = sat_sub(d.compensations_run, other.compensations_run);
  d.rpc_retries = sat_sub(d.rpc_retries, other.rpc_retries);
  d.dedup_hits = sat_sub(d.dedup_hits, other.dedup_hits);
  d.watchdog_aborts = sat_sub(d.watchdog_aborts, other.watchdog_aborts);
  d.grant_reforwards = sat_sub(d.grant_reforwards, other.grant_reforwards);
  d.latency.subtract(other.latency);
  return d;
}

void NodeMetrics::record_latency(std::uint64_t ns) {
  MutexLock lock(latency_mu_);
  latency_.add(ns);
}

MetricsSnapshot NodeMetrics::snapshot() const {
  MetricsSnapshot s;
  s.commits_root = commits_root_.load(std::memory_order_relaxed);
  s.commits_read_only = commits_read_only_.load(std::memory_order_relaxed);
  s.commits_write = commits_write_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.aborts_root.size(); ++i)
    s.aborts_root[i] = aborts_root_[i].load(std::memory_order_relaxed);
  s.nested_commits = nested_commits_.load(std::memory_order_relaxed);
  s.nested_aborts_total = nested_aborts_total_.load(std::memory_order_relaxed);
  s.nested_aborts_parent_cause = nested_aborts_parent_cause_.load(std::memory_order_relaxed);
  s.nested_aborts_own_cause = nested_aborts_own_cause_.load(std::memory_order_relaxed);
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.handoffs_received = handoffs_received_.load(std::memory_order_relaxed);
  s.handoffs_sent = handoffs_sent_.load(std::memory_order_relaxed);
  s.backoff_expired = backoff_expired_.load(std::memory_order_relaxed);
  s.not_interested = not_interested_.load(std::memory_order_relaxed);
  s.conflicts_seen = conflicts_seen_.load(std::memory_order_relaxed);
  s.wrong_owner_retries = wrong_owner_retries_.load(std::memory_order_relaxed);
  s.forwardings = forwardings_.load(std::memory_order_relaxed);
  s.open_nested_commits = open_nested_commits_.load(std::memory_order_relaxed);
  s.compensations_run = compensations_run_.load(std::memory_order_relaxed);
  s.rpc_retries = rpc_retries_.load(std::memory_order_relaxed);
  s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.watchdog_aborts = watchdog_aborts_.load(std::memory_order_relaxed);
  s.grant_reforwards = grant_reforwards_.load(std::memory_order_relaxed);
  {
    MutexLock lock(latency_mu_);
    s.latency = latency_;
  }
  return s;
}

}  // namespace hyflow::runtime
