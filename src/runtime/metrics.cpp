#include "runtime/metrics.hpp"

namespace hyflow::runtime {

MetricsSnapshot& MetricsSnapshot::operator+=(const MetricsSnapshot& other) {
  commits_root += other.commits_root;
  commits_read_only += other.commits_read_only;
  commits_write += other.commits_write;
  for (std::size_t i = 0; i < aborts_root.size(); ++i) aborts_root[i] += other.aborts_root[i];
  nested_commits += other.nested_commits;
  nested_aborts_total += other.nested_aborts_total;
  nested_aborts_parent_cause += other.nested_aborts_parent_cause;
  nested_aborts_own_cause += other.nested_aborts_own_cause;
  enqueued += other.enqueued;
  handoffs_received += other.handoffs_received;
  handoffs_sent += other.handoffs_sent;
  backoff_expired += other.backoff_expired;
  not_interested += other.not_interested;
  conflicts_seen += other.conflicts_seen;
  wrong_owner_retries += other.wrong_owner_retries;
  forwardings += other.forwardings;
  open_nested_commits += other.open_nested_commits;
  compensations_run += other.compensations_run;
  rpc_retries += other.rpc_retries;
  dedup_hits += other.dedup_hits;
  watchdog_aborts += other.watchdog_aborts;
  grant_reforwards += other.grant_reforwards;
  return *this;
}

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot& other) const {
  MetricsSnapshot d = *this;
  d.commits_root -= other.commits_root;
  d.commits_read_only -= other.commits_read_only;
  d.commits_write -= other.commits_write;
  for (std::size_t i = 0; i < aborts_root.size(); ++i) d.aborts_root[i] -= other.aborts_root[i];
  d.nested_commits -= other.nested_commits;
  d.nested_aborts_total -= other.nested_aborts_total;
  d.nested_aborts_parent_cause -= other.nested_aborts_parent_cause;
  d.nested_aborts_own_cause -= other.nested_aborts_own_cause;
  d.enqueued -= other.enqueued;
  d.handoffs_received -= other.handoffs_received;
  d.handoffs_sent -= other.handoffs_sent;
  d.backoff_expired -= other.backoff_expired;
  d.not_interested -= other.not_interested;
  d.conflicts_seen -= other.conflicts_seen;
  d.wrong_owner_retries -= other.wrong_owner_retries;
  d.forwardings -= other.forwardings;
  d.open_nested_commits -= other.open_nested_commits;
  d.compensations_run -= other.compensations_run;
  d.rpc_retries -= other.rpc_retries;
  d.dedup_hits -= other.dedup_hits;
  d.watchdog_aborts -= other.watchdog_aborts;
  d.grant_reforwards -= other.grant_reforwards;
  return d;
}

MetricsSnapshot NodeMetrics::snapshot() const {
  MetricsSnapshot s;
  s.commits_root = commits_root_.load(std::memory_order_relaxed);
  s.commits_read_only = commits_read_only_.load(std::memory_order_relaxed);
  s.commits_write = commits_write_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.aborts_root.size(); ++i)
    s.aborts_root[i] = aborts_root_[i].load(std::memory_order_relaxed);
  s.nested_commits = nested_commits_.load(std::memory_order_relaxed);
  s.nested_aborts_total = nested_aborts_total_.load(std::memory_order_relaxed);
  s.nested_aborts_parent_cause = nested_aborts_parent_cause_.load(std::memory_order_relaxed);
  s.nested_aborts_own_cause = nested_aborts_own_cause_.load(std::memory_order_relaxed);
  s.enqueued = enqueued_.load(std::memory_order_relaxed);
  s.handoffs_received = handoffs_received_.load(std::memory_order_relaxed);
  s.handoffs_sent = handoffs_sent_.load(std::memory_order_relaxed);
  s.backoff_expired = backoff_expired_.load(std::memory_order_relaxed);
  s.not_interested = not_interested_.load(std::memory_order_relaxed);
  s.conflicts_seen = conflicts_seen_.load(std::memory_order_relaxed);
  s.wrong_owner_retries = wrong_owner_retries_.load(std::memory_order_relaxed);
  s.forwardings = forwardings_.load(std::memory_order_relaxed);
  s.open_nested_commits = open_nested_commits_.load(std::memory_order_relaxed);
  s.compensations_run = compensations_run_.load(std::memory_order_relaxed);
  s.rpc_retries = rpc_retries_.load(std::memory_order_relaxed);
  s.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  s.watchdog_aborts = watchdog_aborts_.load(std::memory_order_relaxed);
  s.grant_reforwards = grant_reforwards_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace hyflow::runtime
