#include "runtime/report.hpp"

#include <cstdio>
#include <sstream>

namespace hyflow::runtime {

ClusterReport collect_report(Cluster& cluster) {
  ClusterReport report;
  for (NodeId id = 0; id < cluster.size(); ++id) {
    Node& node = cluster.node(id);
    NodeReport nr;
    nr.node = id;
    nr.metrics = node.metrics().snapshot();
    nr.owned_objects = node.store().size();
    nr.queued_requesters = node.scheduler().total_queued();
    nr.clock = node.clock().read();
    report.totals += nr.metrics;
    report.total_objects += nr.owned_objects;
    report.nodes.push_back(std::move(nr));
  }
  const auto& stats = cluster.network().stats();
  report.messages = stats.messages.load();
  report.bytes = stats.bytes.load();
  report.object_payloads = stats.object_payloads.load();
  report.dropped_on_stop = stats.dropped_on_stop.load();
  const auto& faults = cluster.network().faults().stats();
  report.faults_dropped = faults.dropped.load();
  report.faults_duplicated = faults.duplicated.load();
  report.faults_delayed = faults.delayed.load();
  report.faults_partition_dropped = faults.partition_dropped.load();
  report.faults_crash_dropped = faults.crash_dropped.load();
  return report;
}

std::string ClusterReport::to_string() const {
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-5s %9s %9s %8s %8s %8s %8s %10s\n", "node",
                "commits", "aborts", "nested", "enq", "handoff", "objects", "clock");
  os << line;
  for (const NodeReport& n : nodes) {
    std::snprintf(line, sizeof(line), "%-5u %9llu %9llu %8llu %8llu %8llu %8zu %10llu\n",
                  n.node, static_cast<unsigned long long>(n.metrics.commits_root),
                  static_cast<unsigned long long>(n.metrics.aborts_total()),
                  static_cast<unsigned long long>(n.metrics.nested_commits),
                  static_cast<unsigned long long>(n.metrics.enqueued),
                  static_cast<unsigned long long>(n.metrics.handoffs_received),
                  n.owned_objects, static_cast<unsigned long long>(n.clock));
    os << line;
  }
  std::snprintf(line, sizeof(line),
                "total commits=%llu aborts=%llu nested=%llu (abort-rate %.1f%%) "
                "objects=%zu\n",
                static_cast<unsigned long long>(totals.commits_root),
                static_cast<unsigned long long>(totals.aborts_total()),
                static_cast<unsigned long long>(totals.nested_commits),
                totals.nested_abort_rate() * 100.0, total_objects);
  os << line;
  std::snprintf(line, sizeof(line), "network messages=%llu bytes=%llu object-payloads=%llu\n",
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(bytes),
                static_cast<unsigned long long>(object_payloads));
  os << line;
  if (totals.latency.count() > 0) {
    std::snprintf(line, sizeof(line),
                  "latency ms p50=%.2f p90=%.2f p99=%.2f max=%.2f (%llu samples)\n",
                  static_cast<double>(totals.latency.value_at_percentile(50)) / 1e6,
                  static_cast<double>(totals.latency.value_at_percentile(90)) / 1e6,
                  static_cast<double>(totals.latency.value_at_percentile(99)) / 1e6,
                  static_cast<double>(totals.latency.max()) / 1e6,
                  static_cast<unsigned long long>(totals.latency.count()));
    os << line;
  }
  if (totals.latency.overflow_count() > 0) {
    std::snprintf(line, sizeof(line),
                  "!! latency histogram overflow: %llu samples above range — "
                  "tail percentiles are clamped\n",
                  static_cast<unsigned long long>(totals.latency.overflow_count()));
    os << line;
  }
  const std::uint64_t injected = faults_dropped + faults_duplicated + faults_delayed +
                                 faults_partition_dropped + faults_crash_dropped;
  if (injected > 0 || dropped_on_stop > 0 || totals.rpc_retries > 0 ||
      totals.dedup_hits > 0 || totals.watchdog_aborts > 0 || totals.grant_reforwards > 0) {
    std::snprintf(line, sizeof(line),
                  "faults dropped=%llu dup=%llu delayed=%llu partition=%llu crash=%llu "
                  "stop-drops=%llu\n",
                  static_cast<unsigned long long>(faults_dropped),
                  static_cast<unsigned long long>(faults_duplicated),
                  static_cast<unsigned long long>(faults_delayed),
                  static_cast<unsigned long long>(faults_partition_dropped),
                  static_cast<unsigned long long>(faults_crash_dropped),
                  static_cast<unsigned long long>(dropped_on_stop));
    os << line;
    std::snprintf(line, sizeof(line),
                  "recovery retries=%llu dedup-hits=%llu watchdog-aborts=%llu "
                  "grant-reforwards=%llu\n",
                  static_cast<unsigned long long>(totals.rpc_retries),
                  static_cast<unsigned long long>(totals.dedup_hits),
                  static_cast<unsigned long long>(totals.watchdog_aborts),
                  static_cast<unsigned long long>(totals.grant_reforwards));
    os << line;
  }
  return os.str();
}

}  // namespace hyflow::runtime
