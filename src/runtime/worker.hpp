// A worker thread: issues transactions for one node back-to-back (zero
// think time) until asked to stop. The paper drives each node with a pool
// of active transactions; a small number of saturating workers per node
// produces the same continuous offered load (see DESIGN.md substitutions).
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace hyflow::workloads {
class Workload;
}

namespace hyflow::runtime {

class Node;

class Worker {
 public:
  Worker(Node& node, workloads::Workload& workload, std::uint64_t seed);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  void start();
  void request_stop();
  void join();

  std::uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }

 private:
  void loop(std::stop_token st);

  Node& node_;
  workloads::Workload& workload_;
  Xoshiro256 rng_;
  std::atomic<std::uint64_t> completed_{0};
  std::jthread thread_;
};

}  // namespace hyflow::runtime
