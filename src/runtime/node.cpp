#include "runtime/node.hpp"

namespace hyflow::runtime {

Node::Node(NodeId id, net::Network& network, const NodeConfig& cfg)
    : id_(id),
      network_(network),
      rpc_policy_(cfg.rpc),
      stats_(cfg.tfa.default_expected_duration),
      contention_(cfg.scheduler.contention_window),
      scheduler_(core::make_scheduler(cfg.scheduler)),
      resolver_(*this, store_) {
  runtime_ = std::make_unique<tfa::TfaRuntime>(cfg.tfa, *this, store_, directory_, resolver_,
                                               *scheduler_, contention_, stats_, clock_,
                                               metrics_);
}

net::Message Node::envelope(NodeId to, net::Payload payload) const {
  net::Message m;
  m.from = id_;
  m.to = to;
  m.sender_clock = clock_.read();
  m.payload = std::move(payload);
  return m;
}

net::RequestCall Node::request(NodeId to, net::Payload payload) {
  const std::uint64_t id = network_.allocate_msg_id();
  auto call = pending_.open(id);
  net::Message m = envelope(to, std::move(payload));
  m.msg_id = id;
  network_.send(std::move(m));
  return net::RequestCall(&pending_, std::move(call), id);
}

void Node::post(NodeId to, net::Payload payload) {
  network_.send(envelope(to, std::move(payload)));
}

void Node::reply(const net::Message& request, net::Payload payload) {
  // Remember the reply so a retried/duplicated request replays it instead
  // of re-executing the handler (a replayed CommitRequest must hand back
  // the queue captured at the real hand-over, not current state).
  reply_cache_.record_reply(request.msg_id, payload);
  net::Message m = envelope(request.from, std::move(payload));
  m.reply_to = request.msg_id;
  network_.send(std::move(m));
}

void Node::reply_routed(NodeId to, std::uint64_t reply_to, net::Payload payload) {
  net::Message m = envelope(to, std::move(payload));
  m.reply_to = reply_to;
  network_.send(std::move(m));
}

void Node::resend(NodeId to, std::uint64_t msg_id, std::uint32_t attempt,
                  net::Payload payload) {
  metrics_.add_rpc_retry();
  net::Message m = envelope(to, std::move(payload));
  m.msg_id = msg_id;    // same id: replies of any attempt match the call
  m.attempt = attempt;  // new ordinal: the fault injector re-rolls its dice
  network_.send(std::move(m));
}

void Node::handle_message(net::Message msg) {
  clock_.advance_to(msg.sender_clock);  // Lamport receive rule
  if (msg.reply_to != 0) {
    if (!pending_.deliver(msg)) runtime_->handle_orphan_reply(msg);
    return;
  }
  const auto seen = reply_cache_.admit(msg.msg_id);
  if (seen.duplicate) {
    // Retry or network duplicate of a request already executed: never run
    // the handler twice — replay the recorded reply, or swallow a one-way.
    metrics_.add_dedup_hit();
    if (seen.reply) {
      net::Message m = envelope(msg.from, *seen.reply);
      m.reply_to = msg.msg_id;
      network_.send(std::move(m));
    }
    return;
  }
  runtime_->handle_request(msg);
}

void Node::close_pending() { pending_.close_all(); }

void Node::reopen_pending() { pending_.reopen(); }

}  // namespace hyflow::runtime
