// The simulated cluster: N nodes over a latency-modelled network.
//
// Construction wires every node's handler into the network and starts the
// dispatcher; `create_object` places initial objects (store slot at the
// owner, directory entry at the home node); `start_workers`/`stop_workers`
// drive a workload; `execute` runs a single transaction synchronously for
// examples and tests.
#pragma once

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "runtime/metrics.hpp"
#include "runtime/node.hpp"
#include "runtime/worker.hpp"

namespace hyflow::workloads {
class Workload;
}

namespace hyflow::runtime {

struct ClusterConfig {
  std::uint32_t nodes = 8;
  int workers_per_node = 2;
  int delivery_threads = 2;
  net::TopologyConfig topology;  // `nodes` is overridden to match
  core::SchedulerConfig scheduler;
  tfa::TfaConfig tfa;
  net::FaultPlan fault;     // fault injection (default off)
  net::RetryPolicy rpc;     // reliable-RPC retry schedule
  std::uint64_t seed = 1;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::uint32_t size() const { return static_cast<std::uint32_t>(nodes_.size()); }
  Node& node(NodeId id) { return *nodes_.at(id); }
  net::Network& network() { return *network_; }
  const ClusterConfig& config() const { return cfg_; }

  // Places `obj` at `owner` and publishes it in the home-node directory.
  void create_object(std::unique_ptr<AbstractObject> obj, NodeId owner);

  // Locates the current owner's committed copy of an object by scanning
  // stores (post-quiesce audits only). Returns nullptr if absent.
  ObjectSnapshot committed_copy(ObjectId oid);

  // ---- workload driving ----
  void start_workers(workloads::Workload& workload);
  void stop_workers();
  bool workers_running() const { return !workers_.empty(); }

  // Runs one transaction synchronously on `node` (examples/tests).
  tfa::RunResult execute(NodeId node, std::uint32_t profile,
                         const std::function<void(tfa::Txn&)>& body);

  MetricsSnapshot total_metrics() const;
  // Cluster-wide commit-latency histogram (from per-node metrics); safe to
  // read live, not just after stop_workers().
  Histogram merged_latency() const;
  std::uint64_t total_completed() const;

  // Stops workers, unblocks pending calls, stops the network.
  void shutdown();

 private:
  ClusterConfig cfg_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Periodically expires unacknowledged Alg. 4 grants on every node so a
  // dropped hand-off re-serves the queue instead of stranding it.
  std::jthread maintenance_;
  bool shut_down_ = false;
};

}  // namespace hyflow::runtime
