#include "tfa/transaction.hpp"

#include "util/assert.hpp"

namespace hyflow::tfa {

Transaction::Found Transaction::find_up(ObjectId oid) {
  for (Transaction* t = this; t != nullptr; t = t->parent_) {
    if (AccessEntry* e = t->set_.find(oid)) return Found{e, t->depth_};
  }
  return Found{};
}

void Transaction::merge_into_parent() {
  HYFLOW_ASSERT_MSG(parent_ != nullptr, "merge_into_parent on a root transaction");
  AccessSet& up = parent_->set_;
  for (auto& [oid, ce] : set_) {
    AccessEntry* pe = up.find(oid);
    if (ce.inherited) {
      if (!ce.working) continue;  // pure read view of an ancestor's object
      if (pe) {
        // Fold the buffered write into the parent's entry (real or itself
        // pending); the parent now carries the child's effect.
        pe->working = std::move(ce.working);
        pe->mode = net::AccessMode::kWrite;
      } else {
        // The real entry lives further up; keep the write pending here.
        up.insert(oid, std::move(ce));
      }
    } else {
      // The child fetched this object; the parent inherits it wholesale —
      // including the round-trips already paid for it. A parent-level entry
      // can only exist as an inherited view created before the child ran,
      // which the fetched entry supersedes; fold any pending parent write
      // is impossible (the child would have seen it via find_up).
      HYFLOW_ASSERT_MSG(pe == nullptr || pe->inherited,
                        "child fetched an object the parent already holds");
      up.insert(oid, std::move(ce));
    }
  }
  set_.clear();
}

std::uint32_t Transaction::collect_my_cl() const {
  std::uint32_t sum = 0;
  for (const Transaction* t = this; t != nullptr; t = t->parent_) {
    for (const auto& [oid, e] : t->set_) {
      if (!e.inherited) sum += e.owner_cl;
    }
  }
  return sum;
}

}  // namespace hyflow::tfa
