// Abort taxonomy.
//
// The paper distinguishes two causes of nested-transaction aborts
// (§IV-B): (1) the transaction's own early validation / object
// inconsistency, and (2) its parent's abort. Root transactions additionally
// abort on scheduler denial (the conflicting request hit an object under
// validation and the scheduler said abort), on backoff expiry (an enqueued
// parent ran out of patience), and on commit-time lock conflicts.
#pragma once

#include <cstdint>

#include "dsm/object_id.hpp"
#include "util/time.hpp"

namespace hyflow::tfa {

enum class AbortCause : std::uint8_t {
  kNone = 0,
  kEarlyValidation,   // forwarding/commit validation found a stale entry
  kSchedulerDenied,   // requested an object under validation; scheduler said abort
  kBackoffExpired,    // enqueued, but the object never arrived in time
  kLockConflict,      // commit-time lock denied (busy or version mismatch)
  kShutdown,          // cluster stopping
  kUserRetry,         // workload-requested restart
  kWatchdog,          // RPC retry budget exhausted: peer unreachable/reply lost
  kCauseCount
};

constexpr const char* abort_cause_name(AbortCause c) {
  switch (c) {
    case AbortCause::kNone: return "none";
    case AbortCause::kEarlyValidation: return "early-validation";
    case AbortCause::kSchedulerDenied: return "scheduler-denied";
    case AbortCause::kBackoffExpired: return "backoff-expired";
    case AbortCause::kLockConflict: return "lock-conflict";
    case AbortCause::kShutdown: return "shutdown";
    case AbortCause::kUserRetry: return "user-retry";
    case AbortCause::kWatchdog: return "watchdog";
    case AbortCause::kCauseCount: break;
  }
  return "?";
}

// Thrown by the TFA runtime to unwind a doomed transaction body.
// `locus_depth` identifies the nesting level whose access entry caused the
// failure: a closed-nested child whose own entry went stale retries alone;
// anything rooted shallower aborts the parent chain up to that level.
struct AbortException {
  AbortCause cause = AbortCause::kNone;
  int locus_depth = 0;          // 0 = root
  ObjectId oid = kInvalidObject;
  SimDuration retry_stall = 0;  // TFA+Backoff: stall before restarting
};

}  // namespace hyflow::tfa
