// Closed-nested transaction tree.
//
// A root transaction and its active chain of nested descendants form a
// stack (one thread executes one tree; there is no intra-transaction
// parallelism, matching the paper's model). Each level owns an AccessSet:
//
//   * child commit  -> merge_into_parent(): the child's fetched objects and
//     buffered writes become the parent's. Nothing is sent anywhere — this
//     is precisely why an *enqueued* parent preserves its children's work.
//   * child abort   -> the child object is destroyed; the parent's set is
//     untouched.
//   * parent abort  -> the whole tree unwinds; every committed child is
//     rolled back (counted as a parent-caused nested abort, Table I).
//
// TFA state (start clock, ETS timestamps, myCL) lives on the root: nested
// transactions are closed, so the cluster only ever sees the root commit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "tfa/rwset.hpp"
#include "util/time.hpp"

namespace hyflow::tfa {

class Transaction {
 public:
  // Root transaction.
  Transaction(TxnId id, std::uint32_t profile, std::uint64_t start_clock,
              SimTime wall_start, SimTime expected_commit)
      : id_(id),
        profile_(profile),
        start_clock_(start_clock),
        wall_start_(wall_start),
        expected_commit_(expected_commit) {}

  // Closed-nested child. Registers itself as the parent's active child so
  // protocol code can walk the live chain root -> leaf (there is at most
  // one: a transaction tree executes on a single thread).
  explicit Transaction(Transaction& parent)
      : id_(parent.id_), profile_(parent.profile_), parent_(&parent),
        depth_(parent.depth_ + 1) {
    parent.active_child_ = this;
  }

  ~Transaction() {
    if (parent_) parent_->active_child_ = nullptr;
  }

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  Transaction* active_child() { return active_child_; }

  TxnId id() const { return id_; }
  std::uint32_t profile() const { return profile_; }
  bool is_root() const { return parent_ == nullptr; }
  int depth() const { return depth_; }
  Transaction* parent() { return parent_; }

  Transaction& root() {
    Transaction* t = this;
    while (t->parent_) t = t->parent_;
    return *t;
  }
  const Transaction& root() const { return const_cast<Transaction*>(this)->root(); }

  AccessSet& set() { return set_; }
  const AccessSet& set() const { return set_; }

  struct Found {
    AccessEntry* entry = nullptr;
    int depth = 0;  // level where the entry resides
  };

  // Nearest entry for `oid` at this level or any ancestor.
  Found find_up(ObjectId oid);

  // Child commit: fold this level's entries into the parent.
  void merge_into_parent();

  // Sum of owner-piggybacked CLs over the chain's fetched objects — the
  // transaction's myCL (remote contention level, §III-A).
  std::uint32_t collect_my_cl() const;

  // ---- root-only TFA state (valid on root()) ----
  std::uint64_t start_clock() const { return root().start_clock_; }
  void forward_to(std::uint64_t clock) { root().start_clock_ = clock; }
  SimTime wall_start() const { return root().wall_start_; }
  SimTime expected_commit() const { return root().expected_commit_; }

  // Children committed in the current attempt (rolled back — and counted —
  // if the root aborts).
  std::uint32_t nested_committed = 0;

  // Open nesting (root-only): compensating actions registered by committed
  // open-nested children. An open-nested child's effects are globally
  // visible the moment it commits; if the enclosing root aborts, these run
  // (in reverse registration order) to undo the children *abstractly*.
  std::vector<std::function<void(class Txn&)>> compensations;

 private:
  TxnId id_;
  std::uint32_t profile_ = 0;
  Transaction* parent_ = nullptr;
  Transaction* active_child_ = nullptr;
  int depth_ = 0;
  AccessSet set_;

  // Root-only fields.
  std::uint64_t start_clock_ = 0;
  SimTime wall_start_ = 0;
  SimTime expected_commit_ = 0;
};

}  // namespace hyflow::tfa
