// Read/write sets.
//
// Each nesting level of a transaction keeps its own AccessSet. An entry
// records the snapshot as fetched (or as inherited from an ancestor), the
// private working copy if the level wrote the object, the version the
// fetch observed, and where the object came from. On closed-nested commit
// the child's entries merge into the parent (the inherited objects — and
// with them, the fetch round-trips already paid — survive the child);
// on child abort the child's set is simply dropped.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "dsm/object.hpp"
#include "dsm/object_id.hpp"
#include "dsm/version.hpp"
#include "net/payloads.hpp"

namespace hyflow::tfa {

struct AccessEntry {
  ObjectSnapshot base;                        // value observed at open
  std::shared_ptr<AbstractObject> working;    // private mutable copy (writes only)
  Version version;                            // version the fetch observed
  net::AccessMode mode = net::AccessMode::kRead;
  NodeId owner_hint = kInvalidNode;           // who served the fetch
  std::uint32_t owner_cl = 0;                 // local CL piggy-backed on the fetch
  int fetch_depth = 0;                        // nesting level that fetched it
  bool inherited = false;  // views an ancestor's entry; never merged/validated here

  // The value this level observes: its own write if any, else the base.
  const AbstractObject& effective() const { return working ? *working : *base; }

  // Lazily create the private working copy.
  AbstractObject& mutable_copy() {
    if (!working) working = std::shared_ptr<AbstractObject>(effective().clone());
    mode = net::AccessMode::kWrite;
    return *working;
  }
};

class AccessSet {
 public:
  AccessEntry* find(ObjectId oid) {
    auto it = entries_.find(oid);
    return it == entries_.end() ? nullptr : &it->second;
  }
  const AccessEntry* find(ObjectId oid) const {
    auto it = entries_.find(oid);
    return it == entries_.end() ? nullptr : &it->second;
  }

  AccessEntry& insert(ObjectId oid, AccessEntry entry) {
    return entries_.insert_or_assign(oid, std::move(entry)).first->second;
  }

  void erase(ObjectId oid) { entries_.erase(oid); }
  void clear() { entries_.clear(); }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  auto begin() { return entries_.begin(); }
  auto end() { return entries_.end(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

  std::size_t write_count() const {
    std::size_t n = 0;
    for (const auto& [oid, e] : entries_)
      if (!e.inherited && e.mode == net::AccessMode::kWrite) ++n;
    return n;
  }

 private:
  std::unordered_map<ObjectId, AccessEntry> entries_;
};

}  // namespace hyflow::tfa
