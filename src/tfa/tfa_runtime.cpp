#include "tfa/tfa_runtime.hpp"

#include <algorithm>
#include <thread>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace hyflow::tfa {

TfaRuntime::TfaRuntime(const TfaConfig& cfg, net::Comm& comm, dsm::ObjectStore& store,
                       dsm::DirectoryShard& directory, dsm::OwnerResolver& resolver,
                       core::Scheduler& scheduler, core::ContentionTracker& contention,
                       StatsTable& stats, NodeClock& clock, runtime::NodeMetrics& metrics)
    : cfg_(cfg),
      comm_(comm),
      store_(store),
      directory_(directory),
      resolver_(resolver),
      scheduler_(scheduler),
      contention_(contention),
      stats_(stats),
      clock_(clock),
      metrics_(metrics) {}

// ---------------------------------------------------------------------------
// User handle
// ---------------------------------------------------------------------------

AccessEntry& Txn::open(ObjectId oid, net::AccessMode mode) {
  return rt_.open_object(level_, oid, mode);
}

void Txn::nested(const std::function<void(Txn&)>& body) {
  int retries = 0;
  for (;;) {
    Transaction child(level_);
    Txn handle(rt_, child);
    try {
      body(handle);
      // Closed-nested commit: early-validate the child's own reads before
      // its effects merge (Turcu & Ravindran's nested TFA). A stale child
      // aborts here — alone — instead of dooming the parent at root commit.
      rt_.validate_child(child);
      child.merge_into_parent();
      level_.root().nested_committed += 1;
      rt_.metrics().add_nested_commit();
      return;
    } catch (const AbortException& e) {
      // A closed-nested child whose *own* entry went stale retries alone;
      // anything rooted at an ancestor means the parent chain is doomed and
      // this child dies with it (parent-caused nested abort, Table I).
      const bool child_local = e.cause == AbortCause::kEarlyValidation &&
                               e.locus_depth >= child.depth();
      if (child_local && ++retries <= rt_.config().max_child_retries) {
        rt_.metrics().add_nested_abort(/*parent_cause=*/false);
        continue;
      }
      rt_.metrics().add_nested_abort(/*parent_cause=*/!child_local);
      throw;
    }
  }
}

void Txn::open_nested(const std::function<void(Txn&)>& body,
                      std::function<void(Txn&)> compensation) {
  // The open-nested child is an independent top-level transaction: it gets
  // its own retry loop, its own commit, and global visibility on success.
  const auto result = rt_.run(level_.root().profile(), body);
  if (!result.committed) throw AbortException{AbortCause::kShutdown, 0};
  rt_.metrics().add_open_nested_commit();
  if (compensation) level_.root().compensations.push_back(std::move(compensation));
}

// ---------------------------------------------------------------------------
// Requester side: run / open / forward / validate
// ---------------------------------------------------------------------------

RunResult TfaRuntime::run(std::uint32_t profile, const std::function<void(Txn&)>& body,
                          const std::function<bool()>& keep_going) {
  RunResult res;
  const SimTime first_start = sim_now();
  while (keep_going()) {
    ++res.attempts;
    const SimTime attempt_start = sim_now();
    // ETS.s is the transaction's *first* attempt start: Fig. 3 measures
    // T4's execution time from t1, spanning its earlier aborted attempt, so
    // a transaction that keeps losing ages into enqueue eligibility instead
    // of storming the hot object forever. ETS.c stays relative to the
    // current attempt — it estimates the *remaining* execution charged to
    // the queue.
    Transaction root(TxnId::make(comm_.self(), txn_seq_.fetch_add(1, std::memory_order_relaxed)),
                     profile, clock_.read(), first_start,
                     stats_.expected_commit(profile, attempt_start));
    Txn handle(*this, root);
    try {
      body(handle);
      const bool read_only = root.set().write_count() == 0;
      commit_root(root);
      metrics_.add_commit(read_only);
      scheduler_.note_commit(sim_now());
      if (!read_only) stats_.record_commit(profile, sim_now() - attempt_start);
      res.committed = true;
      res.latency = sim_now() - first_start;
      metrics_.record_latency(static_cast<std::uint64_t>(res.latency));
      return res;
    } catch (const AbortException& e) {
      metrics_.add_root_abort(e.cause);
      // The root abort rolls back every closed-nested child that had
      // committed into it.
      if (root.nested_committed > 0)
        metrics_.add_nested_abort(/*parent_cause=*/true, root.nested_committed);
      // Open-nested children are NOT rolled back — their registered
      // compensations run instead, newest first, each as an independent
      // transaction that must itself commit.
      for (auto it = root.compensations.rbegin(); it != root.compensations.rend(); ++it) {
        const auto comp_result = run(profile, *it, keep_going);
        if (comp_result.committed) metrics_.add_compensation_run();
      }
      root.compensations.clear();
      if (e.cause == AbortCause::kShutdown) break;
      if (e.retry_stall > 0) std::this_thread::sleep_for(to_chrono(e.retry_stall));
    }
  }
  return res;
}

void TfaRuntime::abort_txn(AbortCause cause, int locus, ObjectId oid, SimDuration stall) {
  if (cause == AbortCause::kWatchdog) metrics_.add_watchdog_abort();
  throw AbortException{cause, locus, oid, stall};
}

namespace {
// Maps an empty reliable_wait result to the right abort cause: the registry
// being closed means orderly shutdown; otherwise the retry budget ran out
// with the peer unreachable and the watchdog fires.
AbortCause empty_wait_cause(const net::RequestCall& call) {
  return call.closed() ? AbortCause::kShutdown : AbortCause::kWatchdog;
}
}  // namespace

AccessEntry& TfaRuntime::open_object(Transaction& leaf, ObjectId oid, net::AccessMode mode) {
  // Already in the transaction tree? Serve it locally — the fetched object
  // (and its round-trips) are reused across nesting levels.
  if (auto found = leaf.find_up(oid); found.entry) {
    if (found.depth == leaf.depth()) {
      if (mode == net::AccessMode::kWrite) found.entry->mutable_copy();
      return *found.entry;
    }
    AccessEntry view;
    view.inherited = true;
    view.base = found.entry->working
                    ? std::shared_ptr<const AbstractObject>(found.entry->working)
                    : found.entry->base;
    view.version = found.entry->version;
    view.mode = mode;
    view.owner_hint = found.entry->owner_hint;
    view.fetch_depth = leaf.depth();
    AccessEntry& e = leaf.set().insert(oid, std::move(view));
    if (mode == net::AccessMode::kWrite) e.mutable_copy();
    return e;
  }

  // Alg. 2 Open_Object: resolve the owner and request a copy.
  Transaction& root = leaf.root();
  for (int attempt = 0; attempt < cfg_.max_owner_retries; ++attempt) {
    const auto owner = resolver_.find_owner(oid);
    if (!owner) abort_txn(AbortCause::kShutdown, 0, oid);

    net::ObjectRequest req;
    req.oid = oid;
    req.txid = root.id();
    req.mode = mode;
    req.requester_cl = leaf.collect_my_cl();
    req.ets = net::Ets{root.wall_start(), sim_now(), root.expected_commit()};

    auto call = comm_.request(*owner, req);
    const auto reply = net::reliable_wait(comm_, call, *owner, req, comm_.retry_policy());
    if (!reply) abort_txn(empty_wait_cause(call), 0, oid);
    const auto& resp = std::get<net::ObjectResponse>(reply->payload);

    if (resp.wrong_owner) {
      resolver_.invalidate(oid);
      metrics_.add_wrong_owner_retry();
      continue;
    }
    if (resp.object) {
      if (resp.handoff) comm_.post(reply->from, net::GrantAck{oid, root.id()});
      return admit_granted(leaf, oid, mode, *reply);
    }

    if (resp.enqueued) {
      // RTS parked us: the open blocks until the object is pushed (by the
      // validating transaction's commit/abort) or the backoff runs out.
      // A retried request can surface a replayed "enqueued" answer from the
      // owner's reply cache; those are skipped, only a grant (or scheduler
      // denial) ends the wait early.
      metrics_.add_enqueued();
      const SimTime deadline = sim_now() + std::max<SimDuration>(resp.backoff, sim_us(10));
      std::optional<net::Message> pushed;
      for (;;) {
        const SimTime now = sim_now();
        if (now >= deadline) break;
        pushed = call.poll_for(deadline - now);
        if (!pushed) break;
        const auto& next = std::get<net::ObjectResponse>(pushed->payload);
        if (next.object || !next.enqueued) break;  // grant or denial
        pushed.reset();  // duplicate park notice: keep waiting
      }
      if (!pushed) {
        metrics_.add_backoff_expired();
        // Proactively withdraw from the queue (best effort: the owner may
        // have moved) so the hand-off chain skips us instead of waiting for
        // the orphan-reply round-trip.
        net::NotInterested ni;
        ni.oid = oid;
        ni.txid = root.id();
        comm_.post(reply->from, ni);
        abort_txn(AbortCause::kBackoffExpired, 0, oid);
      }
      const auto& granted = std::get<net::ObjectResponse>(pushed->payload);
      if (granted.object) {
        metrics_.add_handoff_received();
        if (granted.handoff) comm_.post(pushed->from, net::GrantAck{oid, root.id()});
        return admit_granted(leaf, oid, mode, *pushed);
      }
      abort_txn(AbortCause::kSchedulerDenied, 0, oid);
    }
    // Not enqueued: scheduler said abort — with a pre-retry stall under
    // TFA+Backoff, immediately under plain TFA.
    abort_txn(AbortCause::kSchedulerDenied, 0, oid, resp.backoff);
  }
  // Ownership kept moving under us; give up this attempt.
  abort_txn(AbortCause::kEarlyValidation, 0, oid);
}

AccessEntry& TfaRuntime::admit_granted(Transaction& leaf, ObjectId oid, net::AccessMode mode,
                                       const net::Message& reply) {
  const auto& resp = std::get<net::ObjectResponse>(reply.payload);
  Transaction& root = leaf.root();
  forward_if_needed(root, reply.sender_clock);

  AccessEntry e;
  e.base = resp.object;
  e.version = resp.version;
  e.mode = mode;
  e.owner_hint = reply.from;
  e.owner_cl = resp.owner_cl;
  e.fetch_depth = leaf.depth();
  AccessEntry& ref = leaf.set().insert(oid, std::move(e));
  if (mode == net::AccessMode::kWrite) ref.mutable_copy();
  resolver_.note_owner(oid, reply.from);
  return ref;
}

void TfaRuntime::forward_if_needed(Transaction& root, std::uint64_t observed_clock) {
  if (observed_clock <= root.start_clock()) return;
  // Transactional forwarding: the responder's clock is ahead of our start,
  // so everything read so far must be re-validated before the start clock
  // moves up (early validation; §II).
  metrics_.add_forwarding();
  validate_chain(root, /*reads_only=*/false);
  root.forward_to(observed_clock);
}

void TfaRuntime::validate_chain(Transaction& root, bool reads_only) {
  std::vector<ValidateItem> items;
  for (Transaction* t = &root; t != nullptr; t = t->active_child()) {
    for (auto& [oid, entry] : t->set()) {
      if (entry.inherited) continue;  // the real entry is validated upstream
      if (reads_only && entry.mode == net::AccessMode::kWrite) continue;
      items.push_back(
          ValidateItem{oid, &entry, t->depth(), entry.owner_hint, false, std::nullopt});
    }
  }
  run_validation(items);
}

void TfaRuntime::validate_child(Transaction& child) {
  // Closed-nested commit validation (Turcu & Ravindran, the paper's
  // substrate): before an inner transaction's effects merge into its
  // parent, its own fetched entries are early-validated. A failure aborts
  // the *child only* (locus = child depth), which then retries alone —
  // the paper's first cause of nested-transaction aborts.
  std::vector<ValidateItem> items;
  for (auto& [oid, entry] : child.set()) {
    if (entry.inherited) continue;
    items.push_back(
        ValidateItem{oid, &entry, child.depth(), entry.owner_hint, false, std::nullopt});
  }
  run_validation(items);
}

void TfaRuntime::run_validation(std::vector<ValidateItem>& items) {
  // Early validation of an access-set slice. Remote checks for one round
  // are issued concurrently — validation is a logical step, not a serial
  // walk, and a serial walk would stretch every forwarding by
  // read-set-size round-trips.
  for (int attempt = 0; attempt < cfg_.max_owner_retries; ++attempt) {
    bool all_done = true;
    for (ValidateItem& it : items) {
      if (it.done) continue;
      all_done = false;
      if (it.target == comm_.self()) {
        switch (store_.validate(it.oid, it.entry->version.clock, kInvalidTxn)) {
          case dsm::ObjectStore::ValidateResult::kValid:
            it.done = true;
            break;
          case dsm::ObjectStore::ValidateResult::kInvalid:
            abort_txn(AbortCause::kEarlyValidation, it.depth, it.oid);
          case dsm::ObjectStore::ValidateResult::kNotOwner:
            it.target = kInvalidNode;  // re-resolve below
            break;
        }
      } else {
        net::ValidateRequest req;
        req.oid = it.oid;
        req.expected_clock = it.entry->version.clock;
        it.call.emplace(comm_.request(it.target, req));
      }
    }
    if (all_done) return;

    for (ValidateItem& it : items) {
      if (it.done || !it.call) continue;
      net::ValidateRequest req;
      req.oid = it.oid;
      req.expected_clock = it.entry->version.clock;
      const auto reply =
          net::reliable_wait(comm_, *it.call, it.target, req, comm_.retry_policy());
      if (!reply) {
        const AbortCause cause = empty_wait_cause(*it.call);
        it.call.reset();
        abort_txn(cause, it.depth, it.oid);
      }
      it.call.reset();
      const auto& resp = std::get<net::ValidateResponse>(reply->payload);
      if (resp.valid) {
        it.done = true;
      } else if (!resp.wrong_owner) {
        abort_txn(AbortCause::kEarlyValidation, it.depth, it.oid);
      } else {
        it.target = kInvalidNode;
      }
    }
    for (ValidateItem& it : items) {
      if (it.done || it.target != kInvalidNode) continue;
      resolver_.invalidate(it.oid);
      metrics_.add_wrong_owner_retry();
      const auto owner = resolver_.find_owner(it.oid);
      if (!owner) abort_txn(AbortCause::kShutdown, it.depth, it.oid);
      it.target = *owner;
    }
  }
  for (const ValidateItem& it : items)
    if (!it.done) abort_txn(AbortCause::kEarlyValidation, it.depth, it.oid);
}

// ---------------------------------------------------------------------------
// Commit protocol
// ---------------------------------------------------------------------------

std::vector<TfaRuntime::WriteTarget> TfaRuntime::resolve_write_set(Transaction& root) {
  std::vector<WriteTarget> writes;
  for (auto& [oid, entry] : root.set()) {
    if (entry.inherited || entry.mode != net::AccessMode::kWrite) continue;
    HYFLOW_ASSERT_MSG(entry.working != nullptr, "write entry without a working copy");
    writes.push_back(WriteTarget{oid, &entry, entry.owner_hint});
  }
  // Deterministic lock order across competing committers.
  std::sort(writes.begin(), writes.end(),
            [](const WriteTarget& a, const WriteTarget& b) { return a.oid < b.oid; });
  return writes;
}

void TfaRuntime::commit_root(Transaction& root) {
  HYFLOW_ASSERT(root.is_root());
  auto writes = resolve_write_set(root);

  if (writes.empty()) {
    // Read-only transaction: commit-time validation only, no locks, no
    // ownership changes. A single-object read needs no validation at all —
    // the fetched copy was the committed value at fetch time, so the
    // transaction serialises there (and cannot be starved by a write-hot
    // object).
    std::size_t fetched = 0;
    for (Transaction* t = &root; t != nullptr; t = t->active_child())
      for (const auto& [oid, entry] : t->set())
        if (!entry.inherited) ++fetched;
    if (fetched > 1) validate_chain(root, /*reads_only=*/false);
    return;
  }

  lock_write_set(root, writes);

  try {
    validate_chain(root, /*reads_only=*/true);
  } catch (...) {
    release_locks(root.id(), writes, writes.size());
    throw;
  }

  const std::uint64_t commit_clock = clock_.increment_past(root.start_clock());

  // Global registration of object ownership — deliberately inside the
  // validation window (locks held): this is the long stretch during which
  // conflicting requesters hit the scheduler (§II). Requests go out
  // concurrently; the window is one directory round-trip, not one per object.
  {
    std::vector<net::RequestCall> calls;
    std::vector<net::RegisterOwnerRequest> reqs;
    calls.reserve(writes.size());
    reqs.reserve(writes.size());
    for (auto& w : writes) {
      net::RegisterOwnerRequest req;
      req.oid = w.oid;
      req.new_owner = comm_.self();
      req.version_clock = commit_clock;
      reqs.push_back(req);
      calls.push_back(comm_.request(dsm::home_node(w.oid, comm_.cluster_size()), req));
    }
    // Registration must not give up early — a half-registered write set
    // poisons the directory — so it gets a multiplied retry budget. If it
    // still fails, every possibly-applied registration is rolled back to
    // the previous owner at the same clock (register_owner accepts equal
    // clocks), then the locks are released and the commit aborts.
    const net::RetryPolicy policy = comm_.retry_policy().scaled(3);
    for (std::size_t i = 0; i < calls.size(); ++i) {
      const NodeId home = dsm::home_node(writes[i].oid, comm_.cluster_size());
      if (net::reliable_wait(comm_, calls[i], home, reqs[i], policy)) continue;
      const AbortCause cause = empty_wait_cause(calls[i]);
      if (cause == AbortCause::kWatchdog) {
        HYFLOW_WARN("ownership registration of object ", writes[i].oid.value,
                    " timed out; rolling back the registered set");
        for (auto& w : writes) {
          if (w.owner == comm_.self()) continue;  // owner unchanged
          net::RegisterOwnerRequest undo;
          undo.oid = w.oid;
          undo.new_owner = w.owner;
          undo.version_clock = commit_clock;
          auto undo_call =
              comm_.request(dsm::home_node(w.oid, comm_.cluster_size()), undo);
          net::reliable_wait(comm_, undo_call, dsm::home_node(w.oid, comm_.cluster_size()),
                             undo, comm_.retry_policy());
        }
      }
      release_locks(root.id(), writes, writes.size());
      abort_txn(cause, 0, writes[i].oid);
    }
  }

  publish_write_set(root, writes, commit_clock);
}

void TfaRuntime::lock_write_set(Transaction& root, std::vector<WriteTarget>& writes) {
  // Lock requests for one round go out concurrently (lock order is still
  // deterministic per object via the sort; grants never block, so there is
  // no deadlock to order around — only livelock, resolved by abort).
  const TxnId txid = root.id();
  std::vector<bool> locked(writes.size(), false);
  std::vector<std::optional<net::RequestCall>> calls(writes.size());

  const auto release_granted = [&] {
    for (std::size_t i = 0; i < writes.size(); ++i) {
      if (!locked[i]) continue;
      if (writes[i].owner == comm_.self()) {
        if (auto slot = store_.get(writes[i].oid); slot && slot->locked_by == txid)
          record_hold(slot->locked_at);
        store_.unlock(writes[i].oid, txid);
        serve_waiters(writes[i].oid);
      } else {
        release_remote_lock(writes[i].oid, txid, writes[i].owner);
      }
    }
  };
  const auto fail = [&](AbortCause cause, ObjectId oid) {
    // Collect outstanding grants before releasing, so no lock leaks. A call
    // that stays silent is treated as granted: the pessimistic unlock it
    // triggers is a no-op if the lock was never taken.
    for (std::size_t i = 0; i < writes.size(); ++i) {
      if (!calls[i]) continue;
      if (auto reply = calls[i]->poll_for(comm_.retry_policy().base_timeout)) {
        const auto& resp = std::get<net::LockResponse>(reply->payload);
        if (resp.granted) locked[i] = true;
      } else if (!calls[i]->closed()) {
        locked[i] = true;  // unknown outcome: release pessimistically
      }
      calls[i].reset();
    }
    release_granted();
    abort_txn(cause, 0, oid);
  };

  for (int attempt = 0; attempt < cfg_.max_owner_retries; ++attempt) {
    bool all_locked = true;
    for (std::size_t i = 0; i < writes.size(); ++i) {
      if (locked[i]) continue;
      all_locked = false;
      WriteTarget& w = writes[i];
      if (w.owner == comm_.self()) {
        switch (store_.lock(w.oid, txid, w.entry->version.clock)) {
          case dsm::ObjectStore::LockResult::kGranted:
            locked[i] = true;
            break;
          case dsm::ObjectStore::LockResult::kBusy:
            fail(AbortCause::kLockConflict, w.oid);
            break;
          case dsm::ObjectStore::LockResult::kVersionMismatch:
            fail(AbortCause::kEarlyValidation, w.oid);
            break;
          case dsm::ObjectStore::LockResult::kNotOwner:
            w.owner = kInvalidNode;  // re-resolve below
            break;
        }
      } else {
        net::LockRequest req;
        req.oid = w.oid;
        req.txid = txid;
        req.expected_clock = w.entry->version.clock;
        calls[i].emplace(comm_.request(w.owner, req));
      }
    }
    if (all_locked) return;

    for (std::size_t i = 0; i < writes.size(); ++i) {
      if (!calls[i]) continue;
      net::LockRequest req;
      req.oid = writes[i].oid;
      req.txid = txid;
      req.expected_clock = writes[i].entry->version.clock;
      const auto reply =
          net::reliable_wait(comm_, *calls[i], writes[i].owner, req, comm_.retry_policy());
      if (!reply) {
        const AbortCause cause = empty_wait_cause(*calls[i]);
        calls[i].reset();
        fail(cause, writes[i].oid);
      }
      calls[i].reset();
      const auto& resp = std::get<net::LockResponse>(reply->payload);
      if (resp.granted) {
        locked[i] = true;
      } else if (resp.wrong_owner) {
        writes[i].owner = kInvalidNode;
      } else {
        fail(AbortCause::kLockConflict, writes[i].oid);
      }
    }
    for (std::size_t i = 0; i < writes.size(); ++i) {
      if (locked[i] || writes[i].owner != kInvalidNode) continue;
      resolver_.invalidate(writes[i].oid);
      metrics_.add_wrong_owner_retry();
      const auto owner = resolver_.find_owner(writes[i].oid);
      if (!owner) fail(AbortCause::kShutdown, writes[i].oid);
      writes[i].owner = *owner;
    }
  }
  fail(AbortCause::kLockConflict, writes.front().oid);
}

void TfaRuntime::release_locks(const TxnId txid, const std::vector<WriteTarget>& writes,
                               std::size_t count) {
  for (std::size_t i = 0; i < count && i < writes.size(); ++i) {
    const WriteTarget& w = writes[i];
    if (w.owner == comm_.self()) {
      if (auto slot = store_.get(w.oid); slot && slot->locked_by == txid)
        record_hold(slot->locked_at);
      store_.unlock(w.oid, txid);
      serve_waiters(w.oid);
    } else {
      release_remote_lock(w.oid, txid, w.owner);
    }
  }
}

void TfaRuntime::release_remote_lock(ObjectId oid, TxnId txid, NodeId owner) {
  // Acked, retried release: a lost AbortUnlock would leave the object
  // locked at the owner with nobody left to unlock it.
  net::AbortUnlock msg;
  msg.oid = oid;
  msg.txid = txid;
  auto call = comm_.request(owner, msg);
  if (!net::reliable_wait(comm_, call, owner, msg, comm_.retry_policy()) && !call.closed()) {
    HYFLOW_WARN("abort-unlock of object ", oid.value, " at node ", owner,
                " unacknowledged; lock release outcome unknown");
  }
}

void TfaRuntime::publish_write_set(Transaction& root, std::vector<WriteTarget>& writes,
                                   std::uint64_t commit_clock) {
  // Past this point the commit is decided: every lock is held, the read set
  // validated, and ownership registered. Publishing must complete for all
  // objects even if the cluster starts shutting down mid-way — a torn
  // publish would break atomicity (e.g. Bank's conservation invariant).
  const TxnId txid = root.id();
  const Version version{commit_clock, comm_.self()};
  std::vector<std::optional<net::RequestCall>> calls(writes.size());
  for (std::size_t i = 0; i < writes.size(); ++i) {
    WriteTarget& w = writes[i];
    ObjectSnapshot snapshot = std::move(w.entry->working);
    if (w.owner == comm_.self()) {
      if (auto slot = store_.get(w.oid); slot && slot->locked_by == txid)
        record_hold(slot->locked_at);
      const bool ok = store_.commit_in_place(w.oid, txid, snapshot, version);
      HYFLOW_ASSERT_MSG(ok, "commit_in_place on a lock we hold must succeed");
    } else {
      // Install locally first — the directory already points here, so the
      // new copy must be servable before the old owner's slot goes away.
      store_.install(snapshot, version);
      resolver_.note_owner(w.oid, comm_.self());
      net::CommitRequest req;
      req.oid = w.oid;
      req.txid = txid;
      req.new_version = version;
      req.new_owner = comm_.self();
      calls[i].emplace(comm_.request(w.owner, req));
    }
  }
  for (std::size_t i = 0; i < writes.size(); ++i) {
    if (calls[i]) {
      net::CommitRequest req;
      req.oid = writes[i].oid;
      req.txid = txid;
      req.new_version = version;
      req.new_owner = comm_.self();
      // The hand-off must survive message loss: without it the old owner's
      // copy stays locked and its parked requesters are stranded. The
      // receiver's reply cache preserves the extracted queue, so a retried
      // CommitRequest is answered with the queue captured at the real
      // hand-over, never an empty one.
      if (auto reply = net::reliable_wait(comm_, *calls[i], writes[i].owner, req,
                                          comm_.retry_policy().scaled(3))) {
        auto& resp = std::get<net::CommitResponse>(reply->payload);
        // Inherit the previous owner's scheduling queue (Alg. 4: the node
        // invoking the committed transaction receives the requester lists).
        scheduler_.absorb_queue(writes[i].oid, std::move(resp.queue));
      } else if (!calls[i]->closed()) {
        HYFLOW_WARN("commit hand-off of object ", writes[i].oid.value, " to node ",
                    comm_.self(), " unacknowledged; old owner copy stays locked");
      }
      // The commit stands either way: locks were held, reads validated and
      // ownership registered before publication began.
    }
    serve_waiters(writes[i].oid);
  }
}

// ---------------------------------------------------------------------------
// Owner side
// ---------------------------------------------------------------------------

void TfaRuntime::handle_request(const net::Message& msg) {
  if (std::holds_alternative<net::FindOwnerRequest>(msg.payload)) return on_find_owner(msg);
  if (std::holds_alternative<net::RegisterOwnerRequest>(msg.payload))
    return on_register_owner(msg);
  if (std::holds_alternative<net::ObjectRequest>(msg.payload)) return on_object_request(msg);
  if (std::holds_alternative<net::LockRequest>(msg.payload)) return on_lock(msg);
  if (std::holds_alternative<net::ValidateRequest>(msg.payload)) return on_validate(msg);
  if (std::holds_alternative<net::CommitRequest>(msg.payload)) return on_commit(msg);
  if (std::holds_alternative<net::AbortUnlock>(msg.payload)) return on_abort_unlock(msg);
  if (std::holds_alternative<net::NotInterested>(msg.payload)) return on_not_interested(msg);
  if (std::holds_alternative<net::GrantAck>(msg.payload)) return on_grant_ack(msg);
  HYFLOW_WARN("unhandled request payload: ", net::payload_name(msg.payload));
}

void TfaRuntime::handle_orphan_reply(const net::Message& msg) {
  // Only a granted object needs the NotInterested protocol: the requester's
  // backoff expired before the hand-off arrived (Alg. 4 else-branch).
  if (const auto* resp = std::get_if<net::ObjectResponse>(&msg.payload);
      resp && resp->object) {
    net::NotInterested ni;
    ni.oid = resp->oid;
    ni.txid = resp->txid;
    comm_.post(msg.from, ni);
  }
}

void TfaRuntime::on_find_owner(const net::Message& msg) {
  const auto& req = std::get<net::FindOwnerRequest>(msg.payload);
  const auto owner = directory_.lookup(req.oid);
  net::FindOwnerResponse resp;
  resp.oid = req.oid;
  resp.owner = owner.value_or(kInvalidNode);
  resp.known = owner.has_value();
  comm_.reply(msg, resp);
}

void TfaRuntime::on_register_owner(const net::Message& msg) {
  const auto& req = std::get<net::RegisterOwnerRequest>(msg.payload);
  net::RegisterOwnerResponse resp;
  resp.oid = req.oid;
  resp.ok = directory_.register_owner(req.oid, req.new_owner, req.version_clock);
  comm_.reply(msg, resp);
}

void TfaRuntime::on_object_request(const net::Message& msg) {
  const auto& req = std::get<net::ObjectRequest>(msg.payload);
  const SimTime now = sim_now();

  net::ObjectResponse resp;
  resp.oid = req.oid;
  resp.txid = req.txid;

  const auto slot = store_.get(req.oid);
  if (!slot) {
    resp.wrong_owner = true;
    comm_.reply(msg, resp);
    return;
  }

  contention_.record_request(req.oid, req.txid, now);

  if (!slot->locked_by.valid()) {
    // Free object: grant a copy immediately. Drop any stale queue entry
    // left by an earlier attempt of the same transaction.
    scheduler_.remove_requester(req.oid, req.txid);
    resp.object = slot->object;
    resp.version = slot->version;
    resp.owner_cl = contention_.local_cl(req.oid, now);
    comm_.reply(msg, resp);
    // A free object with parked requesters means a hand-off chain stalled
    // (its head aborted before committing this object); use the ambient
    // request to drain it rather than letting the queue wait out backoffs.
    serve_waiters(req.oid);
    return;
  }

  // The object is being validated: Retrieve_Request's scheduler decision.
  metrics_.add_conflict_seen();
  core::ConflictContext ctx;
  ctx.oid = req.oid;
  ctx.requester_node = msg.from;
  ctx.request_msg_id = msg.msg_id;
  ctx.request = req;
  ctx.local_cl = contention_.local_cl(req.oid, now);
  ctx.validator_remaining = validator_remaining(*slot, now);
  ctx.now = now;
  const auto decision = scheduler_.on_conflict(ctx);
  resp.backoff = decision.backoff;
  resp.enqueued = decision.action == core::ConflictAction::kEnqueue;
  comm_.reply(msg, resp);
}

void TfaRuntime::on_lock(const net::Message& msg) {
  const auto& req = std::get<net::LockRequest>(msg.payload);
  const auto result = store_.lock(req.oid, req.txid, req.expected_clock);
  net::LockResponse resp;
  resp.oid = req.oid;
  resp.granted = result == dsm::ObjectStore::LockResult::kGranted;
  resp.wrong_owner = result == dsm::ObjectStore::LockResult::kNotOwner;
  comm_.reply(msg, resp);
}

void TfaRuntime::on_validate(const net::Message& msg) {
  const auto& req = std::get<net::ValidateRequest>(msg.payload);
  const auto result = store_.validate(req.oid, req.expected_clock, kInvalidTxn);
  net::ValidateResponse resp;
  resp.oid = req.oid;
  resp.valid = result == dsm::ObjectStore::ValidateResult::kValid;
  resp.wrong_owner = result == dsm::ObjectStore::ValidateResult::kNotOwner;
  comm_.reply(msg, resp);
}

void TfaRuntime::on_commit(const net::Message& msg) {
  const auto& req = std::get<net::CommitRequest>(msg.payload);
  if (const auto view = store_.evict(req.oid, req.txid); view && view->locked_by.valid())
    record_hold(view->locked_at);
  net::CommitResponse resp;
  resp.oid = req.oid;
  // Hand the scheduling queue over to the new owner.
  resp.queue = scheduler_.extract_queue(req.oid);
  contention_.forget(req.oid);
  resolver_.note_owner(req.oid, req.new_owner);
  comm_.reply(msg, resp);
}

void TfaRuntime::on_abort_unlock(const net::Message& msg) {
  const auto& req = std::get<net::AbortUnlock>(msg.payload);
  if (auto slot = store_.get(req.oid); slot && slot->locked_by == req.txid)
    record_hold(slot->locked_at);
  store_.unlock(req.oid, req.txid);
  // Acknowledge so the releaser's retry loop stops (the reply to a legacy
  // one-way post is dropped as an uninteresting orphan).
  comm_.reply(msg, net::Ack{req.oid});
  // "If Tk aborts, the objects that Tk is using will be released, and the
  // other transactions will obtain the objects." (§III-A)
  serve_waiters(req.oid);
}

void TfaRuntime::on_not_interested(const net::Message& msg) {
  const auto& req = std::get<net::NotInterested>(msg.payload);
  metrics_.add_not_interested();
  {
    MutexLock lk(grants_mu_);
    grants_.erase({req.oid.value, req.txid.value});
  }
  scheduler_.remove_requester(req.oid, req.txid);
  serve_waiters(req.oid);
}

void TfaRuntime::on_grant_ack(const net::Message& msg) {
  const auto& req = std::get<net::GrantAck>(msg.payload);
  MutexLock lk(grants_mu_);
  grants_.erase({req.oid.value, req.txid.value});
}

void TfaRuntime::sweep_grants(SimTime now) {
  std::vector<PendingGrant> expired;
  {
    MutexLock lk(grants_mu_);
    for (auto it = grants_.begin(); it != grants_.end();) {
      if (it->second.deadline <= now) {
        expired.push_back(it->second);
        it = grants_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const PendingGrant& g : expired) {
    // The grant (or its ack) is presumed lost: forget the silent requester
    // and hand the object to the next one — a dropped Alg. 4 push must not
    // strand the rest of the queue.
    metrics_.add_grant_reforward();
    scheduler_.remove_requester(g.oid, g.req.txid);
    serve_waiters(g.oid);
  }
}

void TfaRuntime::serve_waiters(ObjectId oid) {
  const auto slot = store_.get(oid);
  if (!slot || slot->locked_by.valid()) return;
  const auto group = scheduler_.on_object_available(oid);
  if (group.empty()) return;
  metrics_.add_handoff_sent(group.size());
  for (const auto& q : group) send_grant(q, oid, slot->object, slot->version);
}

void TfaRuntime::record_hold(SimTime locked_at) {
  if (locked_at <= 0) return;
  const SimDuration held = sim_now() - locked_at;
  if (held <= 0) return;
  MutexLock lk(hold_mu_);
  hold_ewma_.add(static_cast<double>(held));
}

SimDuration TfaRuntime::expected_hold() const {
  MutexLock lk(hold_mu_);
  if (!hold_ewma_.seeded()) return cfg_.default_validation_hold;
  return static_cast<SimDuration>(hold_ewma_.value());
}

SimDuration TfaRuntime::validator_remaining(const dsm::SlotView& slot, SimTime now) const {
  const SimDuration held_so_far = slot.locked_at > 0 ? now - slot.locked_at : 0;
  return std::max<SimDuration>(expected_hold() - held_so_far, sim_us(100));
}

void TfaRuntime::send_grant(const net::QueuedRequester& to, ObjectId oid,
                            const ObjectSnapshot& obj, Version version) {
  net::ObjectResponse resp;
  resp.oid = oid;
  resp.txid = to.txid;
  resp.object = obj;
  resp.version = version;
  resp.owner_cl = contention_.local_cl(oid, sim_now());
  resp.handoff = true;  // requester must GrantAck or the grant is re-served
  {
    MutexLock lk(grants_mu_);
    grants_[{oid.value, to.txid.value}] =
        PendingGrant{oid, to, sim_now() + cfg_.grant_ack_timeout};
  }
  comm_.reply_routed(to.address, to.reply_msg_id, resp);
}

}  // namespace hyflow::tfa
