// Per-node TFA logical clock.
//
// TFA (Saad & Ravindran) replaces a global clock with one Lamport-style
// counter per node: every outgoing message carries the sender's clock,
// receivers advance to it, a transaction starts at its node's current
// clock, and a write commit pushes the clock past both the node's value and
// the transaction's (possibly forwarded) start — so each committed version
// gets a clock strictly greater than anything the committer observed.
#pragma once

#include <atomic>
#include <cstdint>

namespace hyflow::tfa {

class NodeClock {
 public:
  std::uint64_t read() const { return value_.load(std::memory_order_acquire); }

  // Lamport receive rule: clock = max(clock, observed).
  void advance_to(std::uint64_t observed) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < observed &&
           !value_.compare_exchange_weak(cur, observed, std::memory_order_acq_rel)) {
    }
  }

  // Commit rule: clock = max(clock, floor) + 1; returns the new value,
  // which becomes the committed version's clock.
  std::uint64_t increment_past(std::uint64_t floor) {
    std::uint64_t cur = value_.load(std::memory_order_relaxed);
    while (true) {
      const std::uint64_t next = (cur > floor ? cur : floor) + 1;
      if (value_.compare_exchange_weak(cur, next, std::memory_order_acq_rel)) return next;
    }
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

}  // namespace hyflow::tfa
