// Transaction stats table (§III-B).
//
// "To compute a backoff time, we use a transaction stats table that stores
//  the average historical validation time of a transaction. Each table
//  entry holds a bloom filter representation of the most current successful
//  commit times of write transactions. Whenever a transaction starts, an
//  expected commit time is picked up from the table."
//
// Entries are keyed by *transaction profile* (an id the workload assigns to
// each transaction shape, e.g. bank-transfer vs bank-balance). An entry
// keeps an EWMA of committed execution durations — the source of the
// expected-commit timestamp in every ETS — plus a Bloom filter of recent
// commit-duration buckets, aged out when it saturates.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "util/bloom_filter.hpp"
#include "util/mutex.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace hyflow::tfa {

class StatsTable {
 public:
  // `default_duration` seeds expectations before any commit of a profile
  // has been observed; clusters pass a few average round-trip times.
  explicit StatsTable(SimDuration default_duration = sim_ms(2),
                      SimDuration bucket = sim_us(100));

  SimDuration expected_duration(std::uint32_t profile) const;
  SimTime expected_commit(std::uint32_t profile, SimTime start) const {
    return start + expected_duration(profile);
  }

  void record_commit(std::uint32_t profile, SimDuration duration);

  // Bloom query: was a commit duration in this bucket observed recently?
  bool recently_observed(std::uint32_t profile, SimDuration duration) const;

  std::size_t profile_count() const;

 private:
  struct Entry {
    Ewma ewma{0.2};
    BloomFilter recent{1 << 10, 5};
  };

  SimDuration default_duration_;
  SimDuration bucket_;
  mutable Mutex mu_{LockRank::kStatsTable, "StatsTable::mu"};
  std::unordered_map<std::uint32_t, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace hyflow::tfa
