#include "tfa/stats_table.hpp"

#include "util/assert.hpp"

namespace hyflow::tfa {

StatsTable::StatsTable(SimDuration default_duration, SimDuration bucket)
    : default_duration_(default_duration), bucket_(bucket) {
  HYFLOW_ASSERT(default_duration > 0 && bucket > 0);
}

SimDuration StatsTable::expected_duration(std::uint32_t profile) const {
  MutexLock lk(mu_);
  auto it = entries_.find(profile);
  if (it == entries_.end() || !it->second.ewma.seeded()) return default_duration_;
  return static_cast<SimDuration>(it->second.ewma.value());
}

void StatsTable::record_commit(std::uint32_t profile, SimDuration duration) {
  if (duration <= 0) return;
  MutexLock lk(mu_);
  Entry& e = entries_[profile];
  e.ewma.add(static_cast<double>(duration));
  // Age the filter before it saturates into all-positives.
  if (e.recent.fill_ratio() > 0.5) e.recent.clear();
  e.recent.insert(static_cast<std::uint64_t>(duration / bucket_));
}

bool StatsTable::recently_observed(std::uint32_t profile, SimDuration duration) const {
  MutexLock lk(mu_);
  auto it = entries_.find(profile);
  if (it == entries_.end()) return false;
  return it->second.recent.maybe_contains(static_cast<std::uint64_t>(duration / bucket_));
}

std::size_t StatsTable::profile_count() const {
  MutexLock lk(mu_);
  return entries_.size();
}

}  // namespace hyflow::tfa
