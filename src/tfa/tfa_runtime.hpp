// Per-node TFA protocol engine — requester side (open / forward / commit)
// and owner side (the handlers behind every protocol message), plus the
// user-facing `Txn` handle and the retry loop.
//
// Requester side implements Alg. 2 (Open_Object): resolve the owner, send
// the request with myCL and ETS, and interpret the response — granted,
// wrong-owner (re-resolve), scheduler-abort, abort-with-stall (TFA+Backoff)
// or enqueued (RTS: block up to the backoff waiting for the object to be
// pushed). Every granted object runs TFA's transactional-forwarding rule:
// if the responder's clock is ahead of the transaction's start, the whole
// access-set is early-validated and the start clock forwarded.
//
// Owner side implements Alg. 3 (Retrieve_Request: immediate grant when the
// slot is free, scheduler decision when it is being validated) and the
// commit protocol whose validation window *creates* those conflicts: lock
// write set -> validate read set -> register ownership at the home
// directory -> transfer/install the new copies -> serve parked requesters
// with the fresh object (Alg. 4).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/contention.hpp"
#include "core/scheduler.hpp"
#include "dsm/coherence.hpp"
#include "dsm/directory.hpp"
#include "dsm/object_store.hpp"
#include "net/comm.hpp"
#include "runtime/metrics.hpp"
#include "tfa/abort.hpp"
#include "util/mutex.hpp"
#include "tfa/node_clock.hpp"
#include "tfa/stats_table.hpp"
#include "tfa/transaction.hpp"

namespace hyflow::tfa {

class TfaRuntime;

// User-facing transaction handle: a thin view over one level of the
// transaction tree. Workloads receive a Txn& and use read/write/nested.
class Txn {
 public:
  Txn(TfaRuntime& rt, Transaction& level) : rt_(rt), level_(level) {}

  template <typename T>
  const T& read(ObjectId oid) {
    return object_cast<T>(open(oid, net::AccessMode::kRead).effective());
  }

  template <typename T>
  T& write(ObjectId oid) {
    return object_cast<T>(open(oid, net::AccessMode::kWrite).mutable_copy());
  }

  // Runs `body` as a closed-nested transaction. The child retries alone on
  // its own validation failures (bounded); parent-level aborts propagate.
  //
  // `body` MUST be idempotent across retries: reset any captured
  // accumulator at the top of the body (or build locally and publish as the
  // last statement), because an aborted child attempt's partial writes to
  // captured locals are NOT rolled back — only transactional object state is.
  void nested(const std::function<void(Txn&)>& body);

  // Runs `body` as an OPEN-nested transaction (§I/II's third nesting
  // model): the child commits independently and its effects become globally
  // visible immediately — they are NOT part of the enclosing transaction.
  // If the enclosing root later aborts, `compensation` runs (as its own
  // transaction, newest-first) to undo the child at the abstract level.
  //
  // Open-nesting caveats (by design, as in the literature): the child reads
  // *committed* global state, not the parent's uncommitted writes; and the
  // compensation must be semantically inverse, not byte-inverse.
  void open_nested(const std::function<void(Txn&)>& body,
                   std::function<void(Txn&)> compensation = nullptr);

  // Workload-requested restart of the whole transaction.
  [[noreturn]] void retry() { throw AbortException{AbortCause::kUserRetry, 0}; }

  TxnId id() const { return level_.id(); }
  int depth() const { return level_.depth(); }
  TfaRuntime& runtime() { return rt_; }

 private:
  AccessEntry& open(ObjectId oid, net::AccessMode mode);

  TfaRuntime& rt_;
  Transaction& level_;
};

struct TfaConfig {
  int max_owner_retries = 8;    // wrong-owner re-resolutions per operation
  int max_child_retries = 16;   // child-local retries before parent abort
  SimDuration default_expected_duration = sim_ms(2);
  // Seed estimate for how long a commit holds its locks (refined online by
  // an EWMA of observed hold durations); feeds the scheduler's
  // validator-remaining input.
  SimDuration default_validation_hold = sim_ms(4);
  // An Alg. 4 grant the requester has not acknowledged within this window
  // is presumed lost: the owner forgets it and re-serves the queue.
  SimDuration grant_ack_timeout = sim_ms(12);
};

// Outcome of one root-transaction execution (including internal retries).
struct RunResult {
  bool committed = false;
  std::uint32_t attempts = 0;
  SimDuration latency = 0;  // first attempt start -> commit
};

class TfaRuntime {
 public:
  TfaRuntime(const TfaConfig& cfg, net::Comm& comm, dsm::ObjectStore& store,
             dsm::DirectoryShard& directory, dsm::OwnerResolver& resolver,
             core::Scheduler& scheduler, core::ContentionTracker& contention,
             StatsTable& stats, NodeClock& clock, runtime::NodeMetrics& metrics);

  // ---- requester side ----

  // Executes `body` as a root transaction, retrying on aborts until commit
  // or until `keep_going` returns false. Read-only roots validate at
  // commit; write roots run the full lock/validate/register protocol.
  RunResult run(std::uint32_t profile, const std::function<void(Txn&)>& body,
                const std::function<bool()>& keep_going = [] { return true; });

  // Alg. 2: open an object for `leaf`; throws AbortException.
  AccessEntry& open_object(Transaction& leaf, ObjectId oid, net::AccessMode mode);

  // Commit protocol for the root; throws AbortException on failure.
  void commit_root(Transaction& root);

  // ---- owner side (invoked by the node's message handler) ----
  void handle_request(const net::Message& msg);

  // A granted object arrived for an abandoned call: tell the sender we are
  // no longer interested so it forwards the object to the next requester.
  void handle_orphan_reply(const net::Message& msg);

  // Grant-loss recovery (Alg. 4 under an unreliable network): expires
  // unacknowledged grants and re-serves the object's queue. Driven
  // periodically by the cluster's maintenance thread.
  void sweep_grants(SimTime now);

  NodeClock& clock() { return clock_; }
  StatsTable& stats() { return stats_; }
  runtime::NodeMetrics& metrics() { return metrics_; }
  core::Scheduler& scheduler() { return scheduler_; }
  const TfaConfig& config() const { return cfg_; }

 private:
  friend class Txn;

  // Requester-side helpers.
  struct ValidateItem {
    ObjectId oid;
    const AccessEntry* entry;
    int depth;
    NodeId target;
    bool done = false;
    std::optional<net::RequestCall> call;
  };
  void forward_if_needed(Transaction& root, std::uint64_t observed_clock);
  void validate_chain(Transaction& root, bool reads_only);
  void validate_child(Transaction& child);
  void run_validation(std::vector<ValidateItem>& items);
  AccessEntry& admit_granted(Transaction& leaf, ObjectId oid, net::AccessMode mode,
                             const net::Message& reply);
  [[noreturn]] void abort_txn(AbortCause cause, int locus, ObjectId oid,
                              SimDuration stall = 0);

  // Commit-phase helpers.
  struct WriteTarget {
    ObjectId oid;
    AccessEntry* entry;
    NodeId owner;
  };
  std::vector<WriteTarget> resolve_write_set(Transaction& root);
  void lock_write_set(Transaction& root, std::vector<WriteTarget>& writes);
  void release_locks(const TxnId txid, const std::vector<WriteTarget>& writes,
                     std::size_t count);
  void publish_write_set(Transaction& root, std::vector<WriteTarget>& writes,
                         std::uint64_t commit_clock);

  // Owner-side handlers.
  void on_find_owner(const net::Message& msg);
  void on_register_owner(const net::Message& msg);
  void on_object_request(const net::Message& msg);
  void on_lock(const net::Message& msg);
  void on_validate(const net::Message& msg);
  void on_commit(const net::Message& msg);
  void on_abort_unlock(const net::Message& msg);
  void on_not_interested(const net::Message& msg);
  void on_grant_ack(const net::Message& msg);

  // Push the current copy of `oid` to the scheduler's head group.
  void serve_waiters(ObjectId oid);
  void send_grant(const net::QueuedRequester& to, ObjectId oid, const ObjectSnapshot& obj,
                  Version version);

  // Releases a remotely-held commit lock reliably (a lost release would
  // wedge the object at the owner forever).
  void release_remote_lock(ObjectId oid, TxnId txid, NodeId owner);

  // Lock-hold statistics: how long commits keep objects locked at this
  // node; the owner-side estimate behind ConflictContext::validator_remaining.
  void record_hold(SimTime locked_at);
  SimDuration expected_hold() const;
  SimDuration validator_remaining(const dsm::SlotView& slot, SimTime now) const;

  TfaConfig cfg_;
  net::Comm& comm_;
  dsm::ObjectStore& store_;
  dsm::DirectoryShard& directory_;
  dsm::OwnerResolver& resolver_;
  core::Scheduler& scheduler_;
  core::ContentionTracker& contention_;
  StatsTable& stats_;
  NodeClock& clock_;
  runtime::NodeMetrics& metrics_;
  std::atomic<std::uint64_t> txn_seq_{1};

  mutable Mutex hold_mu_{LockRank::kHoldStats, "TfaRuntime::hold_mu"};
  Ewma hold_ewma_ GUARDED_BY(hold_mu_){0.2};

  // Outstanding Alg. 4 grants awaiting their GrantAck, keyed (oid, txid).
  struct PendingGrant {
    ObjectId oid;
    net::QueuedRequester req;
    SimTime deadline = 0;
  };
  Mutex grants_mu_{LockRank::kGrantTable, "TfaRuntime::grants_mu"};
  std::map<std::pair<std::uint64_t, std::uint64_t>, PendingGrant> grants_
      GUARDED_BY(grants_mu_);
};

}  // namespace hyflow::tfa
