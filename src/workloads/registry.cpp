#include "workloads/registry.hpp"

#include "util/assert.hpp"
#include "workloads/bank.hpp"
#include "workloads/bst.hpp"
#include "workloads/dht.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/rbtree.hpp"
#include "workloads/vacation.hpp"

namespace hyflow::workloads {

std::unique_ptr<Workload> make_workload(const std::string& name, const WorkloadConfig& cfg) {
  if (name == "bank") return std::make_unique<BankWorkload>(cfg);
  if (name == "vacation") return std::make_unique<VacationWorkload>(cfg);
  if (name == "linked-list" || name == "ll") return std::make_unique<LinkedListWorkload>(cfg);
  if (name == "bst") return std::make_unique<BstWorkload>(cfg);
  if (name == "rb-tree" || name == "rbtree") return std::make_unique<RbTreeWorkload>(cfg);
  if (name == "dht") return std::make_unique<DhtWorkload>(cfg);
  HYFLOW_ASSERT_MSG(false, "unknown workload name");
  return nullptr;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {"vacation", "bank",    "linked-list",
                                                 "rb-tree",  "bst",     "dht"};
  return names;
}

}  // namespace hyflow::workloads
