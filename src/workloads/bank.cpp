#include "workloads/bank.hpp"

#include "runtime/cluster.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace hyflow::workloads {

void BankWorkload::setup(runtime::Cluster& cluster) {
  const std::uint64_t count =
      static_cast<std::uint64_t>(cluster.size()) * static_cast<std::uint64_t>(cfg_.objects_per_node);
  accounts_.clear();
  accounts_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ObjectId oid = make_oid(IdSpace::kBankAccount, i);
    cluster.create_object(std::make_unique<Account>(oid, initial_balance_),
                          static_cast<NodeId>(i % cluster.size()));
    accounts_.push_back(oid);
  }
}

Workload::Op BankWorkload::next_op(NodeId node, Xoshiro256& rng) {
  (void)node;
  Op op;
  if (rng.chance(cfg_.read_ratio)) {
    // Audit: read a handful of accounts, each inside a closed-nested child.
    std::vector<ObjectId> sample;
    const std::size_t k = std::min<std::size_t>(4, accounts_.size());
    for (std::size_t i = 0; i < k; ++i)
      sample.push_back(accounts_[rng.below(accounts_.size())]);
    op.profile = kProfileAudit;
    op.is_read = true;
    op.body = [this, sample](tfa::Txn& tx) {
      std::int64_t total = 0;
      // Audit pairs of accounts per closed-nested child, so a child's own
      // read set can go stale independently of the parent's.
      for (std::size_t i = 0; i < sample.size(); i += 2) {
        tx.nested([&](tfa::Txn& child) {
          // Accumulate locally and publish once: the child may retry after
          // a partial read, and the captured accumulator must not keep
          // contributions from aborted attempts.
          std::int64_t sub = child.read<Account>(sample[i]).balance();
          if (i + 1 < sample.size()) sub += child.read<Account>(sample[i + 1]).balance();
          do_local_work();
          total += sub;
        });
      }
      if (total == INT64_MIN) tx.retry();  // keep `total` observable
    };
    return op;
  }

  // Transfer: 1..max_nested/2 legs, each leg = nested withdraw + deposit.
  struct Leg {
    ObjectId from;
    ObjectId to;
    std::int64_t amount;
  };
  const int legs_n = 1 + static_cast<int>(rng.below(
                             std::max(1, cfg_.max_nested / 2)));
  std::vector<Leg> legs;
  for (int i = 0; i < legs_n; ++i) {
    const ObjectId a = accounts_[rng.below(accounts_.size())];
    ObjectId b = accounts_[rng.below(accounts_.size())];
    while (b == a && accounts_.size() > 1) b = accounts_[rng.below(accounts_.size())];
    legs.push_back(Leg{a, b, rng.range(1, 25)});
  }
  op.profile = kProfileTransfer;
  op.body = [this, legs](tfa::Txn& tx) {
    // One closed-nested child per leg; the child moves the money between
    // two accounts atomically and can retry alone if its own reads go
    // stale, without rolling back earlier committed legs.
    for (const Leg& leg : legs) {
      tx.nested([&](tfa::Txn& child) {
        child.write<Account>(leg.from).withdraw(leg.amount);
        child.write<Account>(leg.to).deposit(leg.amount);
        do_local_work();
      });
    }
  };
  return op;
}

bool BankWorkload::verify(runtime::Cluster& cluster) {
  std::int64_t total = 0;
  for (const ObjectId oid : accounts_) {
    const ObjectSnapshot snap = cluster.committed_copy(oid);
    if (!snap) {
      HYFLOW_ERROR("bank: account ", oid.value, " has no committed copy");
      return false;
    }
    total += object_cast<Account>(*snap).balance();
  }
  const std::int64_t expected =
      initial_balance_ * static_cast<std::int64_t>(accounts_.size());
  if (total != expected) {
    HYFLOW_ERROR("bank: conservation violated: total=", total, " expected=", expected);
    return false;
  }
  return true;
}

}  // namespace hyflow::workloads
