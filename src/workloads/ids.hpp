// ObjectId allocation shared by the workloads: a namespace byte keeps the
// id spaces of different workloads/objects disjoint, and +1 keeps ids
// non-zero (ObjectId{0} is the invalid sentinel).
#pragma once

#include "dsm/object_id.hpp"

namespace hyflow::workloads {

enum class IdSpace : std::uint8_t {
  kBankAccount = 1,
  kDhtBucket = 2,
  kListNode = 3,
  kBstNode = 4,
  kBstRoot = 5,
  kRbNode = 6,
  kRbRoot = 7,
  kVacationResource = 8,
  kVacationCustomer = 9,
};

constexpr ObjectId make_oid(IdSpace space, std::uint64_t index) {
  return ObjectId{(static_cast<std::uint64_t>(space) << 48) | (index + 1)};
}

}  // namespace hyflow::workloads
