#include "workloads/workload.hpp"

#include <thread>

namespace hyflow::workloads {

void Workload::do_local_work() const {
  if (cfg_.local_work > 0) std::this_thread::sleep_for(to_chrono(cfg_.local_work));
}

}  // namespace hyflow::workloads
