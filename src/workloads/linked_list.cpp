#include "workloads/linked_list.hpp"

#include "runtime/cluster.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace hyflow::workloads {

void LinkedListWorkload::setup(runtime::Cluster& cluster) {
  const std::size_t total =
      static_cast<std::size_t>(cluster.size()) * static_cast<std::size_t>(cfg_.objects_per_node);
  const std::size_t universe = std::min(kUniverseCap, std::max<std::size_t>(total, 8)) ;

  slots_.clear();
  slots_.reserve(universe);
  head_ = make_oid(IdSpace::kListNode, universe);

  // Initially link the even keys: head -> 0 -> 2 -> 4 -> ...
  auto head = std::make_unique<ListNode>(head_, -1);
  std::vector<std::unique_ptr<ListNode>> nodes;
  for (std::size_t i = 0; i < universe; ++i) {
    const ObjectId oid = make_oid(IdSpace::kListNode, i);
    slots_.push_back(oid);
    nodes.push_back(std::make_unique<ListNode>(oid, static_cast<std::int64_t>(i)));
  }
  ListNode* prev = head.get();
  for (std::size_t i = 0; i < universe; i += 2) {
    prev->set_next(slots_[i]);
    prev = nodes[i].get();
  }

  cluster.create_object(std::move(head), 0);
  for (std::size_t i = 0; i < universe; ++i)
    cluster.create_object(std::move(nodes[i]), static_cast<NodeId>(i % cluster.size()));
}

bool LinkedListWorkload::contains(tfa::Txn& tx, std::int64_t key) const {
  ObjectId cur = tx.read<ListNode>(head_).next();
  while (cur.valid()) {
    const ListNode& node = tx.read<ListNode>(cur);
    if (node.key() == key) return true;
    if (node.key() > key) return false;
    cur = node.next();
  }
  return false;
}

void LinkedListWorkload::add(tfa::Txn& tx, std::int64_t key) const {
  ObjectId prev = head_;
  ObjectId cur = tx.read<ListNode>(head_).next();
  while (cur.valid()) {
    const ListNode& node = tx.read<ListNode>(cur);
    if (node.key() == key) return;  // already present
    if (node.key() > key) break;
    prev = cur;
    cur = node.next();
  }
  const ObjectId slot = slots_[static_cast<std::size_t>(key)];
  tx.write<ListNode>(slot).set_next(cur);
  tx.write<ListNode>(prev).set_next(slot);
}

void LinkedListWorkload::remove(tfa::Txn& tx, std::int64_t key) const {
  ObjectId prev = head_;
  ObjectId cur = tx.read<ListNode>(head_).next();
  while (cur.valid()) {
    const ListNode& node = tx.read<ListNode>(cur);
    if (node.key() > key) return;  // absent
    if (node.key() == key) {
      tx.write<ListNode>(prev).set_next(node.next());
      return;
    }
    prev = cur;
    cur = node.next();
  }
}

Workload::Op LinkedListWorkload::next_op(NodeId node, Xoshiro256& rng) {
  (void)node;
  const int ops_n = 1 + static_cast<int>(rng.below(std::max(1, cfg_.max_nested)));
  std::vector<std::int64_t> keys;
  for (int i = 0; i < ops_n; ++i)
    keys.push_back(static_cast<std::int64_t>(rng.below(slots_.size())));

  Op op;
  if (rng.chance(cfg_.read_ratio)) {
    op.profile = kProfileContains;
    op.is_read = true;
    op.body = [this, keys](tfa::Txn& tx) {
      int found = 0;
      for (const std::int64_t key : keys) {
        tx.nested([&](tfa::Txn& child) {
          found += contains(child, key) ? 1 : 0;
          do_local_work();
        });
      }
      if (found < 0) tx.retry();  // keep `found` observable
    };
    return op;
  }

  std::vector<bool> is_add;
  for (int i = 0; i < ops_n; ++i) is_add.push_back(rng.chance(0.5));
  op.profile = kProfileUpdate;
  op.body = [this, keys, is_add](tfa::Txn& tx) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      tx.nested([&](tfa::Txn& child) {
        if (is_add[i]) {
          add(child, keys[i]);
        } else {
          remove(child, keys[i]);
        }
        do_local_work();
      });
    }
  };
  return op;
}

bool LinkedListWorkload::verify(runtime::Cluster& cluster) {
  const ObjectSnapshot head = cluster.committed_copy(head_);
  if (!head) return false;
  std::int64_t last_key = -1;
  ObjectId cur = object_cast<ListNode>(*head).next();
  std::size_t hops = 0;
  while (cur.valid()) {
    if (++hops > slots_.size() + 1) {
      HYFLOW_ERROR("linked-list: cycle detected");
      return false;
    }
    const ObjectSnapshot snap = cluster.committed_copy(cur);
    if (!snap) {
      HYFLOW_ERROR("linked-list: missing committed copy for node ", cur.value);
      return false;
    }
    const auto& node = object_cast<ListNode>(*snap);
    if (node.key() <= last_key) {
      HYFLOW_ERROR("linked-list: order violated at key ", node.key());
      return false;
    }
    if (slots_[static_cast<std::size_t>(node.key())] != cur) {
      HYFLOW_ERROR("linked-list: slot/key identity violated");
      return false;
    }
    last_key = node.key();
    cur = node.next();
  }
  return true;
}

}  // namespace hyflow::workloads
