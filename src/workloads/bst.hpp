// Distributed binary search tree (BST microbenchmark).
//
// One shared object per key slot (key i <-> slot i, pre-created) plus a
// root-pointer object. Removal is lazy (a `deleted` mark), so the structure
// only ever re-links existing objects — standard for STM data-structure
// benchmarks and faithful to the paper's access pattern: traversals read a
// root-to-leaf chain of objects, updates write one or two of them.
#pragma once

#include <vector>

#include "workloads/ids.hpp"
#include "workloads/workload.hpp"

namespace hyflow::workloads {

class BstNode : public TxObject<BstNode> {
 public:
  BstNode(ObjectId id, std::int64_t key) : TxObject(id), key_(key) {}

  std::int64_t key() const { return key_; }
  ObjectId left() const { return left_; }
  ObjectId right() const { return right_; }
  bool deleted() const { return deleted_; }

  void set_left(ObjectId n) { left_ = n; }
  void set_right(ObjectId n) { right_ = n; }
  void set_deleted(bool d) { deleted_ = d; }
  void reset_links() { left_ = right_ = kInvalidObject; deleted_ = false; }

 private:
  std::int64_t key_;  // immutable slot identity
  ObjectId left_ = kInvalidObject;
  ObjectId right_ = kInvalidObject;
  bool deleted_ = false;
};

class BstRoot : public TxObject<BstRoot> {
 public:
  explicit BstRoot(ObjectId id) : TxObject(id) {}
  ObjectId root() const { return root_; }
  void set_root(ObjectId n) { root_ = n; }

 private:
  ObjectId root_ = kInvalidObject;
};

class BstWorkload : public Workload {
 public:
  static constexpr std::uint32_t kProfileContains = 40;
  static constexpr std::uint32_t kProfileUpdate = 41;
  static constexpr std::size_t kUniverseCap = 64;

  explicit BstWorkload(const WorkloadConfig& cfg) : Workload(cfg) {}

  std::string name() const override { return "bst"; }
  void setup(runtime::Cluster& cluster) override;
  Op next_op(NodeId node, Xoshiro256& rng) override;
  bool verify(runtime::Cluster& cluster) override;

  std::size_t universe() const { return slots_.size(); }

  // Transactional set operations; public so applications and oracle tests
  // can drive the tree directly.
  bool contains(tfa::Txn& tx, std::int64_t key) const;
  void insert(tfa::Txn& tx, std::int64_t key) const;
  void remove(tfa::Txn& tx, std::int64_t key) const;

 private:

  bool verify_subtree(runtime::Cluster& cluster, ObjectId node, std::int64_t lo,
                      std::int64_t hi, std::size_t& visited) const;

  std::vector<ObjectId> slots_;
  ObjectId root_obj_;
};

}  // namespace hyflow::workloads
