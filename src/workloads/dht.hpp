// DHT microbenchmark: a distributed hash table whose buckets are the shared
// objects. Keys hash statically to buckets, so transactions touch few
// objects and execute quickly — the paper's shortest-transaction benchmark
// (throughput is highest here, Figs. 4f/5f).
//
// A put parent wraps 1..max_nested nested single-bucket puts; gets mirror
// that with reads.
#pragma once

#include <map>
#include <vector>

#include "workloads/ids.hpp"
#include "workloads/workload.hpp"

namespace hyflow::workloads {

class Bucket : public TxObject<Bucket> {
 public:
  explicit Bucket(ObjectId id, std::uint64_t index) : TxObject(id), index_(index) {}

  std::uint64_t index() const { return index_; }

  void put(std::uint64_t key, std::uint64_t value) { entries_[key] = value; }
  bool erase(std::uint64_t key) { return entries_.erase(key) > 0; }
  const std::uint64_t* get(std::uint64_t key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }
  const std::map<std::uint64_t, std::uint64_t>& entries() const { return entries_; }

  std::size_t wire_size() const override { return 32 + entries_.size() * 16; }

 private:
  std::uint64_t index_;
  std::map<std::uint64_t, std::uint64_t> entries_;
};

class DhtWorkload : public Workload {
 public:
  static constexpr std::uint32_t kProfileGet = 20;
  static constexpr std::uint32_t kProfilePut = 21;

  explicit DhtWorkload(const WorkloadConfig& cfg) : Workload(cfg) {}

  std::string name() const override { return "dht"; }
  void setup(runtime::Cluster& cluster) override;
  Op next_op(NodeId node, Xoshiro256& rng) override;
  bool verify(runtime::Cluster& cluster) override;

  std::uint64_t bucket_index_of(std::uint64_t key) const {
    return mix64(key) % buckets_.size();
  }

 private:
  std::vector<ObjectId> buckets_;
  std::uint64_t key_space_ = 0;
};

}  // namespace hyflow::workloads
