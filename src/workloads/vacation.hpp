// Vacation — distributed re-implementation of the STAMP travel-reservation
// benchmark (§IV-A). The system keeps three kinds of resources (cars,
// flights, rooms) in per-node table shards plus per-node customer shards.
//
// Transactions (heavyweight — the paper notes Vacation and Bank "take
// longer execution time than other benchmarks"):
//   * make_reservation (write): for each requested resource, a nested child
//     queries candidate shards for the best available offer and a second
//     nested child books it — incrementing `used` on the resource shard and
//     appending to the customer record atomically.
//   * delete_customer (write): nested children release every reservation,
//     then erase the customer record.
//   * update_tables (write): nested children add capacity / change prices.
//   * query (read): nested children scan shards for the cheapest offer.
//
// Invariant: for every resource item, `used` equals the number of customer
// reservations referencing it, and 0 <= used <= total.
#pragma once

#include <map>
#include <vector>

#include "workloads/ids.hpp"
#include "workloads/workload.hpp"

namespace hyflow::workloads {

enum class ResourceKind : std::uint8_t { kCar = 0, kFlight = 1, kRoom = 2 };
constexpr int kResourceKinds = 3;

struct ResourceItem {
  std::int32_t total = 0;
  std::int32_t used = 0;
  std::int32_t price = 0;
};

class ResourceShard : public TxObject<ResourceShard> {
 public:
  ResourceShard(ObjectId id, ResourceKind kind) : TxObject(id), kind_(kind) {}

  ResourceKind kind() const { return kind_; }
  std::map<std::uint64_t, ResourceItem>& items() { return items_; }
  const std::map<std::uint64_t, ResourceItem>& items() const { return items_; }

  std::size_t wire_size() const override { return 32 + items_.size() * 24; }

 private:
  ResourceKind kind_;
  std::map<std::uint64_t, ResourceItem> items_;
};

struct Reservation {
  ResourceKind kind;
  std::uint64_t resource;

  bool operator==(const Reservation&) const = default;
};

class CustomerShard : public TxObject<CustomerShard> {
 public:
  explicit CustomerShard(ObjectId id) : TxObject(id) {}

  std::map<std::uint64_t, std::vector<Reservation>>& customers() { return customers_; }
  const std::map<std::uint64_t, std::vector<Reservation>>& customers() const {
    return customers_;
  }

  std::size_t wire_size() const override { return 32 + customers_.size() * 48; }

 private:
  std::map<std::uint64_t, std::vector<Reservation>> customers_;
};

class VacationWorkload : public Workload {
 public:
  static constexpr std::uint32_t kProfileQuery = 60;
  static constexpr std::uint32_t kProfileReserve = 61;
  static constexpr std::uint32_t kProfileDelete = 62;
  static constexpr std::uint32_t kProfileUpdate = 63;

  explicit VacationWorkload(const WorkloadConfig& cfg) : Workload(cfg) {}

  std::string name() const override { return "vacation"; }
  void setup(runtime::Cluster& cluster) override;
  Op next_op(NodeId node, Xoshiro256& rng) override;
  bool verify(runtime::Cluster& cluster) override;

 private:
  ObjectId resource_shard_of(ResourceKind kind, std::uint64_t resource) const;
  ObjectId customer_shard_of(std::uint64_t customer) const;

  Op make_reservation_op(Xoshiro256& rng);
  Op delete_customer_op(Xoshiro256& rng);
  Op update_tables_op(Xoshiro256& rng);
  Op query_op(Xoshiro256& rng);

  std::vector<ObjectId> resource_shards_[kResourceKinds];
  std::vector<ObjectId> customer_shards_;
  std::uint64_t resources_per_kind_ = 0;
  std::uint64_t customer_count_ = 0;
};

}  // namespace hyflow::workloads
