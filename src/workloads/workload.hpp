// Benchmark-application interface.
//
// A workload (1) creates and places its shared objects on the cluster, (2)
// generates transaction operations for node-local workers — each op is a
// profile id (feeding the stats table) plus a body run under a root
// transaction — and (3) audits its own invariants after quiesce.
//
// The paper's contention knob (§IV-A): "low contention" = 90% read
// transactions, "high contention" = 10%; `read_ratio` expresses that. A
// read transaction contains only reads; a write transaction both reads and
// writes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "tfa/tfa_runtime.hpp"
#include "util/rng.hpp"

namespace hyflow::runtime {
class Cluster;
}

namespace hyflow::workloads {

struct WorkloadConfig {
  double read_ratio = 0.9;      // fraction of read-only transactions
  int objects_per_node = 8;     // paper: "five to ten shared objects ... at each node"
  int max_nested = 4;           // nested transactions per parent (randomised 1..max)
  // Local execution time per closed-nested child (the paper's gamma_i):
  // work a parent abort throws away and an RTS enqueue preserves. Vacation
  // and Bank — the paper's "longer execution time" benchmarks — scale it up.
  SimDuration local_work = sim_us(200);
  std::uint64_t seed = 7;
};

class Workload {
 public:
  struct Op {
    std::uint32_t profile = 0;
    std::function<void(tfa::Txn&)> body;
    bool is_read = false;
  };

  explicit Workload(const WorkloadConfig& cfg) : cfg_(cfg) {}
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Create and place shared objects. Called once, after cluster start and
  // before any worker runs.
  virtual void setup(runtime::Cluster& cluster) = 0;

  // Produce the next operation for a worker on `node`. Must be thread-safe
  // (called concurrently from every worker; all mutable state goes through
  // the caller's rng or the transaction itself).
  virtual Op next_op(NodeId node, Xoshiro256& rng) = 0;

  // Post-run integrity audit (cluster quiesced). Returns true when the
  // workload's invariants hold.
  virtual bool verify(runtime::Cluster& cluster) = 0;

  const WorkloadConfig& config() const { return cfg_; }

 protected:
  // Simulated local computation inside a nested child (performed after its
  // object opens, before the child commits into the parent).
  void do_local_work() const;

  WorkloadConfig cfg_;
};

}  // namespace hyflow::workloads
