#include "workloads/vacation.hpp"

#include <unordered_map>

#include "runtime/cluster.hpp"
#include "util/log.hpp"

namespace hyflow::workloads {

void VacationWorkload::setup(runtime::Cluster& cluster) {
  const std::uint32_t n = cluster.size();
  // Per node: ~1/3 customer shards, ~2/3 resource shards cycling through
  // the three kinds — keeps the paper's 5-10 objects/node.
  const int customer_shards_per_node = std::max(1, cfg_.objects_per_node / 3);
  const int resource_shards_per_node =
      std::max(1, cfg_.objects_per_node - customer_shards_per_node);

  for (auto& v : resource_shards_) v.clear();
  customer_shards_.clear();

  std::uint64_t shard_index = 0;
  std::uint64_t customer_shard_index = 0;
  for (NodeId node = 0; node < n; ++node) {
    for (int s = 0; s < resource_shards_per_node; ++s) {
      const auto kind = static_cast<ResourceKind>(shard_index % kResourceKinds);
      const ObjectId oid = make_oid(IdSpace::kVacationResource, shard_index);
      auto shard = std::make_unique<ResourceShard>(oid, kind);
      cluster.create_object(std::move(shard), node);
      resource_shards_[static_cast<int>(kind)].push_back(oid);
      ++shard_index;
    }
    for (int s = 0; s < customer_shards_per_node; ++s) {
      const ObjectId coid = make_oid(IdSpace::kVacationCustomer, customer_shard_index++);
      cluster.create_object(std::make_unique<CustomerShard>(coid), node);
      customer_shards_.push_back(coid);
    }
  }

  // Populate resources: a few items per shard, ample capacity.
  resources_per_kind_ = 0;
  for (int k = 0; k < kResourceKinds; ++k)
    resources_per_kind_ = std::max<std::uint64_t>(
        resources_per_kind_, resource_shards_[k].size() * 4);
  customer_count_ = static_cast<std::uint64_t>(n) * 8;

  Xoshiro256 rng(cfg_.seed ^ 0xbadc0ffeull);
  for (int k = 0; k < kResourceKinds; ++k) {
    for (std::uint64_t r = 0; r < resources_per_kind_; ++r) {
      const ObjectId oid = resource_shard_of(static_cast<ResourceKind>(k), r);
      // Direct mutation during setup: single-threaded, before any worker.
      for (NodeId node = 0; node < n; ++node) {
        if (auto slot = cluster.node(node).store().get(oid)) {
          auto fresh = slot->object->clone();
          auto& shard = object_cast<ResourceShard>(*fresh);
          shard.items()[r] =
              ResourceItem{static_cast<std::int32_t>(64 + rng.below(64)), 0,
                           static_cast<std::int32_t>(50 + rng.below(450))};
          cluster.node(node).store().install(ObjectSnapshot{std::move(fresh)},
                                             kInitialVersion);
          break;
        }
      }
    }
  }
}

ObjectId VacationWorkload::resource_shard_of(ResourceKind kind, std::uint64_t resource) const {
  const auto& shards = resource_shards_[static_cast<int>(kind)];
  return shards[mix64(resource * 3 + static_cast<int>(kind)) % shards.size()];
}

ObjectId VacationWorkload::customer_shard_of(std::uint64_t customer) const {
  return customer_shards_[mix64(customer) % customer_shards_.size()];
}

Workload::Op VacationWorkload::next_op(NodeId node, Xoshiro256& rng) {
  (void)node;
  if (rng.chance(cfg_.read_ratio)) return query_op(rng);
  const double r = rng.uniform();
  if (r < 0.8) return make_reservation_op(rng);
  if (r < 0.9) return delete_customer_op(rng);
  return update_tables_op(rng);
}

Workload::Op VacationWorkload::query_op(Xoshiro256& rng) {
  struct Probe {
    ResourceKind kind;
    std::uint64_t resource;
  };
  const int probes_n = 1 + static_cast<int>(rng.below(std::max(1, cfg_.max_nested)));
  std::vector<Probe> probes;
  for (int i = 0; i < probes_n; ++i)
    probes.push_back(Probe{static_cast<ResourceKind>(rng.below(kResourceKinds)),
                           rng.below(resources_per_kind_)});

  Op op;
  op.profile = kProfileQuery;
  op.is_read = true;
  op.body = [this, probes](tfa::Txn& tx) {
    std::int64_t best = 0;
    for (const Probe& p : probes) {
      tx.nested([&](tfa::Txn& child) {
        const auto& shard =
            child.read<ResourceShard>(resource_shard_of(p.kind, p.resource));
        auto it = shard.items().find(p.resource);
        if (it != shard.items().end() && it->second.used < it->second.total)
          best += it->second.price;
        do_local_work();
      });
    }
    if (best < 0) tx.retry();
  };
  return op;
}

Workload::Op VacationWorkload::make_reservation_op(Xoshiro256& rng) {
  struct Pick {
    ResourceKind kind;
    std::uint64_t resource;
  };
  const std::uint64_t customer = rng.below(customer_count_);
  const int picks_n = 1 + static_cast<int>(rng.below(std::max(1, cfg_.max_nested)));
  std::vector<Pick> picks;
  for (int i = 0; i < picks_n; ++i)
    picks.push_back(Pick{static_cast<ResourceKind>(rng.below(kResourceKinds)),
                         rng.below(resources_per_kind_)});

  Op op;
  op.profile = kProfileReserve;
  op.body = [this, customer, picks](tfa::Txn& tx) {
    const ObjectId cshard = customer_shard_of(customer);
    for (const Pick& p : picks) {
      const ObjectId rshard = resource_shard_of(p.kind, p.resource);
      // One nested child books the resource and records the reservation
      // atomically — the paper's "try an alternate device" pattern would
      // retry this child alone on failure.
      tx.nested([&](tfa::Txn& child) {
        auto& shard = child.write<ResourceShard>(rshard);
        auto it = shard.items().find(p.resource);
        if (it == shard.items().end() || it->second.used >= it->second.total)
          return;  // sold out: skip this pick
        it->second.used += 1;
        child.write<CustomerShard>(cshard).customers()[customer].push_back(
            Reservation{p.kind, p.resource});
        do_local_work();
      });
    }
  };
  return op;
}

Workload::Op VacationWorkload::delete_customer_op(Xoshiro256& rng) {
  const std::uint64_t customer = rng.below(customer_count_);
  Op op;
  op.profile = kProfileDelete;
  op.body = [this, customer](tfa::Txn& tx) {
    const ObjectId cshard = customer_shard_of(customer);
    // Snapshot the reservations, release each in its own nested child, then
    // erase the record.
    std::vector<Reservation> reservations;
    tx.nested([&](tfa::Txn& child) {
      // Child bodies must be idempotent across child retries: reset the
      // captured accumulator first, or a stale value from an aborted
      // attempt would leak into the parent (double-release, used < 0).
      reservations.clear();
      const auto& shard = child.read<CustomerShard>(cshard);
      auto it = shard.customers().find(customer);
      if (it != shard.customers().end()) reservations = it->second;
      do_local_work();
    });
    for (const Reservation& r : reservations) {
      tx.nested([&](tfa::Txn& child) {
        auto& shard = child.write<ResourceShard>(resource_shard_of(r.kind, r.resource));
        auto it = shard.items().find(r.resource);
        if (it != shard.items().end()) it->second.used -= 1;
        do_local_work();
      });
    }
    tx.nested([&](tfa::Txn& child) {
      child.write<CustomerShard>(cshard).customers().erase(customer);
    });
  };
  return op;
}

Workload::Op VacationWorkload::update_tables_op(Xoshiro256& rng) {
  struct Update {
    ResourceKind kind;
    std::uint64_t resource;
    std::int32_t price;
    std::int32_t extra_capacity;
  };
  const int updates_n = 1 + static_cast<int>(rng.below(std::max(1, cfg_.max_nested)));
  std::vector<Update> updates;
  for (int i = 0; i < updates_n; ++i)
    updates.push_back(Update{static_cast<ResourceKind>(rng.below(kResourceKinds)),
                             rng.below(resources_per_kind_),
                             static_cast<std::int32_t>(50 + rng.below(450)),
                             static_cast<std::int32_t>(rng.below(4))});

  Op op;
  op.profile = kProfileUpdate;
  op.body = [this, updates](tfa::Txn& tx) {
    for (const Update& u : updates) {
      tx.nested([&](tfa::Txn& child) {
        auto& shard = child.write<ResourceShard>(resource_shard_of(u.kind, u.resource));
        auto it = shard.items().find(u.resource);
        if (it == shard.items().end()) return;
        it->second.price = u.price;
        it->second.total += u.extra_capacity;
        do_local_work();
      });
    }
  };
  return op;
}

bool VacationWorkload::verify(runtime::Cluster& cluster) {
  // Count reservations per (kind, resource) across all customer shards.
  std::unordered_map<std::uint64_t, std::int64_t> reserved;  // key = kind*2^56 | resource
  const auto key_of = [](ResourceKind kind, std::uint64_t resource) {
    return (static_cast<std::uint64_t>(kind) << 56) | resource;
  };
  for (const ObjectId cshard : customer_shards_) {
    const ObjectSnapshot snap = cluster.committed_copy(cshard);
    if (!snap) return false;
    for (const auto& [customer, reservations] :
         object_cast<CustomerShard>(*snap).customers()) {
      for (const Reservation& r : reservations) reserved[key_of(r.kind, r.resource)] += 1;
    }
  }

  for (int k = 0; k < kResourceKinds; ++k) {
    for (const ObjectId rshard : resource_shards_[k]) {
      const ObjectSnapshot snap = cluster.committed_copy(rshard);
      if (!snap) return false;
      for (const auto& [resource, item] : object_cast<ResourceShard>(*snap).items()) {
        if (item.used < 0 || item.used > item.total) {
          HYFLOW_ERROR("vacation: capacity violated for resource ", resource, " used=",
                       item.used, " total=", item.total);
          return false;
        }
        const auto expected = reserved[key_of(static_cast<ResourceKind>(k), resource)];
        if (item.used != expected) {
          HYFLOW_ERROR("vacation: used/reservation mismatch for resource ", resource,
                       ": used=", item.used, " reservations=", expected);
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace hyflow::workloads
