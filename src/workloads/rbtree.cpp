#include "workloads/rbtree.hpp"

#include "runtime/cluster.hpp"
#include "util/log.hpp"

namespace hyflow::workloads {

void RbTreeWorkload::setup(runtime::Cluster& cluster) {
  const std::size_t total =
      static_cast<std::size_t>(cluster.size()) * static_cast<std::size_t>(cfg_.objects_per_node);
  const std::size_t universe = std::min(kUniverseCap, std::max<std::size_t>(total, 8));

  slots_.clear();
  slots_.reserve(universe);
  std::vector<std::unique_ptr<RbNode>> nodes;
  for (std::size_t i = 0; i < universe; ++i) {
    const ObjectId oid = make_oid(IdSpace::kRbNode, i);
    slots_.push_back(oid);
    nodes.push_back(std::make_unique<RbNode>(oid, static_cast<std::int64_t>(i)));
  }

  // Initial tree: balanced over the even keys, black except the deepest
  // level, which is red — a height-balanced tree has leaves on two adjacent
  // levels, so an all-black colouring would violate the equal-black-height
  // rule; colouring exactly the deepest level red restores it.
  int max_depth = 0;
  std::function<ObjectId(std::size_t, std::size_t, ObjectId, int)> build =
      [&](std::size_t lo, std::size_t hi, ObjectId parent, int depth) -> ObjectId {
    if (lo >= hi) return kInvalidObject;
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::size_t key = mid * 2;
    if (key >= universe) return kInvalidObject;
    max_depth = std::max(max_depth, depth);
    RbNode* n = nodes[key].get();
    n->set_red(false);
    n->set_parent(parent);
    n->set_left(build(lo, mid, slots_[key], depth + 1));
    n->set_right(build(mid + 1, hi, slots_[key], depth + 1));
    return slots_[key];
  };
  std::function<void(ObjectId, int)> colour = [&](ObjectId node, int depth) {
    if (!node.valid()) return;
    RbNode* cur = nodes[static_cast<std::size_t>((node.value & 0xffffffffffffull) - 1)].get();
    if (depth == max_depth) cur->set_red(true);
    colour(cur->left(), depth + 1);
    colour(cur->right(), depth + 1);
  };

  root_obj_ = make_oid(IdSpace::kRbRoot, 0);
  auto root = std::make_unique<RbRoot>(root_obj_);
  root->set_root(build(0, (universe + 1) / 2, kInvalidObject, 0));
  colour(root->root(), 0);

  cluster.create_object(std::move(root), 0);
  for (std::size_t i = 0; i < universe; ++i)
    cluster.create_object(std::move(nodes[i]), static_cast<NodeId>(i % cluster.size()));
}

bool RbTreeWorkload::contains(tfa::Txn& tx, std::int64_t key) const {
  ObjectId cur = tx.read<RbRoot>(root_obj_).root();
  while (cur.valid()) {
    const RbNode& node = tx.read<RbNode>(cur);
    if (node.key() == key) return !node.deleted();
    cur = key < node.key() ? node.left() : node.right();
  }
  return false;
}

void RbTreeWorkload::remove(tfa::Txn& tx, std::int64_t key) const {
  ObjectId cur = tx.read<RbRoot>(root_obj_).root();
  while (cur.valid()) {
    const RbNode& node = tx.read<RbNode>(cur);
    if (node.key() == key) {
      if (!node.deleted()) tx.write<RbNode>(cur).set_deleted(true);
      return;
    }
    cur = key < node.key() ? node.left() : node.right();
  }
}

void RbTreeWorkload::rotate_left(tfa::Txn& tx, ObjectId x) const {
  const ObjectId y = tx.read<RbNode>(x).right();
  const ObjectId y_left = tx.read<RbNode>(y).left();
  const ObjectId x_parent = tx.read<RbNode>(x).parent();

  tx.write<RbNode>(x).set_right(y_left);
  if (y_left.valid()) tx.write<RbNode>(y_left).set_parent(x);
  tx.write<RbNode>(y).set_parent(x_parent);
  if (!x_parent.valid()) {
    tx.write<RbRoot>(root_obj_).set_root(y);
  } else if (tx.read<RbNode>(x_parent).left() == x) {
    tx.write<RbNode>(x_parent).set_left(y);
  } else {
    tx.write<RbNode>(x_parent).set_right(y);
  }
  tx.write<RbNode>(y).set_left(x);
  tx.write<RbNode>(x).set_parent(y);
}

void RbTreeWorkload::rotate_right(tfa::Txn& tx, ObjectId x) const {
  const ObjectId y = tx.read<RbNode>(x).left();
  const ObjectId y_right = tx.read<RbNode>(y).right();
  const ObjectId x_parent = tx.read<RbNode>(x).parent();

  tx.write<RbNode>(x).set_left(y_right);
  if (y_right.valid()) tx.write<RbNode>(y_right).set_parent(x);
  tx.write<RbNode>(y).set_parent(x_parent);
  if (!x_parent.valid()) {
    tx.write<RbRoot>(root_obj_).set_root(y);
  } else if (tx.read<RbNode>(x_parent).left() == x) {
    tx.write<RbNode>(x_parent).set_left(y);
  } else {
    tx.write<RbNode>(x_parent).set_right(y);
  }
  tx.write<RbNode>(y).set_right(x);
  tx.write<RbNode>(x).set_parent(y);
}

void RbTreeWorkload::fixup(tfa::Txn& tx, ObjectId z) const {
  while (true) {
    const ObjectId p = tx.read<RbNode>(z).parent();
    if (!p.valid() || !tx.read<RbNode>(p).red()) break;
    const ObjectId g = tx.read<RbNode>(p).parent();
    if (!g.valid()) break;  // parent is the root; handled after the loop
    const bool p_is_left = tx.read<RbNode>(g).left() == p;
    const ObjectId u = p_is_left ? tx.read<RbNode>(g).right() : tx.read<RbNode>(g).left();

    if (u.valid() && tx.read<RbNode>(u).red()) {
      // Case 1: red uncle — recolour and ascend.
      tx.write<RbNode>(p).set_red(false);
      tx.write<RbNode>(u).set_red(false);
      tx.write<RbNode>(g).set_red(true);
      z = g;
      continue;
    }
    if (p_is_left) {
      if (tx.read<RbNode>(p).right() == z) {
        // Case 2: inner child — rotate to the outside first.
        z = p;
        rotate_left(tx, z);
      }
      const ObjectId p2 = tx.read<RbNode>(z).parent();
      const ObjectId g2 = tx.read<RbNode>(p2).parent();
      tx.write<RbNode>(p2).set_red(false);
      tx.write<RbNode>(g2).set_red(true);
      rotate_right(tx, g2);
    } else {
      if (tx.read<RbNode>(p).left() == z) {
        z = p;
        rotate_right(tx, z);
      }
      const ObjectId p2 = tx.read<RbNode>(z).parent();
      const ObjectId g2 = tx.read<RbNode>(p2).parent();
      tx.write<RbNode>(p2).set_red(false);
      tx.write<RbNode>(g2).set_red(true);
      rotate_left(tx, g2);
    }
    break;
  }
  const ObjectId root = tx.read<RbRoot>(root_obj_).root();
  if (root.valid() && tx.read<RbNode>(root).red()) tx.write<RbNode>(root).set_red(false);
}

void RbTreeWorkload::insert(tfa::Txn& tx, std::int64_t key) const {
  const ObjectId slot = slots_[static_cast<std::size_t>(key)];
  ObjectId parent = kInvalidObject;
  ObjectId cur = tx.read<RbRoot>(root_obj_).root();
  while (cur.valid()) {
    const RbNode& node = tx.read<RbNode>(cur);
    if (node.key() == key) {
      if (node.deleted()) tx.write<RbNode>(cur).set_deleted(false);
      return;
    }
    parent = cur;
    cur = key < node.key() ? node.left() : node.right();
  }

  tx.write<RbNode>(slot).reset_links();
  tx.write<RbNode>(slot).set_parent(parent);
  if (!parent.valid()) {
    tx.write<RbNode>(slot).set_red(false);
    tx.write<RbRoot>(root_obj_).set_root(slot);
    return;
  }
  if (key < tx.read<RbNode>(parent).key()) {
    tx.write<RbNode>(parent).set_left(slot);
  } else {
    tx.write<RbNode>(parent).set_right(slot);
  }
  fixup(tx, slot);
}

Workload::Op RbTreeWorkload::next_op(NodeId node, Xoshiro256& rng) {
  (void)node;
  const int ops_n = 1 + static_cast<int>(rng.below(std::max(1, cfg_.max_nested)));
  std::vector<std::int64_t> keys;
  for (int i = 0; i < ops_n; ++i)
    keys.push_back(static_cast<std::int64_t>(rng.below(slots_.size())));

  Op op;
  if (rng.chance(cfg_.read_ratio)) {
    op.profile = kProfileContains;
    op.is_read = true;
    op.body = [this, keys](tfa::Txn& tx) {
      int found = 0;
      for (const std::int64_t key : keys)
        tx.nested([&](tfa::Txn& child) {
          found += contains(child, key) ? 1 : 0;
          do_local_work();
        });
      if (found < 0) tx.retry();
    };
    return op;
  }

  std::vector<bool> is_insert;
  for (int i = 0; i < ops_n; ++i) is_insert.push_back(rng.chance(0.5));
  op.profile = kProfileUpdate;
  op.body = [this, keys, is_insert](tfa::Txn& tx) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      tx.nested([&](tfa::Txn& child) {
        if (is_insert[i]) {
          insert(child, keys[i]);
        } else {
          remove(child, keys[i]);
        }
        do_local_work();
      });
    }
  };
  return op;
}

bool RbTreeWorkload::verify_subtree(runtime::Cluster& cluster, ObjectId node,
                                    ObjectId expected_parent, std::int64_t lo, std::int64_t hi,
                                    bool parent_red, int black_so_far, int& black_height,
                                    std::size_t& visited) const {
  if (!node.valid()) {
    if (black_height < 0) {
      black_height = black_so_far;
      return true;
    }
    if (black_height != black_so_far) {
      HYFLOW_ERROR("rb-tree: black-height mismatch (", black_height, " vs ", black_so_far, ")");
      return false;
    }
    return true;
  }
  if (++visited > slots_.size()) {
    HYFLOW_ERROR("rb-tree: cycle or duplicate linkage detected");
    return false;
  }
  const ObjectSnapshot snap = cluster.committed_copy(node);
  if (!snap) return false;
  const auto& n = object_cast<RbNode>(*snap);
  if (n.key() <= lo || n.key() >= hi) {
    HYFLOW_ERROR("rb-tree: order violated at key ", n.key());
    return false;
  }
  if (n.parent() != expected_parent) {
    HYFLOW_ERROR("rb-tree: parent pointer wrong at key ", n.key());
    return false;
  }
  if (parent_red && n.red()) {
    HYFLOW_ERROR("rb-tree: red-red violation at key ", n.key());
    return false;
  }
  const int black = black_so_far + (n.red() ? 0 : 1);
  return verify_subtree(cluster, n.left(), node, lo, n.key(), n.red(), black, black_height,
                        visited) &&
         verify_subtree(cluster, n.right(), node, n.key(), hi, n.red(), black, black_height,
                        visited);
}

bool RbTreeWorkload::verify(runtime::Cluster& cluster) {
  const ObjectSnapshot root_snap = cluster.committed_copy(root_obj_);
  if (!root_snap) return false;
  const ObjectId root = object_cast<RbRoot>(*root_snap).root();
  if (root.valid()) {
    const ObjectSnapshot r = cluster.committed_copy(root);
    if (!r) return false;
    if (object_cast<RbNode>(*r).red()) {
      HYFLOW_ERROR("rb-tree: red root");
      return false;
    }
  }
  int black_height = -1;
  std::size_t visited = 0;
  return verify_subtree(cluster, root, kInvalidObject, INT64_MIN, INT64_MAX, false, 0,
                        black_height, visited);
}

}  // namespace hyflow::workloads
