// Distributed sorted linked list (LL microbenchmark).
//
// One shared object per list node. Every key in the universe has a
// dedicated, pre-created node object (key i <-> slot i); membership is
// toggled by linking/unlinking, so no objects are created or destroyed at
// runtime. Traversals open a chain of objects — long read sets and many
// round-trips, the paper's motivation for reusing fetched objects when a
// parent is enqueued.
//
// The universe is capped (see DESIGN.md): the paper's 5-10 objects/node at
// 80 nodes would mean multi-hundred-hop traversals, each hop a simulated
// round-trip — structurally identical but uselessly slow for a harness.
#pragma once

#include <vector>

#include "workloads/ids.hpp"
#include "workloads/workload.hpp"

namespace hyflow::workloads {

class ListNode : public TxObject<ListNode> {
 public:
  ListNode(ObjectId id, std::int64_t key) : TxObject(id), key_(key) {}

  std::int64_t key() const { return key_; }
  ObjectId next() const { return next_; }
  void set_next(ObjectId n) { next_ = n; }

 private:
  std::int64_t key_;      // immutable: slot identity
  ObjectId next_ = kInvalidObject;  // invalid = unlinked / tail
};

class LinkedListWorkload : public Workload {
 public:
  static constexpr std::uint32_t kProfileContains = 30;
  static constexpr std::uint32_t kProfileUpdate = 31;
  static constexpr std::size_t kUniverseCap = 48;

  explicit LinkedListWorkload(const WorkloadConfig& cfg) : Workload(cfg) {}

  std::string name() const override { return "linked-list"; }
  void setup(runtime::Cluster& cluster) override;
  Op next_op(NodeId node, Xoshiro256& rng) override;
  bool verify(runtime::Cluster& cluster) override;

  std::size_t universe() const { return slots_.size(); }

  // Transactional set operations (run inside a transaction or nested child);
  // public so applications and oracle tests can drive the list directly.
  bool contains(tfa::Txn& tx, std::int64_t key) const;
  void add(tfa::Txn& tx, std::int64_t key) const;
  void remove(tfa::Txn& tx, std::int64_t key) const;

 private:
  std::vector<ObjectId> slots_;  // slot i holds key i
  ObjectId head_;                // sentinel, key = -1
};

}  // namespace hyflow::workloads
