// Distributed red-black tree (RB-Tree microbenchmark).
//
// Same slot-per-key object model as the BST, but inserts run the full
// red-black fixup — recolouring and rotations write several tree objects in
// one transaction, making update transactions markedly heavier than BST's
// single-link writes (visible in Figs. 4d/5d vs 4e/5e). Removal is lazy.
//
// Transactional discipline: tree code never holds an object reference
// across a mutation — every step re-opens by ObjectId and copies the fields
// it needs, because writing an object redirects subsequent reads to the
// private working copy.
#pragma once

#include <vector>

#include "workloads/ids.hpp"
#include "workloads/workload.hpp"

namespace hyflow::workloads {

class RbNode : public TxObject<RbNode> {
 public:
  RbNode(ObjectId id, std::int64_t key) : TxObject(id), key_(key) {}

  std::int64_t key() const { return key_; }
  ObjectId left() const { return left_; }
  ObjectId right() const { return right_; }
  ObjectId parent() const { return parent_; }
  bool red() const { return red_; }
  bool deleted() const { return deleted_; }

  void set_left(ObjectId n) { left_ = n; }
  void set_right(ObjectId n) { right_ = n; }
  void set_parent(ObjectId n) { parent_ = n; }
  void set_red(bool r) { red_ = r; }
  void set_deleted(bool d) { deleted_ = d; }
  void reset_links() {
    left_ = right_ = parent_ = kInvalidObject;
    red_ = true;
    deleted_ = false;
  }

 private:
  std::int64_t key_;
  ObjectId left_ = kInvalidObject;
  ObjectId right_ = kInvalidObject;
  ObjectId parent_ = kInvalidObject;
  bool red_ = false;
  bool deleted_ = false;
};

class RbRoot : public TxObject<RbRoot> {
 public:
  explicit RbRoot(ObjectId id) : TxObject(id) {}
  ObjectId root() const { return root_; }
  void set_root(ObjectId n) { root_ = n; }

 private:
  ObjectId root_ = kInvalidObject;
};

class RbTreeWorkload : public Workload {
 public:
  static constexpr std::uint32_t kProfileContains = 50;
  static constexpr std::uint32_t kProfileUpdate = 51;
  static constexpr std::size_t kUniverseCap = 64;

  explicit RbTreeWorkload(const WorkloadConfig& cfg) : Workload(cfg) {}

  std::string name() const override { return "rb-tree"; }
  void setup(runtime::Cluster& cluster) override;
  Op next_op(NodeId node, Xoshiro256& rng) override;
  bool verify(runtime::Cluster& cluster) override;

  std::size_t universe() const { return slots_.size(); }

  // Transactional set operations; public so applications and oracle tests
  // can drive the tree directly.
  bool contains(tfa::Txn& tx, std::int64_t key) const;
  void insert(tfa::Txn& tx, std::int64_t key) const;
  void remove(tfa::Txn& tx, std::int64_t key) const;

 private:

  void fixup(tfa::Txn& tx, ObjectId z) const;
  void rotate_left(tfa::Txn& tx, ObjectId x) const;
  void rotate_right(tfa::Txn& tx, ObjectId x) const;

  bool verify_subtree(runtime::Cluster& cluster, ObjectId node, ObjectId expected_parent,
                      std::int64_t lo, std::int64_t hi, bool parent_red, int black_so_far,
                      int& black_height, std::size_t& visited) const;

  std::vector<ObjectId> slots_;
  ObjectId root_obj_;
};

}  // namespace hyflow::workloads
