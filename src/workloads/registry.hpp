// Name -> workload factory, used by the bench harnesses and examples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace hyflow::workloads {

// Known names: "bank", "vacation", "linked-list", "bst", "rb-tree", "dht".
std::unique_ptr<Workload> make_workload(const std::string& name, const WorkloadConfig& cfg);

// All six benchmark names, in the paper's Table/Figure order.
const std::vector<std::string>& workload_names();

}  // namespace hyflow::workloads
