#include "workloads/dht.hpp"

#include "runtime/cluster.hpp"
#include "util/log.hpp"

namespace hyflow::workloads {

void DhtWorkload::setup(runtime::Cluster& cluster) {
  const std::uint64_t count =
      static_cast<std::uint64_t>(cluster.size()) * static_cast<std::uint64_t>(cfg_.objects_per_node);
  buckets_.clear();
  buckets_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const ObjectId oid = make_oid(IdSpace::kDhtBucket, i);
    cluster.create_object(std::make_unique<Bucket>(oid, i),
                          static_cast<NodeId>(i % cluster.size()));
    buckets_.push_back(oid);
  }
  key_space_ = count * 16;
}

Workload::Op DhtWorkload::next_op(NodeId node, Xoshiro256& rng) {
  (void)node;
  const int ops_n = 1 + static_cast<int>(rng.below(std::max(1, cfg_.max_nested)));
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < ops_n; ++i) keys.push_back(rng.below(key_space_));

  Op op;
  if (rng.chance(cfg_.read_ratio)) {
    op.profile = kProfileGet;
    op.is_read = true;
    op.body = [this, keys](tfa::Txn& tx) {
      std::uint64_t sink = 0;
      // Two lookups per closed-nested child so a child owns a multi-object
      // read set of its own.
      for (std::size_t i = 0; i < keys.size(); i += 2) {
        tx.nested([&](tfa::Txn& child) {
          // Local accumulator, published once: keeps the child body
          // idempotent across child retries.
          std::uint64_t sub = 0;
          for (std::size_t j = i; j < std::min(i + 2, keys.size()); ++j) {
            const ObjectId bucket = buckets_[bucket_index_of(keys[j])];
            if (const auto* v = child.read<Bucket>(bucket).get(keys[j])) sub ^= *v;
          }
          do_local_work();
          sink ^= sub;
        });
      }
      if (sink == UINT64_MAX) tx.retry();  // keep `sink` observable
    };
    return op;
  }

  std::vector<std::uint64_t> values;
  for (int i = 0; i < ops_n; ++i) values.push_back(rng());
  op.profile = kProfilePut;
  op.body = [this, keys, values](tfa::Txn& tx) {
    for (std::size_t i = 0; i < keys.size(); i += 2) {
      tx.nested([&](tfa::Txn& child) {
        for (std::size_t j = i; j < std::min(i + 2, keys.size()); ++j) {
          const ObjectId bucket = buckets_[bucket_index_of(keys[j])];
          child.write<Bucket>(bucket).put(keys[j], values[j]);
        }
        do_local_work();
      });
    }
  };
  return op;
}

bool DhtWorkload::verify(runtime::Cluster& cluster) {
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const ObjectSnapshot snap = cluster.committed_copy(buckets_[i]);
    if (!snap) {
      HYFLOW_ERROR("dht: bucket ", i, " has no committed copy");
      return false;
    }
    const auto& bucket = object_cast<Bucket>(*snap);
    if (bucket.index() != i) return false;
    for (const auto& [key, value] : bucket.entries()) {
      if (bucket_index_of(key) != i) {
        HYFLOW_ERROR("dht: key ", key, " landed in bucket ", i, " expected ",
                     bucket_index_of(key));
        return false;
      }
    }
  }
  return true;
}

}  // namespace hyflow::workloads
