// Bank — the paper's "monetary application" benchmark.
//
// Write transactions transfer money between accounts: the parent wraps one
// closed-nested withdraw and one closed-nested deposit per leg (several
// legs per parent, randomised — "the number of nested transactions per
// transaction are randomly decided", §IV-B). Read transactions audit a
// sample of accounts. The conservation invariant (total balance constant)
// is the repository's strongest opacity check.
#pragma once

#include <vector>

#include "workloads/ids.hpp"
#include "workloads/workload.hpp"

namespace hyflow::workloads {

class Account : public TxObject<Account> {
 public:
  explicit Account(ObjectId id, std::int64_t balance = 0)
      : TxObject(id), balance_(balance) {}

  std::int64_t balance() const { return balance_; }
  void deposit(std::int64_t amount) { balance_ += amount; }
  void withdraw(std::int64_t amount) { balance_ -= amount; }

 private:
  std::int64_t balance_;
};

class BankWorkload : public Workload {
 public:
  static constexpr std::uint32_t kProfileAudit = 10;
  static constexpr std::uint32_t kProfileTransfer = 11;

  explicit BankWorkload(const WorkloadConfig& cfg, std::int64_t initial_balance = 1000)
      : Workload(cfg), initial_balance_(initial_balance) {}

  std::string name() const override { return "bank"; }
  void setup(runtime::Cluster& cluster) override;
  Op next_op(NodeId node, Xoshiro256& rng) override;
  bool verify(runtime::Cluster& cluster) override;

  const std::vector<ObjectId>& accounts() const { return accounts_; }

 private:
  std::int64_t initial_balance_;
  std::vector<ObjectId> accounts_;
};

}  // namespace hyflow::workloads
