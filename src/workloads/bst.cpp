#include "workloads/bst.hpp"

#include <functional>

#include "runtime/cluster.hpp"
#include "util/log.hpp"

namespace hyflow::workloads {

namespace {
// Builds a balanced initial tree over the even keys in [lo, hi).
ObjectId build_balanced(std::vector<std::unique_ptr<BstNode>>& nodes,
                        const std::vector<ObjectId>& slots, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return kInvalidObject;
  const std::size_t mid = lo + (hi - lo) / 2;
  const std::size_t key = mid * 2;  // even keys only
  if (key >= slots.size()) return kInvalidObject;
  BstNode* node = nodes[key].get();
  node->set_left(build_balanced(nodes, slots, lo, mid));
  node->set_right(build_balanced(nodes, slots, mid + 1, hi));
  return slots[key];
}
}  // namespace

void BstWorkload::setup(runtime::Cluster& cluster) {
  const std::size_t total =
      static_cast<std::size_t>(cluster.size()) * static_cast<std::size_t>(cfg_.objects_per_node);
  const std::size_t universe = std::min(kUniverseCap, std::max<std::size_t>(total, 8));

  slots_.clear();
  slots_.reserve(universe);
  std::vector<std::unique_ptr<BstNode>> nodes;
  for (std::size_t i = 0; i < universe; ++i) {
    const ObjectId oid = make_oid(IdSpace::kBstNode, i);
    slots_.push_back(oid);
    nodes.push_back(std::make_unique<BstNode>(oid, static_cast<std::int64_t>(i)));
  }

  root_obj_ = make_oid(IdSpace::kBstRoot, 0);
  auto root = std::make_unique<BstRoot>(root_obj_);
  root->set_root(build_balanced(nodes, slots_, 0, (universe + 1) / 2));

  cluster.create_object(std::move(root), 0);
  for (std::size_t i = 0; i < universe; ++i)
    cluster.create_object(std::move(nodes[i]), static_cast<NodeId>(i % cluster.size()));
}

bool BstWorkload::contains(tfa::Txn& tx, std::int64_t key) const {
  ObjectId cur = tx.read<BstRoot>(root_obj_).root();
  while (cur.valid()) {
    const BstNode& node = tx.read<BstNode>(cur);
    if (node.key() == key) return !node.deleted();
    cur = key < node.key() ? node.left() : node.right();
  }
  return false;
}

void BstWorkload::insert(tfa::Txn& tx, std::int64_t key) const {
  const ObjectId slot = slots_[static_cast<std::size_t>(key)];
  ObjectId cur = tx.read<BstRoot>(root_obj_).root();
  if (!cur.valid()) {
    tx.write<BstNode>(slot).reset_links();
    tx.write<BstRoot>(root_obj_).set_root(slot);
    return;
  }
  while (true) {
    const BstNode& node = tx.read<BstNode>(cur);
    if (node.key() == key) {
      if (node.deleted()) tx.write<BstNode>(cur).set_deleted(false);
      return;
    }
    const ObjectId next = key < node.key() ? node.left() : node.right();
    if (!next.valid()) {
      tx.write<BstNode>(slot).reset_links();
      BstNode& parent = tx.write<BstNode>(cur);
      if (key < node.key()) {
        parent.set_left(slot);
      } else {
        parent.set_right(slot);
      }
      return;
    }
    cur = next;
  }
}

void BstWorkload::remove(tfa::Txn& tx, std::int64_t key) const {
  ObjectId cur = tx.read<BstRoot>(root_obj_).root();
  while (cur.valid()) {
    const BstNode& node = tx.read<BstNode>(cur);
    if (node.key() == key) {
      if (!node.deleted()) tx.write<BstNode>(cur).set_deleted(true);
      return;
    }
    cur = key < node.key() ? node.left() : node.right();
  }
}

Workload::Op BstWorkload::next_op(NodeId node, Xoshiro256& rng) {
  (void)node;
  const int ops_n = 1 + static_cast<int>(rng.below(std::max(1, cfg_.max_nested)));
  std::vector<std::int64_t> keys;
  for (int i = 0; i < ops_n; ++i)
    keys.push_back(static_cast<std::int64_t>(rng.below(slots_.size())));

  Op op;
  if (rng.chance(cfg_.read_ratio)) {
    op.profile = kProfileContains;
    op.is_read = true;
    op.body = [this, keys](tfa::Txn& tx) {
      int found = 0;
      for (const std::int64_t key : keys)
        tx.nested([&](tfa::Txn& child) {
          found += contains(child, key) ? 1 : 0;
          do_local_work();
        });
      if (found < 0) tx.retry();
    };
    return op;
  }

  std::vector<bool> is_insert;
  for (int i = 0; i < ops_n; ++i) is_insert.push_back(rng.chance(0.5));
  op.profile = kProfileUpdate;
  op.body = [this, keys, is_insert](tfa::Txn& tx) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      tx.nested([&](tfa::Txn& child) {
        if (is_insert[i]) {
          insert(child, keys[i]);
        } else {
          remove(child, keys[i]);
        }
        do_local_work();
      });
    }
  };
  return op;
}

bool BstWorkload::verify_subtree(runtime::Cluster& cluster, ObjectId node, std::int64_t lo,
                                 std::int64_t hi, std::size_t& visited) const {
  if (!node.valid()) return true;
  if (++visited > slots_.size()) {
    HYFLOW_ERROR("bst: cycle or duplicate linkage detected");
    return false;
  }
  const ObjectSnapshot snap = cluster.committed_copy(node);
  if (!snap) {
    HYFLOW_ERROR("bst: missing committed copy for node ", node.value);
    return false;
  }
  const auto& n = object_cast<BstNode>(*snap);
  if (n.key() <= lo || n.key() >= hi) {
    HYFLOW_ERROR("bst: order violated at key ", n.key());
    return false;
  }
  if (slots_[static_cast<std::size_t>(n.key())] != node) return false;
  return verify_subtree(cluster, n.left(), lo, n.key(), visited) &&
         verify_subtree(cluster, n.right(), n.key(), hi, visited);
}

bool BstWorkload::verify(runtime::Cluster& cluster) {
  const ObjectSnapshot root = cluster.committed_copy(root_obj_);
  if (!root) return false;
  std::size_t visited = 0;
  return verify_subtree(cluster, object_cast<BstRoot>(*root).root(), INT64_MIN, INT64_MAX,
                        visited);
}

}  // namespace hyflow::workloads
