// Directory-based cache-coherence metadata.
//
// Every object has a *home* node, `hash(oid) % N`, whose DirectoryShard
// tracks the object's current owner. The owner changes when a write
// transaction commits: TFA's validation phase performs the "global
// registration of object ownership" (§II) by sending RegisterOwnerRequest
// to the home node — the round-trip is a deliberate part of the validation
// window during which conflicting requesters hit the scheduler.
//
// Registrations carry the committing version clock and are applied
// monotonically, so a late-arriving registration from an older commit can
// never clobber a newer owner.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "dsm/object_id.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace hyflow::dsm {

inline NodeId home_node(ObjectId oid, std::uint32_t cluster_size) {
  return static_cast<NodeId>(mix64(oid.value) % cluster_size);
}

class DirectoryShard {
 public:
  // Initial placement at cluster construction (version clock 0).
  void publish(ObjectId oid, NodeId owner);

  std::optional<NodeId> lookup(ObjectId oid) const;

  // Monotonic owner update; returns false (and leaves the entry unchanged)
  // if `version_clock` is older than the registered one.
  bool register_owner(ObjectId oid, NodeId new_owner, std::uint64_t version_clock);

  std::size_t size() const;

 private:
  struct Entry {
    NodeId owner = kInvalidNode;
    std::uint64_t version_clock = 0;
  };
  // Outermost rank: ownership registration precedes slot/queue hand-off.
  mutable Mutex mu_{LockRank::kDirectory, "DirectoryShard::mu"};
  std::unordered_map<ObjectId, Entry> entries_ GUARDED_BY(mu_);
};

}  // namespace hyflow::dsm
