// Requester-side driver of the cache-coherence protocol: resolve an
// object's current owner ("Find_owner" in Alg. 2).
//
// Resolution order: (1) this node's own store — the TM proxy's local-cache
// check; (2) the per-node owner-hint cache, filled by previous fetches;
// (3) an RPC to the object's home-node directory shard. A `wrong_owner`
// response from a stale hint invalidates it and forces a fresh directory
// lookup.
#pragma once

#include <optional>
#include <unordered_map>

#include "dsm/object_id.hpp"
#include "dsm/object_store.hpp"
#include "net/comm.hpp"
#include "util/mutex.hpp"

namespace hyflow::dsm {

class OwnerResolver {
 public:
  OwnerResolver(net::Comm& comm, const ObjectStore& local_store)
      : comm_(comm), store_(local_store) {}

  // Blocking (performs a directory RPC on cache miss). Returns nullopt only
  // if the directory has no entry or the cluster is shutting down.
  std::optional<NodeId> find_owner(ObjectId oid);

  // Drop a hint that turned out stale.
  void invalidate(ObjectId oid);

  // A fetch response told us who the owner is (or we just became it).
  void note_owner(ObjectId oid, NodeId owner);

  std::size_t hint_count() const;

 private:
  net::Comm& comm_;
  const ObjectStore& store_;
  mutable Mutex mu_{LockRank::kOwnerHints, "OwnerResolver::mu"};
  std::unordered_map<ObjectId, NodeId> hints_ GUARDED_BY(mu_);
};

}  // namespace hyflow::dsm
