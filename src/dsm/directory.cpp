#include "dsm/directory.hpp"

#include "util/assert.hpp"

namespace hyflow::dsm {

void DirectoryShard::publish(ObjectId oid, NodeId owner) {
  MutexLock lk(mu_);
  auto [it, inserted] = entries_.emplace(oid, Entry{owner, 0});
  HYFLOW_ASSERT_MSG(inserted, "object published twice");
  (void)it;
}

std::optional<NodeId> DirectoryShard::lookup(ObjectId oid) const {
  MutexLock lk(mu_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) return std::nullopt;
  return it->second.owner;
}

bool DirectoryShard::register_owner(ObjectId oid, NodeId new_owner,
                                    std::uint64_t version_clock) {
  MutexLock lk(mu_);
  auto it = entries_.find(oid);
  if (it == entries_.end()) {
    entries_.emplace(oid, Entry{new_owner, version_clock});
    return true;
  }
  if (version_clock < it->second.version_clock) return false;
  it->second.owner = new_owner;
  it->second.version_clock = version_clock;
  return true;
}

std::size_t DirectoryShard::size() const {
  MutexLock lk(mu_);
  return entries_.size();
}

}  // namespace hyflow::dsm
