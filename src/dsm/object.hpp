// The transactional object model for the dataflow D-STM.
//
// Objects migrate between nodes by *copy*: a message carries an immutable
// snapshot (`ObjectSnapshot` = shared_ptr<const AbstractObject>), and a
// transaction that wants to mutate one clones it into a private working copy
// in its write set. Nothing is ever shared writable across nodes — the
// in-process cluster honours message-passing semantics (CP.mess).
//
// Workloads subclass `TxObject<Derived>` (CRTP supplies clone()) and keep
// their state in plain members; copying the object must be equivalent to
// serialising it across a link.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dsm/object_id.hpp"

namespace hyflow {

class AbstractObject {
 public:
  explicit AbstractObject(ObjectId id) : id_(id) {}
  virtual ~AbstractObject() = default;

  ObjectId id() const { return id_; }

  // Deep copy — stands in for serialise+deserialise across a link.
  virtual std::unique_ptr<AbstractObject> clone() const = 0;

  // Approximate wire size in bytes; only used for transport statistics.
  virtual std::size_t wire_size() const { return 64; }

  virtual std::string debug_string() const { return "object#" + std::to_string(id_.value); }

 protected:
  AbstractObject(const AbstractObject&) = default;
  AbstractObject& operator=(const AbstractObject&) = delete;

 private:
  ObjectId id_;
};

// Immutable snapshot as it travels through the network and sits in an
// owner's store. Mutation always goes through clone().
using ObjectSnapshot = std::shared_ptr<const AbstractObject>;

// CRTP helper: `class Account : public TxObject<Account> { ... };`
template <typename Derived>
class TxObject : public AbstractObject {
 public:
  using AbstractObject::AbstractObject;

  std::unique_ptr<AbstractObject> clone() const override {
    return std::make_unique<Derived>(static_cast<const Derived&>(*this));
  }
};

// Checked downcast for snapshots and working copies.
template <typename T>
const T& object_cast(const AbstractObject& obj) {
  return dynamic_cast<const T&>(obj);
}

template <typename T>
T& object_cast(AbstractObject& obj) {
  return dynamic_cast<T&>(obj);
}

}  // namespace hyflow
