// Out-of-line anchor for AbstractObject's vtable plus small shared helpers.
#include "dsm/object.hpp"

namespace hyflow {

// Intentionally empty: AbstractObject's virtuals are defined inline; this
// translation unit pins the type's RTTI/vtable in the library.

}  // namespace hyflow
