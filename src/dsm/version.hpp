// Object versions under TFA.
//
// A version is the (logical) commit timestamp of the write that produced the
// copy, paired with the committing node for tie-breaking and debugging.
// Logical clocks are per-node Lamport-style counters advanced by TFA's
// forwarding rule, so version comparison is a plain integer comparison on
// `clock` — two distinct committed versions of the same object always differ
// because commit increments the committer's clock past every clock value it
// observed while validating.
#pragma once

#include <cstdint>

#include "dsm/object_id.hpp"

namespace hyflow {

struct Version {
  std::uint64_t clock = 0;   // committer's logical clock at commit
  NodeId writer = kInvalidNode;

  constexpr bool operator==(const Version&) const = default;
};

constexpr Version kInitialVersion{0, kInvalidNode};

}  // namespace hyflow
