// Owner-side object store.
//
// A node's store holds exactly the objects it currently owns — the single
// writable copy the CC protocol guarantees. A slot is *locked* while some
// transaction is validating a write to it (TFA commit); requests that
// arrive for a locked slot are the scheduler's input. Ownership transfer
// evicts the slot here and installs the new snapshot at the committer.
//
// All operations are short and non-blocking, guarded by one mutex per
// store (a node's store sees its own workers plus the delivery pool — a
// handful of threads — so sharding buys nothing at this scale).
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "dsm/object.hpp"
#include "dsm/object_id.hpp"
#include "dsm/version.hpp"
#include "util/mutex.hpp"
#include "util/time.hpp"

namespace hyflow::dsm {

struct SlotView {
  ObjectSnapshot object;
  Version version;
  TxnId locked_by;        // invalid() => unlocked
  SimTime locked_at = 0;  // when the current lock was taken (0 if unlocked)
};

class ObjectStore {
 public:
  // Installs an object this node now owns (initial placement or ownership
  // transfer). Replaces any previous slot state.
  void install(ObjectSnapshot object, Version version);

  // Reads a slot; nullopt if this node does not own the object.
  std::optional<SlotView> get(ObjectId oid) const;

  bool owns(ObjectId oid) const;

  enum class LockResult { kGranted, kBusy, kVersionMismatch, kNotOwner };

  // Commit-time write lock: grants only if unlocked (or already held by the
  // same transaction) and the version clock matches what the transaction
  // read — lock doubles as write-set validation.
  LockResult lock(ObjectId oid, TxnId txid, std::uint64_t expected_clock);

  // Releases a lock without committing. Returns false if `txid` did not
  // hold it (benign: the lock may have been evicted by a racing commit).
  bool unlock(ObjectId oid, TxnId txid);

  enum class ValidateResult { kValid, kInvalid, kNotOwner };

  // Read-set validation: current version must match and the slot must not
  // be mid-commit under someone else (a locked slot is about to change).
  // `reader` may hold its own commit lock on the slot (read+write upgrade).
  ValidateResult validate(ObjectId oid, std::uint64_t expected_clock, TxnId reader) const;

  // Ownership moved away: drop the slot. Returns the evicted view.
  std::optional<SlotView> evict(ObjectId oid, TxnId committer);

  // Commit by the current owner itself: bump version/state in place and
  // release the lock.
  bool commit_in_place(ObjectId oid, TxnId txid, ObjectSnapshot object, Version version);

  std::size_t size() const;
  std::vector<ObjectId> owned_ids() const;

 private:
  struct Slot {
    ObjectSnapshot object;
    Version version;
    TxnId locked_by = kInvalidTxn;
    SimTime locked_at = 0;
  };
  mutable Mutex mu_{LockRank::kObjectStore, "ObjectStore::mu"};
  std::unordered_map<ObjectId, Slot> slots_ GUARDED_BY(mu_);
};

}  // namespace hyflow::dsm
