// Fundamental identifiers shared by every layer.
//
// ObjectId encodes nothing about placement; the *home* node of an object
// (the directory shard that tracks its current owner) is `hash(oid) % N`,
// computed by dsm::Directory. Transactions are identified by a TxnId that is
// unique across the cluster (node id in the high bits, per-node counter in
// the low bits) — the scheduler's Requester entries key on it.
#pragma once

#include <cstdint>
#include <functional>

namespace hyflow {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct ObjectId {
  std::uint64_t value = 0;

  constexpr bool operator==(const ObjectId&) const = default;
  constexpr auto operator<=>(const ObjectId&) const = default;
  constexpr bool valid() const { return value != 0; }
};

constexpr ObjectId kInvalidObject{0};

struct TxnId {
  std::uint64_t value = 0;

  constexpr bool operator==(const TxnId&) const = default;
  constexpr auto operator<=>(const TxnId&) const = default;
  constexpr bool valid() const { return value != 0; }

  static constexpr TxnId make(NodeId node, std::uint64_t seq) {
    return TxnId{(static_cast<std::uint64_t>(node) << 40) | (seq & 0xffffffffffull)};
  }
  constexpr NodeId node() const { return static_cast<NodeId>(value >> 40); }
  constexpr std::uint64_t seq() const { return value & 0xffffffffffull; }
};

constexpr TxnId kInvalidTxn{0};

}  // namespace hyflow

template <>
struct std::hash<hyflow::ObjectId> {
  std::size_t operator()(const hyflow::ObjectId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};

template <>
struct std::hash<hyflow::TxnId> {
  std::size_t operator()(const hyflow::TxnId& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
