#include "dsm/coherence.hpp"

#include "dsm/directory.hpp"
#include "util/log.hpp"

namespace hyflow::dsm {

std::optional<NodeId> OwnerResolver::find_owner(ObjectId oid) {
  if (store_.owns(oid)) return comm_.self();
  {
    MutexLock lk(mu_);
    auto it = hints_.find(oid);
    if (it != hints_.end()) return it->second;
  }
  const NodeId home = home_node(oid, comm_.cluster_size());
  const net::FindOwnerRequest req{oid};
  auto call = comm_.request(home, req);
  auto reply = net::reliable_wait(comm_, call, home, req, comm_.retry_policy());
  if (!reply) return std::nullopt;  // shutdown, or retry budget exhausted
  const auto& resp = std::get<net::FindOwnerResponse>(reply->payload);
  if (!resp.known) {
    HYFLOW_WARN("find_owner: object ", oid.value, " unknown to directory");
    return std::nullopt;
  }
  note_owner(oid, resp.owner);
  return resp.owner;
}

void OwnerResolver::invalidate(ObjectId oid) {
  MutexLock lk(mu_);
  hints_.erase(oid);
}

void OwnerResolver::note_owner(ObjectId oid, NodeId owner) {
  MutexLock lk(mu_);
  hints_[oid] = owner;
}

std::size_t OwnerResolver::hint_count() const {
  MutexLock lk(mu_);
  return hints_.size();
}

}  // namespace hyflow::dsm
