#include "dsm/object_store.hpp"

#include "util/assert.hpp"
#include "util/time.hpp"

namespace hyflow::dsm {

void ObjectStore::install(ObjectSnapshot object, Version version) {
  HYFLOW_ASSERT(object != nullptr);
  const ObjectId oid = object->id();
  MutexLock lk(mu_);
  slots_[oid] = Slot{std::move(object), version, kInvalidTxn};
}

std::optional<SlotView> ObjectStore::get(ObjectId oid) const {
  MutexLock lk(mu_);
  auto it = slots_.find(oid);
  if (it == slots_.end()) return std::nullopt;
  return SlotView{it->second.object, it->second.version, it->second.locked_by,
                  it->second.locked_at};
}

bool ObjectStore::owns(ObjectId oid) const {
  MutexLock lk(mu_);
  return slots_.count(oid) > 0;
}

ObjectStore::LockResult ObjectStore::lock(ObjectId oid, TxnId txid,
                                          std::uint64_t expected_clock) {
  MutexLock lk(mu_);
  auto it = slots_.find(oid);
  if (it == slots_.end()) return LockResult::kNotOwner;
  Slot& slot = it->second;
  if (slot.locked_by.valid() && slot.locked_by != txid) return LockResult::kBusy;
  if (slot.version.clock != expected_clock) return LockResult::kVersionMismatch;
  if (slot.locked_by != txid) slot.locked_at = sim_now();
  slot.locked_by = txid;
  return LockResult::kGranted;
}

bool ObjectStore::unlock(ObjectId oid, TxnId txid) {
  MutexLock lk(mu_);
  auto it = slots_.find(oid);
  if (it == slots_.end() || it->second.locked_by != txid) return false;
  it->second.locked_by = kInvalidTxn;
  it->second.locked_at = 0;
  return true;
}

ObjectStore::ValidateResult ObjectStore::validate(ObjectId oid,
                                                  std::uint64_t expected_clock,
                                                  TxnId reader) const {
  MutexLock lk(mu_);
  auto it = slots_.find(oid);
  if (it == slots_.end()) return ValidateResult::kNotOwner;
  const Slot& slot = it->second;
  if (slot.version.clock != expected_clock) return ValidateResult::kInvalid;
  if (slot.locked_by.valid() && slot.locked_by != reader) return ValidateResult::kInvalid;
  return ValidateResult::kValid;
}

std::optional<SlotView> ObjectStore::evict(ObjectId oid, TxnId committer) {
  MutexLock lk(mu_);
  auto it = slots_.find(oid);
  if (it == slots_.end()) return std::nullopt;
  HYFLOW_ASSERT_MSG(!it->second.locked_by.valid() || it->second.locked_by == committer,
                    "evicting a slot locked by someone else");
  SlotView view{std::move(it->second.object), it->second.version, it->second.locked_by,
                it->second.locked_at};
  slots_.erase(it);
  return view;
}

bool ObjectStore::commit_in_place(ObjectId oid, TxnId txid, ObjectSnapshot object,
                                  Version version) {
  MutexLock lk(mu_);
  auto it = slots_.find(oid);
  if (it == slots_.end() || it->second.locked_by != txid) return false;
  it->second.object = std::move(object);
  it->second.version = version;
  it->second.locked_by = kInvalidTxn;
  it->second.locked_at = 0;
  return true;
}

std::size_t ObjectStore::size() const {
  MutexLock lk(mu_);
  return slots_.size();
}

std::vector<ObjectId> ObjectStore::owned_ids() const {
  MutexLock lk(mu_);
  std::vector<ObjectId> ids;
  ids.reserve(slots_.size());
  for (const auto& [oid, slot] : slots_) ids.push_back(oid);
  return ids;
}

}  // namespace hyflow::dsm
