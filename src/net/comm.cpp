#include "net/comm.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace hyflow::net {

SimDuration RetryPolicy::timeout_for(int attempt, std::uint64_t msg_id) const {
  SimDuration t = base_timeout;
  for (int i = 0; i < attempt && t < max_timeout; ++i) t *= 2;
  t = std::min(t, max_timeout);
  // +-25% deterministic jitter keyed by (msg_id, attempt).
  const std::uint64_t bits = mix64(msg_id * 31 + static_cast<std::uint64_t>(attempt));
  const double u = static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
  const double factor = 0.75 + 0.5 * u;
  return std::max<SimDuration>(1, static_cast<SimDuration>(static_cast<double>(t) * factor));
}

std::optional<Message> reliable_wait(Comm& comm, RequestCall& call, NodeId to,
                                     const Payload& payload, const RetryPolicy& policy) {
  for (int attempt = 0; attempt <= policy.max_retries; ++attempt) {
    auto reply = call.poll_for(policy.timeout_for(attempt, call.id()));
    if (reply) return reply;
    if (call.closed()) return std::nullopt;  // shutdown, not loss
    if (attempt == policy.max_retries) break;
    comm.resend(to, call.id(), static_cast<std::uint32_t>(attempt + 1), payload);
  }
  return std::nullopt;
}

}  // namespace hyflow::net
