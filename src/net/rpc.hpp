// Request/response matching on top of the raw network.
//
// A worker thread that sends a request opens a pending call keyed by the
// request's msg_id and blocks on it; the node's message handler routes any
// message with `reply_to == msg_id` to that call.
//
// One request may legitimately receive *two* replies: Retrieve_Request
// (Alg. 3) answers immediately ("enqueued, backoff=B"), and the eventual
// object hand-off (Alg. 4) arrives later — possibly from a different node
// (the committer that became the new owner). A call therefore holds a queue
// of replies and stays registered until the caller calls done(), abandons it
// by timing out, or the cluster shuts down.
//
// A reply that finds no registered call is an *orphan*; for a granted
// object this triggers the paper's "not interested → forward to the next
// enqueued transaction" protocol, owned by the node handler.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "net/message.hpp"
#include "util/mutex.hpp"
#include "util/time.hpp"

namespace hyflow::net {

class PendingCalls {
 public:
  struct CallState {
    Mutex mu{LockRank::kCallState, "CallState::mu"};
    std::condition_variable_any cv;
    std::deque<Message> replies GUARDED_BY(mu);
    bool closed GUARDED_BY(mu) = false;
    // Set (under mu) when a timeout abandoned the call. deliver() re-checks
    // it after queueing so a reply racing the abandon is either returned by
    // wait() or reported as an orphan — never both, never neither.
    bool abandoned GUARDED_BY(mu) = false;
  };
  using CallPtr = std::shared_ptr<CallState>;

  // Registers a pending call for `msg_id`. Reserve the id first (see
  // Network::allocate_msg_id), open the call, then send — so a fast reply
  // can never race past the registration.
  CallPtr open(std::uint64_t msg_id);

  // Routes a reply to its call. Returns false if no call is registered
  // (abandoned or finished) — the caller owns the orphan protocol.
  bool deliver(Message reply);

  // Blocks until a reply is queued, the timeout expires, or close_all().
  // With `abandon_on_timeout` (the default), a timeout abandons the call:
  // it is deregistered and any future reply becomes an orphan; if a reply
  // slipped in during the abandon race it is returned instead. With it
  // false the registration survives the timeout — the retry layer re-sends
  // under the same id and waits again.
  std::optional<Message> wait(const CallPtr& call, std::uint64_t msg_id,
                              std::optional<SimDuration> timeout,
                              bool abandon_on_timeout = true);

  // Deregisters a call whose final reply has been consumed.
  void done(std::uint64_t msg_id);

  void close_all();

  // Re-arms the registry after a close_all() once every blocked caller has
  // been joined (e.g. between measurement phases on a live cluster).
  void reopen();

  std::size_t open_count() const;

  // True between close_all() and reopen().
  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

 private:
  // Registry rank sits below kCallState: deliver()/wait() touch the registry
  // and a call's own lock in separate critical sections, but the declared
  // order keeps any future nesting registry -> call.
  mutable Mutex mu_{LockRank::kCallRegistry, "PendingCalls::mu"};
  std::unordered_map<std::uint64_t, CallPtr> calls_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace hyflow::net
