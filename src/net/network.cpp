#include "net/network.hpp"

#include <chrono>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/log.hpp"

namespace hyflow::net {

Network::Network(Topology topology, int delivery_threads, FaultPlan fault)
    : topology_(std::move(topology)),
      handlers_(topology_.node_count()),
      faults_(std::move(fault)),
      delivery_thread_count_(delivery_threads) {
  HYFLOW_ASSERT(delivery_threads >= 1);
}

Network::~Network() { stop(); }

void Network::register_handler(NodeId node, Handler handler) {
  HYFLOW_ASSERT(node < handlers_.size());
  HYFLOW_ASSERT_MSG(!running_.load(), "register_handler after start()");
  handlers_[node] = std::move(handler);
}

void Network::start() {
  HYFLOW_ASSERT_MSG(!running_.exchange(true), "Network started twice");
  for (const auto& h : handlers_) HYFLOW_ASSERT_MSG(static_cast<bool>(h), "unregistered node");
  faults_.arm(sim_now());  // partition/crash windows are offsets from here
  lanes_.clear();
  for (int i = 0; i < delivery_thread_count_; ++i)
    lanes_.push_back(std::make_unique<BlockingQueue<Message>>());
  threads_.emplace_back([this](std::stop_token st) { dispatcher_loop(st); });
  for (int i = 0; i < delivery_thread_count_; ++i)
    threads_.emplace_back([this, i](std::stop_token st) { delivery_loop(st, i); });
}

void Network::stop() {
  if (!running_.exchange(false)) return;
  for (auto& t : threads_) t.request_stop();
  // Notify under timer_mu_: the dispatcher's wake condition includes
  // st.stop_requested(), which is NOT written under the mutex, so a bare
  // notify could land between the dispatcher's check and its wait and be
  // lost forever — stop() would then hang joining a sleeper that never
  // wakes. Taking the lock first serialises this notify against the check.
  {
    MutexLock lk(timer_mu_);
  }
  timer_cv_.notify_all();
  for (auto& lane : lanes_) lane->close();
  threads_.clear();  // jthread joins on destruction
  // Account for every in-flight message the stop cut off: still waiting in
  // the timer queue or sitting in a delivery lane behind a handler that
  // never ran. Silent discards here used to mask protocol bugs.
  std::uint64_t cut = 0;
  {
    MutexLock lk(timer_mu_);
    cut += timer_queue_.size();
    while (!timer_queue_.empty()) timer_queue_.pop();
  }
  for (auto& lane : lanes_) cut += lane->size();
  if (cut > 0) {
    stats_.dropped_on_stop.fetch_add(cut, std::memory_order_relaxed);
    in_flight_.fetch_sub(cut, std::memory_order_relaxed);
    HYFLOW_INFO("network stop dropped ", cut, " in-flight message(s)");
  }
}

std::uint64_t Network::send(Message m) {
  if (!running_.load(std::memory_order_acquire)) return 0;
  HYFLOW_ASSERT(m.from < handlers_.size() && m.to < handlers_.size());
  if (m.msg_id == 0) m.msg_id = next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = m.msg_id;
  stats_.record(m);
  SimDuration delay = topology_.delay(m.from, m.to);
  if (const double j = topology_.config().jitter; j > 0.0) {
    // Deterministic per-message jitter in [1-j, 1+j] x base delay.
    const double u =
        static_cast<double>(mix64(id ^ topology_.config().seed) >> 11) *
        (1.0 / 9007199254740992.0);
    delay = static_cast<SimDuration>(static_cast<double>(delay) * (1.0 - j + 2.0 * j * u));
  }
  const SimTime now = sim_now();
  const SendFate fate = faults_.on_send(m, now);
  if (!fate.deliver) {
    // Silent loss: the sender still sees a valid msg_id — recovering from
    // exactly this is the reliable-RPC layer's job.
    if (Log::enabled(LogLevel::kTrace)) {
      HYFLOW_TRACE("fault drop ", payload_name(m.payload), " #", id, " ", m.from, "->", m.to);
    }
    return id;
  }
  if (fate.duplicate) schedule(m, now + delay + delay / 2 + 1);
  schedule(std::move(m), now + delay + fate.extra_delay);
  return id;
}

void Network::schedule(Message m, SimTime deliver_at) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lk(timer_mu_);
    timer_queue_.push(
        Timed{deliver_at, next_seq_.fetch_add(1, std::memory_order_relaxed), std::move(m)});
  }
  timer_cv_.notify_one();
}

void Network::dispatcher_loop(std::stop_token st) {
  MutexLock lk(timer_mu_);
  while (!st.stop_requested()) {
    if (timer_queue_.empty()) {
      // Plain wait in a loop (no predicate lambda — the analysis cannot see
      // guarded accesses inside one): spurious wakeups re-check queue and
      // stop token at the top of the loop; stop() notifies under timer_mu_.
      timer_cv_.wait(lk);
      continue;
    }
    const SimTime next_at = timer_queue_.top().deliver_at;
    const SimTime now = sim_now();
    if (next_at > now) {
      timer_cv_.wait_for(lk, to_chrono(next_at - now));
      continue;  // re-evaluate: an earlier message may have been pushed
    }
    // const_cast: priority_queue::top() is const but we are about to pop.
    Message msg = std::move(const_cast<Timed&>(timer_queue_.top()).msg);
    timer_queue_.pop();
    lk.unlock();
    auto& lane = *lanes_[msg.to % lanes_.size()];
    if (!lane.push(std::move(msg))) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
    lk.lock();
  }
}

void Network::delivery_loop(std::stop_token st, int lane) {
  while (!st.stop_requested()) {
    auto msg = lanes_[lane]->pop();
    if (!msg) return;  // queue closed and drained
    const NodeId to = msg->to;
    if (Log::enabled(LogLevel::kTrace)) {
      HYFLOW_TRACE("deliver ", payload_name(msg->payload), " #", msg->msg_id, " ",
                   msg->from, "->", to, (msg->reply_to ? " (reply)" : ""));
    }
    handlers_[to](std::move(*msg));
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Network::wait_idle() const {
  while (in_flight_.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace hyflow::net
