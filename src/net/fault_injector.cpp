#include "net/fault_injector.hpp"

#include "net/message.hpp"
#include "util/config.hpp"
#include "util/rng.hpp"

namespace hyflow::net {

namespace {
// Distinct decision streams per fault class; a message dropped under one
// seed may instead be duplicated under another, so the streams must not
// correlate across salts.
constexpr std::uint64_t kSaltDrop = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kSaltDup = 0xc2b2ae3d27d4eb4full;
constexpr std::uint64_t kSaltDelay = 0x165667b19e3779f9ull;
constexpr std::uint64_t kSaltSpike = 0x27d4eb2f165667c5ull;
}  // namespace

FaultPlan FaultPlan::from_config(const Config& cfg) {
  FaultPlan plan;
  plan.drop = cfg.get_double("fault-drop", plan.drop);
  plan.duplicate = cfg.get_double("fault-dup", plan.duplicate);
  plan.delay = cfg.get_double("fault-delay", plan.delay);
  plan.delay_spike = sim_us(cfg.get_int("fault-delay-spike-us", plan.delay_spike / 1000));
  plan.seed = static_cast<std::uint64_t>(
      cfg.get_int("fault-seed", static_cast<std::int64_t>(plan.seed)));
  if (cfg.has("fault-partition-end-ms")) {
    PartitionWindow w;
    w.start = sim_ms(cfg.get_int("fault-partition-start-ms", 0));
    w.end = sim_ms(cfg.get_int("fault-partition-end-ms", 0));
    w.cut = static_cast<NodeId>(cfg.get_int("fault-partition-cut", 1));
    plan.partitions.push_back(w);
  }
  if (cfg.has("fault-crash-node")) {
    CrashWindow w;
    w.node = static_cast<NodeId>(cfg.get_int("fault-crash-node", 0));
    w.start = sim_ms(cfg.get_int("fault-crash-start-ms", 0));
    w.end = sim_ms(cfg.get_int("fault-crash-end-ms", 0));
    plan.crashes.push_back(w);
  }
  return plan;
}

double FaultInjector::unit(std::uint64_t key, std::uint64_t salt) const {
  const std::uint64_t bits = mix64(key ^ plan_.seed ^ salt);
  return static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
}

bool FaultInjector::node_crashed(NodeId node, SimTime now) const {
  const SimDuration t = now - epoch_;
  for (const auto& w : plan_.crashes) {
    if (w.node == node && t >= w.start && t < w.end) return true;
  }
  return false;
}

bool FaultInjector::link_partitioned(NodeId from, NodeId to, SimTime now) const {
  const SimDuration t = now - epoch_;
  for (const auto& w : plan_.partitions) {
    if (t < w.start || t >= w.end) continue;
    if ((from < w.cut) != (to < w.cut)) return true;
  }
  return false;
}

SendFate FaultInjector::on_send(const Message& m, SimTime now) {
  SendFate fate;
  if (!plan_.enabled()) return fate;

  if (node_crashed(m.from, now) || node_crashed(m.to, now)) {
    stats_.crash_dropped.fetch_add(1, std::memory_order_relaxed);
    fate.deliver = false;
    return fate;
  }
  if (link_partitioned(m.from, m.to, now)) {
    stats_.partition_dropped.fetch_add(1, std::memory_order_relaxed);
    fate.deliver = false;
    return fate;
  }
  // Fold the retransmission ordinal into the key: each retry of the same
  // msg_id must roll new dice, or a dropped request stays dropped forever.
  const std::uint64_t key =
      mix64(m.msg_id * 0x100000001b3ull + static_cast<std::uint64_t>(m.attempt));
  if (plan_.drop > 0.0 && unit(key, kSaltDrop) < plan_.drop) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    fate.deliver = false;
    return fate;
  }
  if (plan_.duplicate > 0.0 && unit(key, kSaltDup) < plan_.duplicate) {
    stats_.duplicated.fetch_add(1, std::memory_order_relaxed);
    fate.duplicate = true;
  }
  if (plan_.delay > 0.0 && unit(key, kSaltDelay) < plan_.delay) {
    stats_.delayed.fetch_add(1, std::memory_order_relaxed);
    const double u = unit(key, kSaltSpike);
    fate.extra_delay =
        1 + static_cast<SimDuration>(u * static_cast<double>(plan_.delay_spike));
  }
  return fate;
}

}  // namespace hyflow::net
