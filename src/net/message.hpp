// Message envelope for the simulated cluster.
//
// Every inter-node interaction in the system — directory lookups, object
// fetches (Alg. 2/3/4 of the paper), commit-time locking/validation/
// ownership registration, queued-object hand-off — is a Message. The
// envelope carries the sender's logical clock so that node clocks stay
// Lamport-synchronised (TFA's forwarding rule builds on this).
#pragma once

#include <cstdint>

#include "net/payloads.hpp"

namespace hyflow::net {

struct Message {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::uint64_t msg_id = 0;    // cluster-unique, assigned by Network::send
  std::uint64_t reply_to = 0;  // msg_id of the request this answers; 0 = not a reply
  std::uint32_t attempt = 0;   // retransmission ordinal (0 = first send); keyed
                               // into fault injection so retries roll new dice
  std::uint64_t sender_clock = 0;  // sender's TFA logical clock at send time
  Payload payload;
};

}  // namespace hyflow::net
