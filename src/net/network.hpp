// In-process message-passing network with latency simulation.
//
// send() stamps the message with a cluster-unique id and schedules delivery
// `topology.delay(from,to)` in the future. A dispatcher thread pops due
// messages from a timer queue and hands them to a small delivery pool, which
// invokes the destination node's handler. Handlers are required to be
// non-blocking (they may send further messages); anything that must wait —
// a transaction blocked on an object fetch — waits on the *requester* side
// through net::PendingCalls, never inside a handler.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <queue>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault_injector.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"
#include "util/blocking_queue.hpp"
#include "util/mutex.hpp"

namespace hyflow::net {

struct TransportStats {
  std::atomic<std::uint64_t> messages{0};
  std::atomic<std::uint64_t> bytes{0};
  std::atomic<std::uint64_t> object_payloads{0};
  // Messages still queued or in a delivery lane when stop() cut them off.
  std::atomic<std::uint64_t> dropped_on_stop{0};

  void record(const Message& m) {
    messages.fetch_add(1, std::memory_order_relaxed);
    bytes.fetch_add(payload_wire_size(m.payload), std::memory_order_relaxed);
    if (std::holds_alternative<ObjectResponse>(m.payload) &&
        std::get<ObjectResponse>(m.payload).object) {
      object_payloads.fetch_add(1, std::memory_order_relaxed);
    }
  }
};

class Network {
 public:
  using Handler = std::function<void(Message)>;

  // `delivery_threads` sizes the pool that runs node handlers. `fault`
  // configures the (default-off) fault-injection layer.
  explicit Network(Topology topology, int delivery_threads = 2, FaultPlan fault = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Must be called for every node before start().
  void register_handler(NodeId node, Handler handler);

  void start();
  // Idempotent; drains nothing — in-flight messages are dropped, but they
  // are counted (TransportStats::dropped_on_stop) and logged, never lost
  // silently.
  void stop();

  // Assigns msg_id (returned) and schedules delivery. Returns 0 when the
  // network is stopped.
  std::uint64_t send(Message m);

  // Reserve a message id up front so a pending call can be registered
  // before the message is handed to the network (avoids reply races).
  std::uint64_t allocate_msg_id() {
    return next_msg_id_.fetch_add(1, std::memory_order_relaxed);
  }

  const Topology& topology() const { return topology_; }
  const TransportStats& stats() const { return stats_; }
  const FaultInjector& faults() const { return faults_; }

  // Test hook: block until no message is queued or in flight.
  void wait_idle() const;

 private:
  struct Timed {
    SimTime deliver_at;
    std::uint64_t seq;  // tie-break keeps per-pair FIFO for equal deadlines
    Message msg;
    bool operator>(const Timed& other) const {
      return deliver_at != other.deliver_at ? deliver_at > other.deliver_at
                                            : seq > other.seq;
    }
  };

  void dispatcher_loop(std::stop_token st);
  void delivery_loop(std::stop_token st, int lane);

  void schedule(Message m, SimTime deliver_at);

  Topology topology_;
  std::vector<Handler> handlers_;
  TransportStats stats_;
  FaultInjector faults_;

  mutable Mutex timer_mu_{LockRank::kNetTimer, "Network::timer_mu"};
  std::condition_variable_any timer_cv_;
  std::priority_queue<Timed, std::vector<Timed>, std::greater<>> timer_queue_
      GUARDED_BY(timer_mu_);

  // One lane per delivery thread; a node's messages always ride the same
  // lane (to % lanes), so handler invocation per node is serialised and
  // per-pair FIFO survives the pool.
  std::vector<std::unique_ptr<BlockingQueue<Message>>> lanes_;
  std::atomic<std::uint64_t> next_msg_id_{1};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<bool> running_{false};

  int delivery_thread_count_;
  std::vector<std::jthread> threads_;  // dispatcher + delivery pool
};

}  // namespace hyflow::net
