#include "net/rpc.hpp"

#include <chrono>

#include "util/assert.hpp"

namespace hyflow::net {

PendingCalls::CallPtr PendingCalls::open(std::uint64_t msg_id) {
  auto call = std::make_shared<CallState>();
  MutexLock lk(mu_);
  if (closed_) {
    MutexLock call_lk(call->mu);
    call->closed = true;
    return call;
  }
  const bool inserted = calls_.emplace(msg_id, call).second;
  HYFLOW_ASSERT_MSG(inserted, "duplicate pending call id");
  return call;
}

bool PendingCalls::deliver(Message reply) {
  CallPtr call;
  {
    MutexLock lk(mu_);
    auto it = calls_.find(reply.reply_to);
    if (it == calls_.end()) return false;  // orphan
    call = it->second;                     // registration stays: multi-reply
  }
  {
    MutexLock lk(call->mu);
    // The map entry was found, but wait() may have abandoned the call
    // between our map lookup and here; `abandoned` is ordered by call->mu,
    // so exactly one side claims the reply.
    if (call->abandoned) return false;  // orphan
    call->replies.push_back(std::move(reply));
  }
  call->cv.notify_all();
  return true;
}

std::optional<Message> PendingCalls::wait(const CallPtr& call, std::uint64_t msg_id,
                                          std::optional<SimDuration> timeout,
                                          bool abandon_on_timeout) {
  MutexLock lk(call->mu);
  if (timeout) {
    const auto deadline = std::chrono::steady_clock::now() + to_chrono(*timeout);
    bool timed_out = false;
    while (call->replies.empty() && !call->closed && !timed_out) {
      timed_out = call->cv.wait_until(lk, deadline) == std::cv_status::timeout;
    }
    if (call->replies.empty() && !call->closed) {
      if (!abandon_on_timeout) return std::nullopt;  // registration survives
      // Timed out: abandon. A deliver() may be between "found the entry" and
      // "queued the reply", so after deregistering re-check under call->mu;
      // marking `abandoned` under the same lock closes the race where the
      // reply lands after this re-check (it becomes an orphan at deliver()).
      lk.unlock();
      {
        MutexLock map_lk(mu_);
        calls_.erase(msg_id);
      }
      lk.lock();
      if (call->replies.empty()) {
        call->abandoned = true;
        return std::nullopt;  // truly abandoned
      }
    }
  } else {
    while (call->replies.empty() && !call->closed) call->cv.wait(lk);
  }
  if (call->replies.empty()) return std::nullopt;  // closed
  Message out = std::move(call->replies.front());
  call->replies.pop_front();
  return out;
}

void PendingCalls::done(std::uint64_t msg_id) {
  MutexLock lk(mu_);
  calls_.erase(msg_id);
}

void PendingCalls::close_all() {
  std::unordered_map<std::uint64_t, CallPtr> snapshot;
  {
    MutexLock lk(mu_);
    closed_ = true;
    snapshot.swap(calls_);
  }
  for (auto& [id, call] : snapshot) {
    {
      MutexLock lk(call->mu);
      call->closed = true;
    }
    call->cv.notify_all();
  }
}

void PendingCalls::reopen() {
  MutexLock lk(mu_);
  closed_ = false;
}

std::size_t PendingCalls::open_count() const {
  MutexLock lk(mu_);
  return calls_.size();
}

}  // namespace hyflow::net
