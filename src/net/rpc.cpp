#include "net/rpc.hpp"

#include "util/assert.hpp"

namespace hyflow::net {

PendingCalls::CallPtr PendingCalls::open(std::uint64_t msg_id) {
  auto call = std::make_shared<CallState>();
  std::scoped_lock lk(mu_);
  if (closed_) {
    call->closed = true;
    return call;
  }
  const bool inserted = calls_.emplace(msg_id, call).second;
  HYFLOW_ASSERT_MSG(inserted, "duplicate pending call id");
  return call;
}

bool PendingCalls::deliver(Message reply) {
  CallPtr call;
  {
    std::scoped_lock lk(mu_);
    auto it = calls_.find(reply.reply_to);
    if (it == calls_.end()) return false;  // orphan
    call = it->second;                     // registration stays: multi-reply
  }
  {
    std::scoped_lock lk(call->mu);
    // The map entry was found, but wait() may have abandoned the call
    // between our map lookup and here; `abandoned` is ordered by call->mu,
    // so exactly one side claims the reply.
    if (call->abandoned) return false;  // orphan
    call->replies.push_back(std::move(reply));
  }
  call->cv.notify_all();
  return true;
}

std::optional<Message> PendingCalls::wait(const CallPtr& call, std::uint64_t msg_id,
                                          std::optional<SimDuration> timeout,
                                          bool abandon_on_timeout) {
  std::unique_lock lk(call->mu);
  const auto ready = [&] { return !call->replies.empty() || call->closed; };
  if (timeout && !call->cv.wait_for(lk, to_chrono(*timeout), ready)) {
    if (!abandon_on_timeout) return std::nullopt;  // registration survives
    // Timed out: abandon. A deliver() may be between "found the entry" and
    // "queued the reply", so after deregistering re-check under call->mu;
    // marking `abandoned` under the same lock closes the race where the
    // reply lands after this re-check (it becomes an orphan at deliver()).
    lk.unlock();
    {
      std::scoped_lock map_lk(mu_);
      calls_.erase(msg_id);
    }
    lk.lock();
    if (call->replies.empty()) {
      call->abandoned = true;
      return std::nullopt;  // truly abandoned
    }
  } else if (!timeout) {
    call->cv.wait(lk, ready);
  }
  if (call->replies.empty()) return std::nullopt;  // closed
  Message out = std::move(call->replies.front());
  call->replies.pop_front();
  return out;
}

void PendingCalls::done(std::uint64_t msg_id) {
  std::scoped_lock lk(mu_);
  calls_.erase(msg_id);
}

void PendingCalls::close_all() {
  std::unordered_map<std::uint64_t, CallPtr> snapshot;
  {
    std::scoped_lock lk(mu_);
    closed_ = true;
    snapshot.swap(calls_);
  }
  for (auto& [id, call] : snapshot) {
    {
      std::scoped_lock lk(call->mu);
      call->closed = true;
    }
    call->cv.notify_all();
  }
}

void PendingCalls::reopen() {
  std::scoped_lock lk(mu_);
  closed_ = false;
}

std::size_t PendingCalls::open_count() const {
  std::scoped_lock lk(mu_);
  return calls_.size();
}

}  // namespace hyflow::net
