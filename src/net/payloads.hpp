// Wire protocol of the D-STM: one struct per message kind, combined in a
// std::variant. Object state crosses the wire as an immutable snapshot
// (shared_ptr<const AbstractObject>) — the in-process stand-in for a
// serialised object graph.
//
// Protocol map (paper reference):
//   FindOwner*        — the CC protocol's "locate the object" step
//   ObjectRequest     — Alg. 2 Open_Object -> Alg. 3 Retrieve_Request
//   ObjectResponse    — Alg. 3/4 response (object | backoff | wrong owner)
//   NotInterested     — Alg. 4 "send a message to the object owner" when the
//                       requester's backoff already expired
//   Lock/Validate/Commit/AbortUnlock — TFA commit: lock write set, validate
//                       read set, register ownership, release
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dsm/object.hpp"
#include "dsm/object_id.hpp"
#include "dsm/version.hpp"
#include "util/time.hpp"

namespace hyflow::net {

enum class AccessMode : std::uint8_t { kRead = 0, kWrite = 1 };

// The paper's ETS: start, request and expected-commit timestamps of the
// requesting transaction (§III-B), carried on every object request.
struct Ets {
  SimTime start = 0;
  SimTime request = 0;
  SimTime expected_commit = 0;
};

// ---- directory (home node tracks current owner) ----

struct FindOwnerRequest {
  ObjectId oid;
};

struct FindOwnerResponse {
  ObjectId oid;
  NodeId owner = kInvalidNode;
  bool known = false;
};

struct RegisterOwnerRequest {
  ObjectId oid;
  NodeId new_owner = kInvalidNode;
  std::uint64_t version_clock = 0;
};

struct RegisterOwnerResponse {
  ObjectId oid;
  bool ok = false;
};

// ---- object fetch (scheduler hook lives on this path) ----

struct ObjectRequest {
  ObjectId oid;
  TxnId txid;
  AccessMode mode = AccessMode::kRead;
  std::uint32_t requester_cl = 0;  // the paper's myCL
  Ets ets;
};

struct ObjectResponse {
  ObjectId oid;
  TxnId txid;                  // requester's transaction (echoed for routing)
  ObjectSnapshot object;       // null => not granted (aborted or enqueued)
  Version version;
  SimDuration backoff = 0;     // scheduler-assigned backoff (meaning depends on `enqueued`)
  std::uint32_t owner_cl = 0;  // local contention level of oid at the owner
  bool enqueued = false;       // true: parked, the object will be pushed later
  bool wrong_owner = false;    // stale directory entry: re-resolve and retry
  bool handoff = false;        // Alg. 4 queue hand-off: requester must GrantAck
};

struct NotInterested {
  ObjectId oid;
  TxnId txid;
};

// ---- TFA commit protocol ----

struct LockRequest {
  ObjectId oid;
  TxnId txid;
  std::uint64_t expected_clock = 0;  // version the transaction read
};

struct LockResponse {
  ObjectId oid;
  bool granted = false;
  bool wrong_owner = false;
};

struct ValidateRequest {
  ObjectId oid;
  std::uint64_t expected_clock = 0;
};

struct ValidateResponse {
  ObjectId oid;
  bool valid = false;
  bool wrong_owner = false;
  std::uint64_t current_clock = 0;
};

// A requester parked in an object's scheduling list (Alg. 1 `Requester`,
// plus the routing information needed to answer its original request).
struct QueuedRequester {
  NodeId address = kInvalidNode;
  TxnId txid;
  std::uint64_t reply_msg_id = 0;  // msg_id of the parked ObjectRequest
  AccessMode mode = AccessMode::kRead;
  std::uint32_t contention = 0;    // CL recorded when enqueued
  // Policy-defined scheduling rank (lower = served first), carried across
  // ownership hand-offs so the inheriting scheduler keeps its order: Greedy
  // stores the requester's first-start timestamp (older = served first),
  // Karma the inverted accumulated work. FIFO policies leave it 0.
  std::uint64_t priority = 0;
};

struct CommitRequest {
  ObjectId oid;
  TxnId txid;
  Version new_version;
  NodeId new_owner = kInvalidNode;
};

// The old owner acknowledges the commit and hands over the scheduling list
// so the new owner can serve parked requesters with the fresh copy (Alg. 4).
struct CommitResponse {
  ObjectId oid;
  std::vector<QueuedRequester> queue;
};

struct AbortUnlock {  // release a lock taken by a doomed commit (acked: a
  ObjectId oid;       // lost release would wedge the object forever)
  TxnId txid;
};

// Requester confirms it consumed an Alg. 4 grant; until this arrives the
// granting owner keeps the requester queued and re-forwards on timeout, so a
// dropped grant cannot leak the object.
struct GrantAck {
  ObjectId oid;
  TxnId txid;
};

// Generic acknowledgement for one-way-turned-reliable messages (AbortUnlock).
struct Ack {
  ObjectId oid;
};

using Payload =
    std::variant<FindOwnerRequest, FindOwnerResponse, RegisterOwnerRequest,
                 RegisterOwnerResponse, ObjectRequest, ObjectResponse, NotInterested,
                 LockRequest, LockResponse, ValidateRequest, ValidateResponse,
                 CommitRequest, CommitResponse, AbortUnlock, GrantAck, Ack>;

const char* payload_name(const Payload& p);
std::size_t payload_wire_size(const Payload& p);

}  // namespace hyflow::net
