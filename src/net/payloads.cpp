#include "net/payloads.hpp"

namespace hyflow::net {

namespace {
struct NameVisitor {
  const char* operator()(const FindOwnerRequest&) const { return "FindOwnerRequest"; }
  const char* operator()(const FindOwnerResponse&) const { return "FindOwnerResponse"; }
  const char* operator()(const RegisterOwnerRequest&) const { return "RegisterOwnerRequest"; }
  const char* operator()(const RegisterOwnerResponse&) const { return "RegisterOwnerResponse"; }
  const char* operator()(const ObjectRequest&) const { return "ObjectRequest"; }
  const char* operator()(const ObjectResponse&) const { return "ObjectResponse"; }
  const char* operator()(const NotInterested&) const { return "NotInterested"; }
  const char* operator()(const LockRequest&) const { return "LockRequest"; }
  const char* operator()(const LockResponse&) const { return "LockResponse"; }
  const char* operator()(const ValidateRequest&) const { return "ValidateRequest"; }
  const char* operator()(const ValidateResponse&) const { return "ValidateResponse"; }
  const char* operator()(const CommitRequest&) const { return "CommitRequest"; }
  const char* operator()(const CommitResponse&) const { return "CommitResponse"; }
  const char* operator()(const AbortUnlock&) const { return "AbortUnlock"; }
  const char* operator()(const GrantAck&) const { return "GrantAck"; }
  const char* operator()(const Ack&) const { return "Ack"; }
};

struct SizeVisitor {
  // Control messages cost a fixed small frame; object-bearing messages add
  // the object's wire size. Only transport statistics consume this.
  std::size_t operator()(const ObjectResponse& r) const {
    return 48 + (r.object ? r.object->wire_size() : 0);
  }
  std::size_t operator()(const CommitResponse& r) const {
    return 32 + r.queue.size() * 32;
  }
  template <typename T>
  std::size_t operator()(const T&) const {
    return 32;
  }
};
}  // namespace

const char* payload_name(const Payload& p) { return std::visit(NameVisitor{}, p); }

std::size_t payload_wire_size(const Payload& p) { return std::visit(SizeVisitor{}, p); }

}  // namespace hyflow::net
