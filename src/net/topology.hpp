// Metric-space topology (Herlihy & Sun's model assumes nodes scattered in a
// metric space; the paper's testbed used 1-50 ms message-passing links).
//
// Nodes are placed uniformly at random in the unit square; the link delay
// between two nodes is their Euclidean distance mapped linearly onto
// [min_delay, max_delay]. `time_scale` compresses paper milliseconds onto
// the host so an 80-node run finishes in seconds (default: 1 paper ms =
// 50 host µs). Delays are symmetric and fixed for a run ("a static
// network", §IV-A), so per-pair FIFO ordering holds automatically.
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/object_id.hpp"
#include "util/time.hpp"

namespace hyflow::net {

struct TopologyConfig {
  std::uint32_t nodes = 8;
  SimDuration min_delay = sim_us(50);    // paper: 1 ms, scaled
  SimDuration max_delay = sim_us(2500);  // paper: 50 ms, scaled
  SimDuration local_delay = sim_us(1);   // same-node proxy hop
  // Per-message delay jitter as a fraction of the link delay (0 = the
  // paper's static network). Jitter breaks per-pair FIFO, which the
  // protocol tolerates: replies are matched by id and one-way notifications
  // commute (exercised by the jitter tests).
  double jitter = 0.0;
  std::uint64_t seed = 42;
};

class Topology {
 public:
  explicit Topology(const TopologyConfig& cfg);

  std::uint32_t node_count() const { return cfg_.nodes; }
  SimDuration delay(NodeId from, NodeId to) const;

  // Metric distance (abstract units in [0,1.42]); the makespan-bound bench
  // uses it to evaluate the paper's Lemma 3.2/3.3 expressions directly.
  double distance(NodeId from, NodeId to) const;

  const TopologyConfig& config() const { return cfg_; }

 private:
  TopologyConfig cfg_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  double max_distance_ = 1.0;
};

}  // namespace hyflow::net
