// Receiver-side request deduplication for at-least-once delivery.
//
// The retry layer re-sends a lost request under its original msg_id; the
// fault injector can also duplicate any message outright. Re-executing a
// request handler is not always safe (a replayed CommitRequest would find
// the ownership already transferred and hand back an empty queue), so each
// node remembers the requests it has executed and the reply it produced:
// a duplicate is answered from the cache — or silently swallowed for
// one-way messages — without touching protocol state.
//
// The cache is a bounded FIFO. An entry aged out while its requester still
// retries degrades to at-least-once execution, which the protocol tolerates
// (handlers for retried requests are idempotent: reentrant locks, monotonic
// directory registration, duplicate-filtered scheduler queues).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "net/payloads.hpp"
#include "util/mutex.hpp"

namespace hyflow::net {

class ReplyCache {
 public:
  struct Lookup {
    bool duplicate = false;
    // Set when the original request produced a direct reply to replay.
    std::optional<Payload> reply;
  };

  explicit ReplyCache(std::size_t capacity = 8192) : capacity_(capacity) {}

  // Called once per incoming request. First sighting registers the id and
  // returns {duplicate=false}; later sightings return the cached reply, if
  // the handler produced one before the duplicate arrived.
  Lookup admit(std::uint64_t msg_id);

  // Called when the handler replies to `msg_id`; no-op if the entry was
  // already evicted.
  void record_reply(std::uint64_t msg_id, const Payload& payload);

  std::size_t size() const;

 private:
  void evict_locked() REQUIRES(mu_);

  const std::size_t capacity_;
  mutable Mutex mu_{LockRank::kReplyCache, "ReplyCache::mu"};
  std::unordered_map<std::uint64_t, std::optional<Payload>> entries_ GUARDED_BY(mu_);
  std::deque<std::uint64_t> fifo_ GUARDED_BY(mu_);  // insertion order for eviction
};

}  // namespace hyflow::net
