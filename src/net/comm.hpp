// Node-local communication facade used by the protocol layers (dsm
// coherence, TFA runtime). runtime::Node implements it by combining the
// Network, the node's PendingCalls registry, and its TFA logical clock
// (stamped on every outgoing envelope for Lamport synchronisation).
//
// RequestCall is the RAII handle for an outstanding request: wait() blocks
// for the next reply, wait_for() abandons on timeout (late replies become
// orphans, triggering the NotInterested protocol), and the destructor
// deregisters whatever is left.
#pragma once

#include <cstdint>
#include <optional>

#include "net/message.hpp"
#include "net/rpc.hpp"

namespace hyflow::net {

class RequestCall {
 public:
  RequestCall(PendingCalls* registry, PendingCalls::CallPtr call, std::uint64_t msg_id)
      : registry_(registry), call_(std::move(call)), msg_id_(msg_id) {}

  RequestCall(const RequestCall&) = delete;
  RequestCall& operator=(const RequestCall&) = delete;
  RequestCall(RequestCall&& other) noexcept
      : registry_(other.registry_), call_(std::move(other.call_)), msg_id_(other.msg_id_) {
    other.registry_ = nullptr;
  }

  ~RequestCall() {
    if (registry_) registry_->done(msg_id_);
  }

  std::uint64_t id() const { return msg_id_; }

  std::optional<Message> wait() { return registry_->wait(call_, msg_id_, std::nullopt); }

  std::optional<Message> wait_for(SimDuration timeout) {
    return registry_->wait(call_, msg_id_, timeout);
  }

 private:
  PendingCalls* registry_;
  PendingCalls::CallPtr call_;
  std::uint64_t msg_id_;
};

class Comm {
 public:
  virtual ~Comm() = default;

  virtual NodeId self() const = 0;
  virtual std::uint32_t cluster_size() const = 0;

  // Sends a request and returns the handle for its reply/replies.
  virtual RequestCall request(NodeId to, Payload payload) = 0;

  // One-way message (no reply expected).
  virtual void post(NodeId to, Payload payload) = 0;

  // Replies to a received request.
  virtual void reply(const Message& request, Payload payload) = 0;

  // Replies to a request that was *not* received by this node: the queued
  // object hand-off, where the committer answers an ObjectRequest that was
  // parked at the previous owner.
  virtual void reply_routed(NodeId to, std::uint64_t reply_to, Payload payload) = 0;
};

}  // namespace hyflow::net
