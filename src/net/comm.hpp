// Node-local communication facade used by the protocol layers (dsm
// coherence, TFA runtime). runtime::Node implements it by combining the
// Network, the node's PendingCalls registry, and its TFA logical clock
// (stamped on every outgoing envelope for Lamport synchronisation).
//
// RequestCall is the RAII handle for an outstanding request: wait() blocks
// for the next reply, wait_for() abandons on timeout (late replies become
// orphans, triggering the NotInterested protocol), and the destructor
// deregisters whatever is left.
#pragma once

#include <cstdint>
#include <optional>

#include "net/message.hpp"
#include "net/rpc.hpp"

namespace hyflow::net {

class RequestCall {
 public:
  RequestCall(PendingCalls* registry, PendingCalls::CallPtr call, std::uint64_t msg_id)
      : registry_(registry), call_(std::move(call)), msg_id_(msg_id) {}

  RequestCall(const RequestCall&) = delete;
  RequestCall& operator=(const RequestCall&) = delete;
  RequestCall(RequestCall&& other) noexcept
      : registry_(other.registry_), call_(std::move(other.call_)), msg_id_(other.msg_id_) {
    other.registry_ = nullptr;
  }

  ~RequestCall() {
    if (registry_) registry_->done(msg_id_);
  }

  std::uint64_t id() const { return msg_id_; }

  std::optional<Message> wait() { return registry_->wait(call_, msg_id_, std::nullopt); }

  std::optional<Message> wait_for(SimDuration timeout) {
    return registry_->wait(call_, msg_id_, timeout);
  }

  // Like wait_for(), but the call stays registered on timeout — used by the
  // retry layer, which re-sends under the same id and polls again.
  std::optional<Message> poll_for(SimDuration timeout) {
    return registry_->wait(call_, msg_id_, timeout, /*abandon_on_timeout=*/false);
  }

  // True once close_all() hit this call — distinguishes "cluster shutting
  // down" from "reply genuinely lost" when wait_for() returns nothing.
  bool closed() const {
    MutexLock lk(call_->mu);
    return call_->closed;
  }

 private:
  PendingCalls* registry_;
  PendingCalls::CallPtr call_;
  std::uint64_t msg_id_;
};

// Retry schedule for idempotent requests: capped exponential timeouts with
// deterministic per-attempt jitter. Every resend reuses the original msg_id,
// so the pending call keeps matching whichever attempt's reply lands first
// and the receiver can deduplicate by id.
struct RetryPolicy {
  SimDuration base_timeout = sim_ms(8);
  SimDuration max_timeout = sim_ms(50);
  int max_retries = 6;  // resends after the first attempt

  // Timeout for `attempt` (0-based), jittered +-25% by the request id so
  // simultaneous retry storms de-synchronise deterministically.
  SimDuration timeout_for(int attempt, std::uint64_t msg_id) const;

  // Budget multiplier for phases that must not give up early (ownership
  // registration / publication).
  RetryPolicy scaled(int factor) const {
    RetryPolicy p = *this;
    p.max_retries *= factor;
    return p;
  }
};

class Comm {
 public:
  virtual ~Comm() = default;

  virtual NodeId self() const = 0;
  virtual std::uint32_t cluster_size() const = 0;

  // Sends a request and returns the handle for its reply/replies.
  virtual RequestCall request(NodeId to, Payload payload) = 0;

  // One-way message (no reply expected).
  virtual void post(NodeId to, Payload payload) = 0;

  // Replies to a received request.
  virtual void reply(const Message& request, Payload payload) = 0;

  // Replies to a request that was *not* received by this node: the queued
  // object hand-off, where the committer answers an ObjectRequest that was
  // parked at the previous owner.
  virtual void reply_routed(NodeId to, std::uint64_t reply_to, Payload payload) = 0;

  // Re-sends a request under its ORIGINAL msg_id (the pending call stays
  // registered; the receiver's reply cache deduplicates re-execution).
  // `attempt` is the retransmission ordinal (1 = first resend); the fault
  // injector keys on it so retries of a dropped message roll new dice.
  virtual void resend(NodeId to, std::uint64_t msg_id, std::uint32_t attempt,
                      Payload payload) = 0;

  // The node's retry schedule for reliable_wait().
  virtual const RetryPolicy& retry_policy() const = 0;

  // True once the node started shutting down its pending calls — lets
  // callers distinguish "reply lost" (watchdog abort) from "cluster
  // stopping" (shutdown abort) when a wait comes back empty.
  virtual bool closing() const { return false; }
};

// Waits for the reply to `call`, re-sending `payload` to `to` on each
// timeout per `policy`. Returns the reply, or nullopt once the retry budget
// is exhausted (or the registry was closed — check call.closed()). Only
// valid for idempotent requests: the receiver may execute the request more
// than once if its reply cache has aged the entry out.
std::optional<Message> reliable_wait(Comm& comm, RequestCall& call, NodeId to,
                                     const Payload& payload, const RetryPolicy& policy);

}  // namespace hyflow::net
