#include "net/reply_cache.hpp"

namespace hyflow::net {

ReplyCache::Lookup ReplyCache::admit(std::uint64_t msg_id) {
  MutexLock lk(mu_);
  auto [it, inserted] = entries_.try_emplace(msg_id, std::nullopt);
  if (inserted) {
    fifo_.push_back(msg_id);
    evict_locked();
    return {};
  }
  return {true, it->second};
}

void ReplyCache::record_reply(std::uint64_t msg_id, const Payload& payload) {
  MutexLock lk(mu_);
  auto it = entries_.find(msg_id);
  if (it != entries_.end()) it->second = payload;
}

std::size_t ReplyCache::size() const {
  MutexLock lk(mu_);
  return entries_.size();
}

void ReplyCache::evict_locked() {
  while (entries_.size() > capacity_ && !fifo_.empty()) {
    entries_.erase(fifo_.front());
    fifo_.pop_front();
  }
}

}  // namespace hyflow::net
