// Deterministic fault-injection layer for the simulated network.
//
// A FaultPlan describes the adversary: per-message drop/duplication
// probabilities, tail-latency spikes, timed partition windows that cut the
// cluster in two, and timed node crash/recovery windows during which a node
// neither sends nor receives (fail-recover: the node's in-memory state
// survives, only its links go dark — the simulated stand-in for a process
// restart with a durable store).
//
// Every per-message decision is a pure function of (msg_id, attempt, seed),
// so the same message stream produces the same faults: two runs with the
// same `--fault-seed` inject identical fault counts, which is what makes
// chaos failures replayable. The retransmission ordinal must be part of the
// key: retries reuse the original msg_id, and hashing the id alone would
// make every retry of a dropped request share its fate — a 2% drop rate
// would permanently black-hole 2% of RPCs no matter the retry budget.
// Time windows are evaluated against an epoch set by `arm()`
// (Network::start).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "dsm/object_id.hpp"
#include "util/time.hpp"

namespace hyflow {
class Config;
}

namespace hyflow::net {

struct Message;

struct FaultPlan {
  double drop = 0.0;       // P(message silently lost)
  double duplicate = 0.0;  // P(message delivered twice)
  double delay = 0.0;      // P(extra tail-latency spike added)
  SimDuration delay_spike = sim_ms(2);  // spike magnitude (uniform in (0, spike])
  std::uint64_t seed = 1;

  // Messages crossing the cut (node < cut vs node >= cut) are dropped
  // while `start <= now - epoch < end`.
  struct PartitionWindow {
    SimDuration start = 0;
    SimDuration end = 0;
    NodeId cut = 1;
  };
  std::vector<PartitionWindow> partitions;

  // `node` is unreachable (neither sends nor receives) while
  // `start <= now - epoch < end`; it recovers with its state intact.
  struct CrashWindow {
    NodeId node = kInvalidNode;
    SimDuration start = 0;
    SimDuration end = 0;
  };
  std::vector<CrashWindow> crashes;

  bool enabled() const {
    return drop > 0.0 || duplicate > 0.0 || delay > 0.0 || !partitions.empty() ||
           !crashes.empty();
  }

  // Reads the `--fault-*` flags (see EXPERIMENTS.md):
  //   --fault-drop=P --fault-dup=P --fault-delay=P --fault-delay-spike-us=N
  //   --fault-seed=N
  //   --fault-partition-start-ms/-end-ms/-cut  (one window)
  //   --fault-crash-node/-start-ms/-end-ms     (one window)
  static FaultPlan from_config(const Config& cfg);
};

// Injection counters; every injected fault increments exactly one counter.
struct FaultStats {
  std::atomic<std::uint64_t> dropped{0};            // random per-message loss
  std::atomic<std::uint64_t> duplicated{0};         // extra copies scheduled
  std::atomic<std::uint64_t> delayed{0};            // tail spikes added
  std::atomic<std::uint64_t> partition_dropped{0};  // lost crossing a cut
  std::atomic<std::uint64_t> crash_dropped{0};      // lost at a dark node

  std::uint64_t total() const {
    return dropped.load() + duplicated.load() + delayed.load() +
           partition_dropped.load() + crash_dropped.load();
  }
};

// What Network::send should do with one message.
struct SendFate {
  bool deliver = true;         // false: drop silently (counted)
  bool duplicate = false;      // true: schedule a second copy
  SimDuration extra_delay = 0; // added to the topology delay
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {}) : plan_(std::move(plan)) {}

  // Starts the partition/crash clocks; windows are offsets from `epoch`.
  void arm(SimTime epoch) { epoch_ = epoch; }

  bool enabled() const { return plan_.enabled(); }
  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

  // Decides the fate of a message about to be scheduled. `now` is the send
  // time used for window checks (passed in for testability).
  SendFate on_send(const Message& m, SimTime now);

  bool node_crashed(NodeId node, SimTime now) const;
  bool link_partitioned(NodeId from, NodeId to, SimTime now) const;

 private:
  double unit(std::uint64_t key, std::uint64_t salt) const;

  FaultPlan plan_;
  FaultStats stats_;
  SimTime epoch_ = 0;
};

}  // namespace hyflow::net
