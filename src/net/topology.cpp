#include "net/topology.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hyflow::net {

Topology::Topology(const TopologyConfig& cfg) : cfg_(cfg) {
  HYFLOW_ASSERT(cfg.nodes >= 1);
  HYFLOW_ASSERT(cfg.min_delay >= 0 && cfg.max_delay >= cfg.min_delay);
  Xoshiro256 rng(cfg.seed);
  xs_.resize(cfg.nodes);
  ys_.resize(cfg.nodes);
  for (std::uint32_t i = 0; i < cfg.nodes; ++i) {
    xs_[i] = rng.uniform();
    ys_[i] = rng.uniform();
  }
  // Normalise by the actual diameter so the delay range is fully used even
  // for small clusters.
  max_distance_ = 1e-9;
  for (std::uint32_t i = 0; i < cfg.nodes; ++i)
    for (std::uint32_t j = i + 1; j < cfg.nodes; ++j)
      max_distance_ = std::max(max_distance_, distance(i, j));
}

double Topology::distance(NodeId from, NodeId to) const {
  HYFLOW_ASSERT(from < cfg_.nodes && to < cfg_.nodes);
  const double dx = xs_[from] - xs_[to];
  const double dy = ys_[from] - ys_[to];
  return std::sqrt(dx * dx + dy * dy);
}

SimDuration Topology::delay(NodeId from, NodeId to) const {
  if (from == to) return cfg_.local_delay;
  const double norm = distance(from, to) / max_distance_;
  return cfg_.min_delay +
         static_cast<SimDuration>(norm * static_cast<double>(cfg_.max_delay - cfg_.min_delay));
}

}  // namespace hyflow::net
