#include "core/contention.hpp"

#include <algorithm>

namespace hyflow::core {

void ContentionTracker::record_request(ObjectId oid, TxnId txid, SimTime now) {
  MutexLock lk(mu_);
  auto& samples = recent_[oid];
  prune(samples, now);
  const auto it = std::find_if(samples.begin(), samples.end(),
                               [&](const Sample& s) { return s.txid == txid; });
  if (it != samples.end()) {
    it->at = now;  // refresh, still one distinct transaction
  } else {
    samples.push_back(Sample{txid, now});
    // Bound per-object memory; the CL heuristic saturates far below this.
    if (samples.size() > 256) samples.pop_front();
  }
}

std::uint32_t ContentionTracker::local_cl(ObjectId oid, SimTime now) const {
  MutexLock lk(mu_);
  auto it = recent_.find(oid);
  if (it == recent_.end()) return 0;
  prune(it->second, now);
  return static_cast<std::uint32_t>(it->second.size());
}

void ContentionTracker::forget(ObjectId oid) {
  MutexLock lk(mu_);
  recent_.erase(oid);
}

void ContentionTracker::prune(std::deque<Sample>& samples, SimTime now) const {
  while (!samples.empty() && samples.front().at + window_ < now) samples.pop_front();
}

}  // namespace hyflow::core
