#include "core/karma_scheduler.hpp"

#include <algorithm>

namespace hyflow::core {

namespace {

// Investment rank: highest invested work is served first, so the wire rank
// (lower = served first) is the inverted investment.
std::uint64_t investment_rank(SimDuration invested) {
  const auto work = static_cast<std::uint64_t>(std::max<SimDuration>(invested, 0));
  return ~work;  // UINT64_MAX - work
}

}  // namespace

KarmaScheduler::KarmaScheduler(const SchedulerConfig& cfg)
    : cfg_(cfg), rng_(cfg.karma_seed) {}

SimDuration KarmaScheduler::draw_backoff(std::uint32_t losses) {
  // Polka: uniform draw from a window doubling per consecutive loss.
  const std::uint32_t exponent = std::min<std::uint32_t>(losses, 10);
  const SimDuration window =
      std::min<SimDuration>(cfg_.min_backoff << exponent, cfg_.max_backoff);
  const auto lo = static_cast<std::uint64_t>(cfg_.min_backoff);
  const auto hi = static_cast<std::uint64_t>(std::max<SimDuration>(window, cfg_.min_backoff));
  return static_cast<SimDuration>(lo + rng_.below(hi - lo + 1));
}

ConflictDecision KarmaScheduler::on_conflict(const ConflictContext& ctx) {
  const SimDuration invested = ctx.request.ets.request - ctx.request.ets.start;
  const TxnKey key{ctx.requester_node, ctx.request.ets.start};

  return table_.with_list(ctx.oid, [&](RequesterList& list) -> ConflictDecision {
    list.remove_duplicate(ctx.request.txid);

    MutexLock lk(karma_mu_);
    const auto streak_it = losses_.find(key);
    const std::uint32_t losses = streak_it == losses_.end() ? 0 : streak_it->second;
    const SimDuration boost = static_cast<SimDuration>(losses) * cfg_.handoff_slack;
    const std::uint64_t rank = investment_rank(invested + boost);

    // The queue is sorted by inverted investment, so its *tail* carries the
    // smallest investment — the bar a newcomer must clear to join. Losing
    // (under-invested, or queue full) costs an abort plus a randomized
    // exponentially-growing stall, and raises the loser's karma so a repeat
    // offender eventually clears the bar.
    if (list.size() >= cfg_.max_queue || (!list.empty() && rank > list.tail_priority())) {
      if (losses_.size() > 4096) losses_.clear();  // crude bound; streaks re-learn
      losses_[key] = losses + 1;
      return {ConflictAction::kAbortWithStall, draw_backoff(losses + 1)};
    }

    // Win: park ranked by investment; forget the streak.
    losses_.erase(key);
    net::QueuedRequester r{ctx.requester_node, ctx.request.txid, ctx.request_msg_id,
                           ctx.request.mode, ctx.local_cl, rank};
    list.add_sorted(list.contention() + 1, std::move(r));
    const SimDuration backoff = ctx.validator_remaining + list.bk() + cfg_.handoff_slack;
    list.add_bk(std::clamp<SimDuration>(
        ctx.request.ets.expected_commit - ctx.request.ets.request, cfg_.min_backoff,
        cfg_.max_backoff));
    return {ConflictAction::kEnqueue, backoff};
  });
}

std::vector<net::QueuedRequester> KarmaScheduler::on_object_available(ObjectId oid) {
  return table_.pop_head_group(oid);
}

std::vector<net::QueuedRequester> KarmaScheduler::extract_queue(ObjectId oid) {
  return table_.drain(oid);
}

void KarmaScheduler::absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) {
  if (queue.empty()) return;
  table_.with_list(oid, [&](RequesterList& list) {
    for (auto& r : queue) {
      list.remove_duplicate(r.txid);
      list.add_sorted(std::max(list.contention(), r.contention), std::move(r));
    }
    return 0;
  });
}

void KarmaScheduler::remove_requester(ObjectId oid, TxnId txid) { table_.remove(oid, txid); }

std::size_t KarmaScheduler::queue_depth(ObjectId oid) const { return table_.depth(oid); }

std::size_t KarmaScheduler::total_queued() const { return table_.total_queued(); }

std::uint32_t KarmaScheduler::loss_streak(NodeId node, SimTime ets_start) const {
  MutexLock lk(karma_mu_);
  const auto it = losses_.find(TxnKey{node, ets_start});
  return it == losses_.end() ? 0 : it->second;
}

}  // namespace hyflow::core
