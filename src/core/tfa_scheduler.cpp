#include "core/tfa_scheduler.hpp"

// All behaviour is inline; this TU anchors the vtable.
