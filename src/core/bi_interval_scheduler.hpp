// Bi-interval scheduler — an extension baseline from the authors' prior
// work (Kim & Ravindran, SSS 2010, the paper's ref [17]; itself extending
// Attiya & Milani's BIMODAL to dataflow D-STM).
//
// Bi-interval groups conflicting requesters into *reading* and *writing*
// intervals: every queued reader is released together (one object copy
// broadcast serves the whole read interval), writers are serialised behind
// them. Unlike RTS it has no execution-time or contention-level heuristics —
// every conflicting requester is parked, bounded only by a queue cap — so
// comparing the two isolates the value of RTS's reactive abort/enqueue
// decision (see bench/ext_bi_interval).
#pragma once

#include "core/requester_list.hpp"
#include "core/scheduler.hpp"

namespace hyflow::core {

class BiIntervalScheduler : public Scheduler {
 public:
  explicit BiIntervalScheduler(const SchedulerConfig& cfg);

  const char* name() const override { return "bi-interval"; }

  ConflictDecision on_conflict(const ConflictContext& ctx) override;
  std::vector<net::QueuedRequester> on_object_available(ObjectId oid) override;
  std::vector<net::QueuedRequester> extract_queue(ObjectId oid) override;
  void absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) override;
  void remove_requester(ObjectId oid, TxnId txid) override;
  std::size_t queue_depth(ObjectId oid) const override;
  std::size_t total_queued() const override;

 private:
  SchedulerConfig cfg_;
  SchedulingTable table_;
};

}  // namespace hyflow::core
