// Karma/Polka contention manager (Scherer & Scott, PODC 2005 / "Polka" =
// Karma + randomized exponential backoff) adapted to the owner-side conflict
// hook.
//
// Priority is the work a transaction has invested since its *first* attempt
// (ETS.r - ETS.s — investment survives aborts, exactly like Karma's opened-
// object count), plus a karma boost earned per lost conflict. On conflict:
//   * the requester *wins* when its invested work matches or exceeds the
//     smallest investment already queued on the object — it parks, ranked by
//     investment (biggest first), and is served before lighter waiters;
//   * it *loses* otherwise: it aborts and stalls for a randomized
//     exponentially-growing backoff (Polka's signature move) whose exponent
//     is its consecutive-loss streak, and its karma rises so a repeat
//     offender eventually outranks the queue.
//
// Loss streaks are keyed by (requester node, ETS.s) — the stable identity of
// a root transaction across retries, since every retry keeps its original
// first-attempt timestamp — and are dropped on a win or when the table is
// swept (bounded memory).
#pragma once

#include <unordered_map>

#include "core/requester_list.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace hyflow::core {

class KarmaScheduler : public Scheduler {
 public:
  explicit KarmaScheduler(const SchedulerConfig& cfg);

  const char* name() const override { return "karma"; }

  ConflictDecision on_conflict(const ConflictContext& ctx) override;
  std::vector<net::QueuedRequester> on_object_available(ObjectId oid) override;
  std::vector<net::QueuedRequester> extract_queue(ObjectId oid) override;
  void absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) override;
  void remove_requester(ObjectId oid, TxnId txid) override;
  std::size_t queue_depth(ObjectId oid) const override;
  std::size_t total_queued() const override;

  // Test hook: consecutive losses currently charged to (node, ets_start).
  std::uint32_t loss_streak(NodeId node, SimTime ets_start) const;

 private:
  struct TxnKey {
    NodeId node;
    SimTime start;
    bool operator==(const TxnKey&) const = default;
  };
  struct TxnKeyHash {
    std::size_t operator()(const TxnKey& k) const {
      return mix64((static_cast<std::uint64_t>(k.node) << 48) ^
                   static_cast<std::uint64_t>(k.start));
    }
  };

  // Randomized exponential backoff for the `losses`-th consecutive loss.
  SimDuration draw_backoff(std::uint32_t losses) REQUIRES(karma_mu_);

  SchedulerConfig cfg_;
  SchedulingTable table_;
  mutable Mutex karma_mu_{LockRank::kSchedulerAux, "KarmaScheduler::karma_mu"};
  std::unordered_map<TxnKey, std::uint32_t, TxnKeyHash> losses_ GUARDED_BY(karma_mu_);
  Xoshiro256 rng_ GUARDED_BY(karma_mu_);
};

}  // namespace hyflow::core
