#include "core/greedy_scheduler.hpp"

#include <algorithm>

namespace hyflow::core {

GreedyScheduler::GreedyScheduler(const SchedulerConfig& cfg) : cfg_(cfg) {}

ConflictDecision GreedyScheduler::on_conflict(const ConflictContext& ctx) {
  return table_.with_list(ctx.oid, [&](RequesterList& list) -> ConflictDecision {
    list.remove_duplicate(ctx.request.txid);
    if (list.size() >= cfg_.max_queue) return {ConflictAction::kAbort, 0};

    // Rank = first-attempt start timestamp: the queue stays sorted oldest
    // first, so pop_head_group always serves the most senior requester(s).
    net::QueuedRequester r{ctx.requester_node, ctx.request.txid, ctx.request_msg_id,
                           ctx.request.mode, ctx.local_cl,
                           static_cast<std::uint64_t>(ctx.request.ets.start)};
    list.add_sorted(list.contention() + 1, std::move(r));

    // The parked open waits out the validator plus everything queued; the
    // newcomer's own expected remainder joins the accumulator so later
    // arrivals wait behind it.
    const SimDuration backoff = ctx.validator_remaining + list.bk() + cfg_.handoff_slack;
    list.add_bk(std::clamp<SimDuration>(
        ctx.request.ets.expected_commit - ctx.request.ets.request, cfg_.min_backoff,
        cfg_.max_backoff));
    return {ConflictAction::kEnqueue, backoff};
  });
}

std::vector<net::QueuedRequester> GreedyScheduler::on_object_available(ObjectId oid) {
  return table_.pop_head_group(oid);
}

std::vector<net::QueuedRequester> GreedyScheduler::extract_queue(ObjectId oid) {
  return table_.drain(oid);
}

void GreedyScheduler::absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) {
  if (queue.empty()) return;
  table_.with_list(oid, [&](RequesterList& list) {
    for (auto& r : queue) {
      list.remove_duplicate(r.txid);
      list.add_sorted(std::max(list.contention(), r.contention), std::move(r));
    }
    return 0;
  });
}

void GreedyScheduler::remove_requester(ObjectId oid, TxnId txid) { table_.remove(oid, txid); }

std::size_t GreedyScheduler::queue_depth(ObjectId oid) const { return table_.depth(oid); }

std::size_t GreedyScheduler::total_queued() const { return table_.total_queued(); }

}  // namespace hyflow::core
