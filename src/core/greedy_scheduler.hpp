// Greedy contention manager (Guerraoui, Herlihy & Pochon, PODC 2005) adapted
// to the owner-side conflict hook of this D-STM: priority is the
// transaction's first-attempt start timestamp (ETS.s, which survives aborts),
// and the oldest transaction wins.
//
// The classic formulation aborts the *younger* of the two parties. Here the
// losing party is always the requester (the validator holds the object and
// cannot be aborted mid-commit), so age decides between *waiting* and
// *aborting* instead:
//   * the requester parks in timestamp order — an older transaction is
//     inserted ahead of every younger one and is served first when the
//     object frees up, so seniority is never starved, and
//   * a requester that would overflow the queue cap aborts and retries —
//     timestamps keep rising monotonically, so a retrying old transaction
//     keeps its priority and eventually outranks the queue.
//
// Sharma & Busch's competitive analysis (PAPERS.md) uses exactly this
// Greedy-style timestamp manager as the baseline a reactive scheduler must
// beat, which is why it earns a slot in the zoo.
#pragma once

#include "core/requester_list.hpp"
#include "core/scheduler.hpp"

namespace hyflow::core {

class GreedyScheduler : public Scheduler {
 public:
  explicit GreedyScheduler(const SchedulerConfig& cfg);

  const char* name() const override { return "greedy"; }

  ConflictDecision on_conflict(const ConflictContext& ctx) override;
  std::vector<net::QueuedRequester> on_object_available(ObjectId oid) override;
  std::vector<net::QueuedRequester> extract_queue(ObjectId oid) override;
  void absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) override;
  void remove_requester(ObjectId oid, TxnId txid) override;
  std::size_t queue_depth(ObjectId oid) const override;
  std::size_t total_queued() const override;

 private:
  SchedulerConfig cfg_;
  SchedulingTable table_;
};

}  // namespace hyflow::core
