#include "core/steal_on_abort_scheduler.hpp"

#include <algorithm>

namespace hyflow::core {

StealOnAbortScheduler::StealOnAbortScheduler(const SchedulerConfig& cfg) : cfg_(cfg) {}

ConflictDecision StealOnAbortScheduler::on_conflict(const ConflictContext& ctx) {
  return table_.with_list(ctx.oid, [&](RequesterList& list) -> ConflictDecision {
    list.remove_duplicate(ctx.request.txid);
    // Steal every conflicting requester, FIFO, bounded only by the cap —
    // no execution-time or contention heuristics.
    if (list.size() >= cfg_.max_queue) return {ConflictAction::kAbort, 0};
    const SimDuration backoff = ctx.validator_remaining + list.bk() + cfg_.handoff_slack;
    list.add_bk(std::clamp<SimDuration>(
        ctx.request.ets.expected_commit - ctx.request.ets.request, cfg_.min_backoff,
        cfg_.max_backoff));
    list.add(list.contention() + 1,
             net::QueuedRequester{ctx.requester_node, ctx.request.txid, ctx.request_msg_id,
                                  ctx.request.mode, ctx.local_cl, 0});
    return {ConflictAction::kEnqueue, backoff};
  });
}

std::vector<net::QueuedRequester> StealOnAbortScheduler::on_object_available(ObjectId oid) {
  return table_.pop_head_group(oid);
}

std::vector<net::QueuedRequester> StealOnAbortScheduler::extract_queue(ObjectId oid) {
  return table_.drain(oid);
}

void StealOnAbortScheduler::absorb_queue(ObjectId oid,
                                         std::vector<net::QueuedRequester> queue) {
  if (queue.empty()) return;
  // The stolen requesters are re-queued *behind* anything already parked at
  // the winner's node: they lost to the committed transaction, so everyone
  // who queued against the fresh copy goes first.
  table_.with_list(oid, [&](RequesterList& list) {
    for (auto& r : queue) {
      list.remove_duplicate(r.txid);
      list.add(std::max(list.contention(), r.contention), std::move(r));
    }
    return 0;
  });
}

void StealOnAbortScheduler::remove_requester(ObjectId oid, TxnId txid) {
  table_.remove(oid, txid);
}

std::size_t StealOnAbortScheduler::queue_depth(ObjectId oid) const {
  return table_.depth(oid);
}

std::size_t StealOnAbortScheduler::total_queued() const { return table_.total_queued(); }

}  // namespace hyflow::core
