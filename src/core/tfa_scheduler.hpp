// Plain-TFA baseline: no transactional scheduler. A requester that hits an
// object under validation aborts and retries immediately, re-fetching every
// object of the parent and of all its nested transactions (§IV-C "TFA").
#pragma once

#include "core/scheduler.hpp"

namespace hyflow::core {

class TfaScheduler : public Scheduler {
 public:
  const char* name() const override { return "tfa"; }

  ConflictDecision on_conflict(const ConflictContext& ctx) override {
    (void)ctx;
    return {ConflictAction::kAbort, 0};
  }
};

}  // namespace hyflow::core
