// Steal-on-abort (Ansari et al., HiPEAC 2009) adapted to the dataflow D-STM.
//
// The original observation: when transaction A aborts B, making B retry
// "blind" usually recreates the same conflict; it is cheaper for A to *steal*
// B — park it and everything waiting behind it — and release the stolen
// transactions only after A commits, serialized behind the winner.
//
// In this runtime the stealing mechanism is the queue hand-off that already
// rides the commit protocol (Alg. 4): every conflicting requester is parked
// FIFO (no admission heuristics — that contrast isolates RTS's reactive
// abort/enqueue rule), and when the winner commits and ownership moves, the
// loser-side queue travels with the object (extract_queue/absorb_queue) and
// is re-queued *behind* whatever the winner's node has parked meanwhile —
// the stolen requesters wait for the winner instead of retrying blind.
#pragma once

#include "core/requester_list.hpp"
#include "core/scheduler.hpp"

namespace hyflow::core {

class StealOnAbortScheduler : public Scheduler {
 public:
  explicit StealOnAbortScheduler(const SchedulerConfig& cfg);

  const char* name() const override { return "steal-on-abort"; }

  ConflictDecision on_conflict(const ConflictContext& ctx) override;
  std::vector<net::QueuedRequester> on_object_available(ObjectId oid) override;
  std::vector<net::QueuedRequester> extract_queue(ObjectId oid) override;
  void absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) override;
  void remove_requester(ObjectId oid, TxnId txid) override;
  std::size_t queue_depth(ObjectId oid) const override;
  std::size_t total_queued() const override;

 private:
  SchedulerConfig cfg_;
  SchedulingTable table_;
};

}  // namespace hyflow::core
