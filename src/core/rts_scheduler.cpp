#include "core/rts_scheduler.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace hyflow::core {

RtsScheduler::RtsScheduler(const SchedulerConfig& cfg) : cfg_(cfg) {
  if (cfg.adaptive_threshold) {
    controller_ = std::make_unique<ThresholdController>(cfg.cl_threshold);
  }
}

std::uint32_t RtsScheduler::current_threshold() const {
  return controller_ ? controller_->threshold() : cfg_.cl_threshold;
}

ConflictDecision RtsScheduler::on_conflict(const ConflictContext& ctx) {
  return table_.with_list(ctx.oid, [&](RequesterList& list) -> ConflictDecision {
    // Alg. 3 line 10: a requester whose backoff expired re-requests as a
    // new transaction attempt; purge its stale queue entry first.
    list.remove_duplicate(ctx.request.txid);

    // The wait ahead of a new arrival: the validator's remaining validation
    // time (|t7 - t4| in Fig. 3) plus the expected execution of everything
    // already queued (`bk`, Alg. 3's per-object backoff accumulator).
    const SimDuration wait_ahead = ctx.validator_remaining + list.bk();

    // Alg. 3 line 11 / Fig. 3: enqueue only if the transaction has been
    // running longer than it would wait — a short transaction loses less
    // by restarting than by queueing.
    const SimDuration exec_so_far = ctx.request.ets.request - ctx.request.ets.start;
    if (wait_ahead >= exec_so_far) return {ConflictAction::kAbort, 0};

    // Alg. 3 lines 12-13: contention = queue CL + requester's myCL.
    const std::uint32_t contention = list.contention() + ctx.request.requester_cl;
    if (contention >= current_threshold()) return {ConflictAction::kAbort, 0};

    // Alg. 3 lines 14-16: the assigned backoff covers the wait ahead (plus
    // slack for the hand-off hops); the requester's own expected remaining
    // execution is added to `bk` so the *next* arrival waits behind it
    // (Fig. 3: T5's backoff = |t7 - t5| + expected execution of T4).
    const SimDuration backoff = wait_ahead + cfg_.handoff_slack;
    const SimDuration expected_rest =
        std::clamp<SimDuration>(ctx.request.ets.expected_commit - ctx.request.ets.request,
                                cfg_.min_backoff, cfg_.max_backoff);
    list.add_bk(expected_rest);
    list.add(contention,
             net::QueuedRequester{ctx.requester_node, ctx.request.txid, ctx.request_msg_id,
                                  ctx.request.mode, contention});
    HYFLOW_DEBUG("rts: enqueue txn ", ctx.request.txid.value, " on object ", ctx.oid.value,
                 " backoff_ns=", backoff, " contention=", contention);
    return {ConflictAction::kEnqueue, backoff};
  });
}

std::vector<net::QueuedRequester> RtsScheduler::on_object_available(ObjectId oid) {
  return table_.pop_head_group(oid);
}

std::vector<net::QueuedRequester> RtsScheduler::extract_queue(ObjectId oid) {
  return table_.drain(oid);
}

void RtsScheduler::absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) {
  if (queue.empty()) return;
  table_.with_list(oid, [&](RequesterList& list) {
    for (auto& r : queue) {
      list.remove_duplicate(r.txid);
      list.add(std::max(list.contention(), r.contention), std::move(r));
    }
    return 0;
  });
}

void RtsScheduler::remove_requester(ObjectId oid, TxnId txid) { table_.remove(oid, txid); }

void RtsScheduler::note_commit(SimTime now) {
  if (controller_) controller_->note_commit(now);
}

std::size_t RtsScheduler::queue_depth(ObjectId oid) const { return table_.depth(oid); }

std::size_t RtsScheduler::total_queued() const { return table_.total_queued(); }

}  // namespace hyflow::core
