// Transactional-scheduler interface.
//
// The TFA runtime consults the scheduler in exactly one situation: a
// (root/parent) transaction requested an object that is currently locked,
// i.e. being validated by another transaction's commit (§II: "Transactions
// that request an object being validated must abort" — unless the scheduler
// says otherwise). The scheduler answers with one of:
//
//   kAbort          — the requester aborts and retries immediately (TFA)
//   kAbortWithStall — the requester aborts but stalls `backoff` before the
//                     retry (the TFA+Backoff baseline)
//   kEnqueue        — the requester's open blocks for up to `backoff`; the
//                     scheduler parked it in the object's requester list and
//                     the object will be pushed to it on unlock/commit (RTS)
//
// Queue-management entry points are called by the runtime on unlock, abort,
// ownership transfer and NotInterested; they are no-ops for queue-less
// schedulers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dsm/object_id.hpp"
#include "net/payloads.hpp"
#include "util/time.hpp"

namespace hyflow::core {

enum class ConflictAction { kAbort, kAbortWithStall, kEnqueue };

struct ConflictDecision {
  ConflictAction action = ConflictAction::kAbort;
  SimDuration backoff = 0;
};

struct ConflictContext {
  ObjectId oid;
  NodeId requester_node = kInvalidNode;
  std::uint64_t request_msg_id = 0;  // routing id for the parked reply
  net::ObjectRequest request;        // txid, mode, myCL, ETS
  std::uint32_t local_cl = 0;        // owner-side window CL of oid
  // Expected time until the transaction currently validating this object
  // releases it — the paper's |t7 - t4| (Fig. 3), estimated at the owner
  // from its history of lock-hold durations.
  SimDuration validator_remaining = 0;
  SimTime now = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual const char* name() const = 0;

  // Decide the fate of a conflicting requester; on kEnqueue the scheduler
  // has already parked it.
  virtual ConflictDecision on_conflict(const ConflictContext& ctx) = 0;

  // Object became available at this node (commit installed a new version,
  // an abort released the lock, or a served requester declined). Returns
  // the requesters to serve *now* (one writer or all leading readers).
  virtual std::vector<net::QueuedRequester> on_object_available(ObjectId oid) {
    (void)oid;
    return {};
  }

  // Ownership is moving away: hand the whole queue to the new owner.
  virtual std::vector<net::QueuedRequester> extract_queue(ObjectId oid) {
    (void)oid;
    return {};
  }

  // This node became owner and inherited the previous owner's queue.
  virtual void absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) {
    (void)oid;
    (void)queue;
  }

  // A served requester answered "not interested" (its backoff expired).
  virtual void remove_requester(ObjectId oid, TxnId txid) {
    (void)oid;
    (void)txid;
  }

  // Commit feedback for adaptive threshold control.
  virtual void note_commit(SimTime now) { (void)now; }

  virtual std::size_t queue_depth(ObjectId oid) const {
    (void)oid;
    return 0;
  }
  virtual std::size_t total_queued() const { return 0; }
};

struct SchedulerConfig {
  std::string kind = "rts";                 // see scheduler_names()
  std::uint32_t cl_threshold = 3;           // RTS: CL threshold (paper §III-B)
  bool adaptive_threshold = false;          // RTS: hill-climb the threshold
  SimDuration min_backoff = sim_us(100);    // clamp for unseeded stats tables
  SimDuration max_backoff = sim_ms(100);
  SimDuration contention_window = sim_ms(20);
  // Extra wait granted on top of the computed queue position: covers the
  // hand-off hops (commit ack -> queue transfer -> object push).
  SimDuration handoff_slack = sim_ms(6);
  // Queue cap for the park-everything challengers (greedy, karma,
  // steal-on-abort): a conflicting requester that would make the per-object
  // queue longer than this aborts instead of parking.
  std::uint32_t max_queue = 16;
  // Karma/Polka: seed of the randomized exponential backoff drawn on loss.
  std::uint64_t karma_seed = 0x5eed;
};

// Constructs the policy selected by `cfg.kind` (canonical name or alias).
// An unknown kind is a fatal configuration error: the process aborts with a
// message listing every valid name.
std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& cfg);

// Canonical names of every registered policy, in bench-sweep order.
std::vector<std::string> scheduler_names();

// Maps a kind or alias ("backoff", "bi") to its canonical name; returns an
// empty string for unknown kinds.
std::string canonical_scheduler_name(const std::string& kind);

}  // namespace hyflow::core
