#include "core/requester_list.hpp"

#include <algorithm>

namespace hyflow::core {

void RequesterList::add(std::uint32_t contention, net::QueuedRequester requester) {
  contention_level_ = contention;
  queue_.push_back(std::move(requester));
}

void RequesterList::add_sorted(std::uint32_t contention, net::QueuedRequester requester) {
  contention_level_ = contention;
  const auto pos = std::find_if(queue_.begin(), queue_.end(),
                                [&](const net::QueuedRequester& r) {
                                  return r.priority > requester.priority;
                                });
  queue_.insert(pos, std::move(requester));
}

bool RequesterList::remove_duplicate(TxnId txid) {
  const auto it = std::find_if(queue_.begin(), queue_.end(),
                               [&](const net::QueuedRequester& r) { return r.txid == txid; });
  if (it == queue_.end()) return false;
  queue_.erase(it);
  maybe_reset();
  return true;
}

std::vector<net::QueuedRequester> RequesterList::pop_head_group() {
  std::vector<net::QueuedRequester> group;
  if (queue_.empty()) return group;
  if (queue_.front().mode == net::AccessMode::kWrite) {
    group.push_back(std::move(queue_.front()));
    queue_.pop_front();
  } else {
    while (!queue_.empty() && queue_.front().mode == net::AccessMode::kRead) {
      group.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
  }
  maybe_reset();
  return group;
}

std::vector<net::QueuedRequester> RequesterList::drain() {
  std::vector<net::QueuedRequester> all(queue_.begin(), queue_.end());
  queue_.clear();
  maybe_reset();
  return all;
}

void RequesterList::maybe_reset() {
  if (queue_.empty()) {
    contention_level_ = 0;
    bk_ = 0;
  }
}

std::vector<net::QueuedRequester> SchedulingTable::pop_head_group(ObjectId oid) {
  MutexLock lk(mu_);
  auto it = lists_.find(oid);
  if (it == lists_.end()) return {};
  auto group = it->second.pop_head_group();
  if (it->second.empty()) lists_.erase(it);
  return group;
}

std::vector<net::QueuedRequester> SchedulingTable::drain(ObjectId oid) {
  MutexLock lk(mu_);
  auto it = lists_.find(oid);
  if (it == lists_.end()) return {};
  auto all = it->second.drain();
  lists_.erase(it);
  return all;
}

bool SchedulingTable::remove(ObjectId oid, TxnId txid) {
  MutexLock lk(mu_);
  auto it = lists_.find(oid);
  if (it == lists_.end()) return false;
  const bool removed = it->second.remove_duplicate(txid);
  if (it->second.empty()) lists_.erase(it);
  return removed;
}

std::size_t SchedulingTable::depth(ObjectId oid) const {
  MutexLock lk(mu_);
  auto it = lists_.find(oid);
  return it == lists_.end() ? 0 : it->second.size();
}

std::size_t SchedulingTable::total_queued() const {
  MutexLock lk(mu_);
  std::size_t total = 0;
  for (const auto& [oid, list] : lists_) total += list.size();
  return total;
}

}  // namespace hyflow::core
