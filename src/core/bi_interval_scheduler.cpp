#include "core/bi_interval_scheduler.hpp"

#include <algorithm>

namespace hyflow::core {

BiIntervalScheduler::BiIntervalScheduler(const SchedulerConfig& cfg) : cfg_(cfg) {}

ConflictDecision BiIntervalScheduler::on_conflict(const ConflictContext& ctx) {
  return table_.with_list(ctx.oid, [&](RequesterList& list) -> ConflictDecision {
    list.remove_duplicate(ctx.request.txid);
    // Park everyone up to the cap (reuses cl_threshold as the queue bound);
    // no execution-time or CL admission — that is RTS's contribution.
    if (list.size() >= cfg_.cl_threshold) return {ConflictAction::kAbort, 0};
    const SimDuration backoff = ctx.validator_remaining + list.bk() + cfg_.handoff_slack;
    const SimDuration expected_rest =
        std::clamp<SimDuration>(ctx.request.ets.expected_commit - ctx.request.ets.request,
                                cfg_.min_backoff, cfg_.max_backoff);
    list.add_bk(expected_rest);
    list.add(list.contention() + 1,
             net::QueuedRequester{ctx.requester_node, ctx.request.txid, ctx.request_msg_id,
                                  ctx.request.mode, 1});
    return {ConflictAction::kEnqueue, backoff};
  });
}

std::vector<net::QueuedRequester> BiIntervalScheduler::on_object_available(ObjectId oid) {
  // Reading interval first: release *every* queued reader together,
  // regardless of position; writers follow one at a time.
  return table_.with_list(oid, [&](RequesterList& list) {
    std::vector<net::QueuedRequester> group;
    auto all = list.drain();
    std::vector<net::QueuedRequester> writers;
    for (auto& r : all) {
      if (r.mode == net::AccessMode::kRead) {
        group.push_back(std::move(r));
      } else {
        writers.push_back(std::move(r));
      }
    }
    if (group.empty() && !writers.empty()) {
      group.push_back(std::move(writers.front()));
      writers.erase(writers.begin());
    }
    for (auto& w : writers) list.add(list.contention() + 1, std::move(w));
    return group;
  });
}

std::vector<net::QueuedRequester> BiIntervalScheduler::extract_queue(ObjectId oid) {
  return table_.drain(oid);
}

void BiIntervalScheduler::absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) {
  if (queue.empty()) return;
  table_.with_list(oid, [&](RequesterList& list) {
    for (auto& r : queue) {
      list.remove_duplicate(r.txid);
      list.add(list.contention() + 1, std::move(r));
    }
    return 0;
  });
}

void BiIntervalScheduler::remove_requester(ObjectId oid, TxnId txid) {
  table_.remove(oid, txid);
}

std::size_t BiIntervalScheduler::queue_depth(ObjectId oid) const { return table_.depth(oid); }

std::size_t BiIntervalScheduler::total_queued() const { return table_.total_queued(); }

}  // namespace hyflow::core
