// Algorithm 1 of the paper: the per-object scheduling structures.
//
//   Requester       -> net::QueuedRequester (address, txid, plus the routing
//                      id of the parked request and its access mode)
//   Requester_List  -> RequesterList below: FIFO of requesters, a running
//                      Contention_Level (addRequester records the total
//                      computed at enqueue time, so getContention() yields
//                      the cumulative CL of everything queued), and the
//                      object's accumulated backoff `bk` (Alg. 3's static
//                      per-object backoff counter)
//   scheduling_List -> SchedulingTable: ObjectId -> RequesterList
//
// Hand-off order (§III-B): one leading writer, or *all* leading readers
// simultaneously ("increasing the concurrency of the read transactions").
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "dsm/object_id.hpp"
#include "net/payloads.hpp"
#include "util/mutex.hpp"
#include "util/time.hpp"

namespace hyflow::core {

class RequesterList {
 public:
  // Alg. 1 addRequester(Contention_Level, Requester).
  void add(std::uint32_t contention, net::QueuedRequester requester);

  // Priority-ordered insertion for timestamp/karma policies: the entry goes
  // before the first queued requester with a strictly greater `priority`
  // (stable among equals, so FIFO ties break by arrival).
  void add_sorted(std::uint32_t contention, net::QueuedRequester requester);

  // Priority of the youngest/lowest-ranked queued requester (the back of a
  // sorted queue); 0 when empty.
  std::uint64_t tail_priority() const { return queue_.empty() ? 0 : queue_.back().priority; }

  // Alg. 1 removeDuplicate(Address): a transaction whose backoff expired
  // re-requests as new; drop its stale entry. We match on txid rather than
  // node address — several transactions from one node may be queued, and
  // the retried transaction keeps its TxnId's node/sequence identity only
  // if it is genuinely the same requester.
  bool remove_duplicate(TxnId txid);

  // Alg. 1 getContention(): cumulative contention of the queued requesters.
  std::uint32_t contention() const { return contention_level_; }

  // Head group: the first writer alone, or every leading reader.
  std::vector<net::QueuedRequester> pop_head_group();

  std::vector<net::QueuedRequester> drain();

  // The object's accumulated backoff bk (reset when the queue empties —
  // otherwise bk grows without bound and Alg. 3's `bk < r-s` test would
  // eventually reject every transaction).
  SimDuration bk() const { return bk_; }
  void add_bk(SimDuration d) { bk_ += d; }

  std::size_t size() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  void maybe_reset();

  std::deque<net::QueuedRequester> queue_;
  std::uint32_t contention_level_ = 0;
  SimDuration bk_ = 0;
};

// scheduling_List: hash table from object to its requester list. One mutex
// guards the table and the lists; all operations are short. RequesterList
// itself carries no annotations — its instances live inside `lists_` and are
// only ever reached through `mu_` (an ownership relation GUARDED_BY cannot
// express across objects; see docs/CONCURRENCY.md).
class SchedulingTable {
 public:
  // Runs `fn(list)` with the object's list (created on demand) under lock.
  template <typename Fn>
  auto with_list(ObjectId oid, Fn&& fn) {
    MutexLock lk(mu_);
    return fn(lists_[oid]);
  }

  // As above but does not create the list; returns default for absent.
  std::vector<net::QueuedRequester> pop_head_group(ObjectId oid);
  std::vector<net::QueuedRequester> drain(ObjectId oid);
  bool remove(ObjectId oid, TxnId txid);
  std::size_t depth(ObjectId oid) const;
  std::size_t total_queued() const;

 private:
  mutable Mutex mu_{LockRank::kSchedulerQueue, "SchedulingTable::mu"};
  std::unordered_map<ObjectId, RequesterList> lists_ GUARDED_BY(mu_);
};

}  // namespace hyflow::core
