// Adaptive CL-threshold controller.
//
// The paper observes a throughput peak at some CL threshold and states that
// "the CL's threshold is adaptively determined" from the number of nodes,
// transactions and shared objects (§III-B), fixing the peak value per
// experiment. We implement the adaptation as hill climbing on the commit
// rate: each epoch compares its commit rate against the previous epoch and
// keeps stepping the threshold in the same direction while throughput
// improves, reversing otherwise. Benches pin a static threshold for
// reproducibility; the ablation bench sweeps it.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/mutex.hpp"
#include "util/time.hpp"

namespace hyflow::core {

class ThresholdController {
 public:
  ThresholdController(std::uint32_t initial, std::uint32_t min_threshold = 1,
                      std::uint32_t max_threshold = 16,
                      SimDuration epoch = sim_ms(100));

  std::uint32_t threshold() const {
    return threshold_.load(std::memory_order_relaxed);
  }

  // Called on every root commit; cheap (one atomic add; epoch rollover
  // takes a short lock).
  void note_commit(SimTime now);

  std::uint64_t epochs() const { return epochs_.load(std::memory_order_relaxed); }

 private:
  void rollover(SimTime now) EXCLUDES(rollover_mu_);

  std::atomic<std::uint32_t> threshold_;
  const std::uint32_t min_threshold_;
  const std::uint32_t max_threshold_;
  const SimDuration epoch_;

  std::atomic<std::uint64_t> commits_in_epoch_{0};
  std::atomic<std::uint64_t> epochs_{0};
  std::atomic<SimTime> epoch_start_{0};

  Mutex rollover_mu_{LockRank::kThreshold, "ThresholdController::rollover_mu"};
  double last_rate_ GUARDED_BY(rollover_mu_) = -1.0;
  int direction_ GUARDED_BY(rollover_mu_) = +1;
};

}  // namespace hyflow::core
