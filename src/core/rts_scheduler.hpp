// Reactive Transactional Scheduler — the paper's contribution (§III,
// Algorithms 1-4).
//
// A losing parent transaction (one whose request hit an object under
// validation) is:
//   * aborted, when its execution time so far is shorter than the object's
//     accumulated backoff `bk` — queueing would cost more than re-running
//     ("RTS aborts a parent transaction with a short execution time"), or
//   * aborted, when the contention level is high — enqueuing under high
//     contention only lengthens the convoy, or
//   * enqueued with backoff `bk += (ETS.c - ETS.r)` otherwise — the parked
//     parent keeps every object it already fetched and the commits of its
//     closed-nested children, so when the object is handed to it no
//     re-fetch round-trips are paid.
//
// Contention input (Alg. 3): `reqlist.getContention() + Contention_Level`,
// where Contention_Level is the requester's myCL (the summed local CLs of
// the objects it holds, piggy-backed on fetch responses) and getContention()
// is the cumulative CL recorded by previous addRequester calls. The
// object's own window CL (ctx.local_cl) reaches future requesters through
// the myCL piggyback, exactly as in the paper's o1/o2/o3 walk-through.
#pragma once

#include <memory>

#include "core/requester_list.hpp"
#include "core/scheduler.hpp"
#include "core/threshold_controller.hpp"

namespace hyflow::core {

class RtsScheduler : public Scheduler {
 public:
  explicit RtsScheduler(const SchedulerConfig& cfg);

  const char* name() const override { return "rts"; }

  ConflictDecision on_conflict(const ConflictContext& ctx) override;
  std::vector<net::QueuedRequester> on_object_available(ObjectId oid) override;
  std::vector<net::QueuedRequester> extract_queue(ObjectId oid) override;
  void absorb_queue(ObjectId oid, std::vector<net::QueuedRequester> queue) override;
  void remove_requester(ObjectId oid, TxnId txid) override;
  void note_commit(SimTime now) override;
  std::size_t queue_depth(ObjectId oid) const override;
  std::size_t total_queued() const override;

  std::uint32_t current_threshold() const;

 private:
  SchedulerConfig cfg_;
  SchedulingTable table_;
  std::unique_ptr<ThresholdController> controller_;  // null => static threshold
};

}  // namespace hyflow::core
