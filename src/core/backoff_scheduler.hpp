// TFA+Backoff baseline (§IV-C): "a transaction aborts with a backoff time
// if a conflict occurs". The loser is never enqueued — it aborts, stalls
// for its expected remaining execution time, then restarts and re-fetches
// everything. The paper finds this *worse* than plain TFA for nested
// transactions because the re-fetches still happen, just later.
#pragma once

#include <algorithm>

#include "core/scheduler.hpp"

namespace hyflow::core {

class BackoffScheduler : public Scheduler {
 public:
  explicit BackoffScheduler(const SchedulerConfig& cfg) : cfg_(cfg) {}

  const char* name() const override { return "tfa+backoff"; }

  ConflictDecision on_conflict(const ConflictContext& ctx) override {
    const SimDuration backoff =
        std::clamp<SimDuration>(ctx.request.ets.expected_commit - ctx.request.ets.request,
                                cfg_.min_backoff, cfg_.max_backoff);
    return {ConflictAction::kAbortWithStall, backoff};
  }

 private:
  SchedulerConfig cfg_;
};

}  // namespace hyflow::core
