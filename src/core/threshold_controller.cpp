#include "core/threshold_controller.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hyflow::core {

ThresholdController::ThresholdController(std::uint32_t initial, std::uint32_t min_threshold,
                                         std::uint32_t max_threshold, SimDuration epoch)
    : threshold_(std::clamp(initial, min_threshold, max_threshold)),
      min_threshold_(min_threshold),
      max_threshold_(max_threshold),
      epoch_(epoch) {
  HYFLOW_ASSERT(min_threshold >= 1 && min_threshold <= max_threshold);
  HYFLOW_ASSERT(epoch > 0);
}

void ThresholdController::note_commit(SimTime now) {
  commits_in_epoch_.fetch_add(1, std::memory_order_relaxed);
  SimTime start = epoch_start_.load(std::memory_order_relaxed);
  if (start == 0) {
    epoch_start_.compare_exchange_strong(start, now, std::memory_order_relaxed);
    return;
  }
  if (now - start >= epoch_) rollover(now);
}

void ThresholdController::rollover(SimTime now) {
  // Explicit try_lock/unlock (not a std guard): the thread-safety analysis
  // follows this pattern, and a guard cannot express "bail out if busy".
  if (!rollover_mu_.try_lock()) return;  // another thread is rolling this epoch over
  const SimTime start = epoch_start_.load(std::memory_order_relaxed);
  if (now - start >= epoch_) {  // else: lost the race to a finished rollover
    const double secs = static_cast<double>(now - start) * 1e-9;
    const double rate =
        static_cast<double>(commits_in_epoch_.exchange(0, std::memory_order_relaxed)) / secs;
    epoch_start_.store(now, std::memory_order_relaxed);
    epochs_.fetch_add(1, std::memory_order_relaxed);

    if (last_rate_ >= 0.0 && rate < last_rate_) direction_ = -direction_;
    last_rate_ = rate;

    const std::uint32_t cur = threshold_.load(std::memory_order_relaxed);
    const std::int64_t next = static_cast<std::int64_t>(cur) + direction_;
    threshold_.store(static_cast<std::uint32_t>(
                         std::clamp<std::int64_t>(next, min_threshold_, max_threshold_)),
                     std::memory_order_relaxed);
  }
  rollover_mu_.unlock();
}

}  // namespace hyflow::core
