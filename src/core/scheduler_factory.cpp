// The scheduler registry: one table maps every policy name (and alias) to
// its factory, so `make_scheduler`, `scheduler_names()` and the bench
// policy sweeps can never drift apart. Adding a policy = one table row; the
// conformance suite (tests/scheduler_conformance_test.cpp) parameterizes
// over `scheduler_names()`, so a new row inherits the full queue-protocol
// invariant coverage for free.
#include <cstdio>
#include <cstdlib>

#include "core/backoff_scheduler.hpp"
#include "core/bi_interval_scheduler.hpp"
#include "core/greedy_scheduler.hpp"
#include "core/karma_scheduler.hpp"
#include "core/rts_scheduler.hpp"
#include "core/scheduler.hpp"
#include "core/steal_on_abort_scheduler.hpp"
#include "core/tfa_scheduler.hpp"

namespace hyflow::core {

namespace {

struct SchedulerKind {
  const char* canonical;
  const char* alias;  // nullptr = none
  std::unique_ptr<Scheduler> (*make)(const SchedulerConfig&);
};

template <typename S>
std::unique_ptr<Scheduler> construct(const SchedulerConfig& cfg) {
  return std::make_unique<S>(cfg);
}

std::unique_ptr<Scheduler> construct_tfa(const SchedulerConfig&) {
  return std::make_unique<TfaScheduler>();
}

// Bench-sweep order: the paper's three, then the extension baselines and
// the classic contention-manager challengers.
constexpr SchedulerKind kKinds[] = {
    {"rts", nullptr, construct<RtsScheduler>},
    {"tfa", nullptr, construct_tfa},
    {"backoff", "tfa+backoff", construct<BackoffScheduler>},
    {"bi-interval", "bi", construct<BiIntervalScheduler>},
    {"greedy", nullptr, construct<GreedyScheduler>},
    {"karma", "polka", construct<KarmaScheduler>},
    {"steal-on-abort", "steal", construct<StealOnAbortScheduler>},
};

const SchedulerKind* find_kind(const std::string& kind) {
  for (const auto& k : kKinds) {
    if (kind == k.canonical || (k.alias && kind == k.alias)) return &k;
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& cfg) {
  if (const SchedulerKind* kind = find_kind(cfg.kind)) return kind->make(cfg);
  // A misspelled policy silently falling back to some default would corrupt
  // every result labelled with the requested name — die loudly instead,
  // with the menu.
  std::fprintf(stderr, "unknown scheduler kind '%s'; valid kinds:", cfg.kind.c_str());
  for (const auto& k : kKinds) {
    std::fprintf(stderr, " %s", k.canonical);
    if (k.alias) std::fprintf(stderr, " (alias: %s)", k.alias);
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

std::vector<std::string> scheduler_names() {
  std::vector<std::string> names;
  names.reserve(std::size(kKinds));
  for (const auto& k : kKinds) names.emplace_back(k.canonical);
  return names;
}

std::string canonical_scheduler_name(const std::string& kind) {
  const SchedulerKind* k = find_kind(kind);
  return k ? k->canonical : "";
}

}  // namespace hyflow::core
