// Contention-level (CL) tracking (§III-A of the paper).
//
// The *local CL* of an object is "how many transactions have requested [it]
// during a given time period" — a sliding-window count of distinct
// requesting transactions, maintained by the object's owner. The *remote
// CL* of a transaction (its `myCL`) is the sum of the local CLs of the
// objects it currently holds; owners piggy-back the local CL on every
// granted fetch so requesters can accumulate it without extra messages.
// The scheduler's decision input is `queue contention + myCL` (Alg. 3).
#pragma once

#include <deque>
#include <unordered_map>

#include "dsm/object_id.hpp"
#include "util/mutex.hpp"
#include "util/time.hpp"

namespace hyflow::core {

class ContentionTracker {
 public:
  explicit ContentionTracker(SimDuration window = sim_ms(20)) : window_(window) {}

  // Records that `txid` requested `oid` at time `now`; repeated requests by
  // the same transaction within the window count once.
  void record_request(ObjectId oid, TxnId txid, SimTime now);

  // Distinct transactions that requested `oid` within the window.
  std::uint32_t local_cl(ObjectId oid, SimTime now) const;

  // Ownership moved away — drop the window (the new owner starts fresh).
  void forget(ObjectId oid);

  SimDuration window() const { return window_; }

 private:
  struct Sample {
    TxnId txid;
    SimTime at;
  };
  void prune(std::deque<Sample>& samples, SimTime now) const REQUIRES(mu_);

  SimDuration window_;
  mutable Mutex mu_{LockRank::kContention, "ContentionTracker::mu"};
  // mutable: reads prune expired samples in place.
  mutable std::unordered_map<ObjectId, std::deque<Sample>> recent_ GUARDED_BY(mu_);
};

}  // namespace hyflow::core
