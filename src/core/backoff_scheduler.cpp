#include "core/backoff_scheduler.hpp"

#include "core/bi_interval_scheduler.hpp"
#include "core/rts_scheduler.hpp"
#include "core/tfa_scheduler.hpp"
#include "util/assert.hpp"

namespace hyflow::core {

std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& cfg) {
  if (cfg.kind == "rts") return std::make_unique<RtsScheduler>(cfg);
  if (cfg.kind == "tfa") return std::make_unique<TfaScheduler>();
  if (cfg.kind == "backoff" || cfg.kind == "tfa+backoff")
    return std::make_unique<BackoffScheduler>(cfg);
  if (cfg.kind == "bi-interval" || cfg.kind == "bi")
    return std::make_unique<BiIntervalScheduler>(cfg);
  HYFLOW_ASSERT_MSG(false, "unknown scheduler kind");
  return nullptr;
}

}  // namespace hyflow::core
