#include "core/backoff_scheduler.hpp"

// All behaviour is inline; this TU anchors the vtable. The scheduler
// factory lives in core/scheduler_factory.cpp.
