// Time primitives shared by the simulated network, TFA and the schedulers.
//
// All protocol-visible timestamps are `SimTime` — nanoseconds on the host
// steady clock. The paper's link delays (1..50 ms) are mapped onto the host
// through a configurable `time_scale` (see net::Topology), so a "paper
// millisecond" is typically tens of host microseconds. Keeping a single
// monotonic clock for every node is fine: TFA itself only relies on per-node
// *logical* clocks (tfa::NodeClock); SimTime is used for delays, backoffs and
// metrics, where the paper also assumes loosely synchronised wall clocks.
#pragma once

#include <chrono>
#include <cstdint>

namespace hyflow {

using SimTime = std::int64_t;      // nanoseconds since an arbitrary epoch
using SimDuration = std::int64_t;  // nanoseconds

inline SimTime sim_now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr SimDuration sim_us(std::int64_t us) { return us * 1000; }
constexpr SimDuration sim_ms(std::int64_t ms) { return ms * 1000000; }

inline std::chrono::nanoseconds to_chrono(SimDuration d) {
  return std::chrono::nanoseconds(d);
}

// Stopwatch for metrics and for the ETS (start / request / expected-commit)
// timestamps that ride on every object request.
class Stopwatch {
 public:
  Stopwatch() : start_(sim_now()) {}
  void reset() { start_ = sim_now(); }
  SimDuration elapsed() const { return sim_now() - start_; }
  SimTime start_time() const { return start_; }

 private:
  SimTime start_;
};

}  // namespace hyflow
