// Lightweight always-on assertion macro for invariant checks.
//
// Unlike <cassert>, HYFLOW_ASSERT stays active in release builds: the
// protocols in this library (TFA validation, ownership transfer, scheduler
// queues) rely on invariants whose silent violation would corrupt results
// rather than crash, so we prefer a loud failure at the violation site.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace hyflow {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "HYFLOW_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::fflush(stderr);
  std::abort();
}

}  // namespace hyflow

#define HYFLOW_ASSERT(expr)                                              \
  do {                                                                   \
    if (!(expr)) ::hyflow::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define HYFLOW_ASSERT_MSG(expr, msg)                                  \
  do {                                                                \
    if (!(expr)) ::hyflow::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)
