#include "util/log.hpp"

#include <cstdio>
#include <thread>

#include "util/mutex.hpp"

namespace hyflow {

std::atomic<int> Log::level_{static_cast<int>(LogLevel::kWarn)};

void Log::set_level(LogLevel level) {
  level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Log::level() {
  return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
}

namespace {
const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

Mutex& log_mutex() {
  // Leaf rank: logging happens inside arbitrary critical sections (e.g. the
  // scheduler logs under the scheduling-table lock), so the sink must rank
  // above every other capability.
  static Mutex mu{LockRank::kLog, "log"};
  return mu;
}
}  // namespace

void Log::write(LogLevel level, const std::string& message) {
  const auto tid = std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0xffff;
  MutexLock lk(log_mutex());
  std::fprintf(stderr, "[%s t%04zx] %s\n", tag(level), tid, message.c_str());
}

}  // namespace hyflow
