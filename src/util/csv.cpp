#include "util/csv.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hyflow {

namespace {

std::string join_line(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line += ',';
    line += CsvWriter::escape(cells[i]);
  }
  return line;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header) {
  if (path.empty()) return;
  std::error_code ec;
  bool fresh =
      !std::filesystem::exists(path, ec) || std::filesystem::file_size(path, ec) == 0;
  if (!fresh) {
    // Appending rows under a different header silently misaligns every
    // column downstream; rotate the stale file aside and start a fresh one.
    std::string existing_header;
    {
      std::ifstream in(path);
      std::getline(in, existing_header);
      if (!existing_header.empty() && existing_header.back() == '\r')
        existing_header.pop_back();
    }
    if (existing_header != join_line(header)) {
      const std::string stale = path + ".stale";
      std::filesystem::rename(path, stale, ec);
      std::fprintf(stderr,
                   "csv: header of '%s' does not match the current schema; "
                   "rotated old file to '%s'\n",
                   path.c_str(), stale.c_str());
      fresh = true;
    }
  }
  out_.open(path, std::ios::app);
  if (out_.is_open() && fresh) write_line(header);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  out_ << join_line(cells) << '\n';
  out_.flush();
}

CsvWriter::Row::~Row() {
  if (writer_ && writer_->enabled()) writer_->write_line(cells_);
}

CsvWriter::Row& CsvWriter::Row::cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(double value) {
  std::ostringstream os;
  os << value;
  cells_.push_back(os.str());
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

}  // namespace hyflow
