#include "util/csv.hpp"

#include <filesystem>
#include <sstream>

namespace hyflow {

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header) {
  if (path.empty()) return;
  std::error_code ec;
  const bool fresh =
      !std::filesystem::exists(path, ec) || std::filesystem::file_size(path, ec) == 0;
  out_.open(path, std::ios::app);
  if (out_.is_open() && fresh) write_line(header);
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char c : field) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  out_.flush();
}

CsvWriter::Row::~Row() {
  if (writer_ && writer_->enabled()) writer_->write_line(cells_);
}

CsvWriter::Row& CsvWriter::Row::cell(const std::string& value) {
  cells_.push_back(value);
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(double value) {
  std::ostringstream os;
  os << value;
  cells_.push_back(os.str());
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

CsvWriter::Row& CsvWriter::Row::cell(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}

}  // namespace hyflow
