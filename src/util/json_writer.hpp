// Streaming JSON emitter for the bench/report layer (BENCH_*.json).
//
// Deliberately tiny — no DOM, no parsing, no external dependency. The
// writer tracks the open object/array nesting to place commas and
// indentation, escapes strings per RFC 8259, and guards non-finite doubles
// by emitting `null` (a bare `nan`/`inf` token would make the file
// unparseable for every downstream consumer).
//
// Usage:
//   JsonWriter w;
//   w.begin_object();
//   w.field("name", "fig4").key("points").begin_array();
//   w.begin_object().field("throughput", 123.4).end_object();
//   w.end_array().end_object();
//   write_text_file("BENCH_fig4.json", w.str());
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hyflow {

class JsonWriter {
 public:
  // `indent` spaces per nesting level; 0 emits compact single-line JSON.
  explicit JsonWriter(int indent = 2) : indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Emits the member name; must be followed by a value or container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  // key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T v) {
    key(name);
    return value(v);
  }

  // The document so far; complete once every container has been closed.
  const std::string& str() const { return out_; }
  bool complete() const { return !out_.empty() && stack_.empty(); }

  static std::string escape(std::string_view raw);

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };

  void prepare_for_value();
  void newline_indent();

  std::string out_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
  const int indent_;
};

// Writes `text` to `path` atomically enough for the bench harness (truncate
// + write + flush). Returns false (and warns on stderr) on I/O failure.
bool write_text_file(const std::string& path, const std::string& text);

}  // namespace hyflow
