// Tiny test-and-test-and-set spinlock for very short critical sections
// (object-store slot metadata). Satisfies Lockable so it composes with
// RAII guards (CP.20 — never plain lock/unlock), is a Clang thread-safety
// CAPABILITY, and participates in the runtime lock-rank validator when
// constructed with a rank (see util/lock_rank.hpp).
#pragma once

#include <atomic>
#include <source_location>

#include "util/lock_rank.hpp"
#include "util/thread_annotations.hpp"

namespace hyflow {

class CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() noexcept : SpinLock(LockRank::kUnranked, "spinlock") {}
  SpinLock(LockRank rank, const char* name) noexcept : rank_(rank), name_(name) {}

  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock(std::source_location loc = std::source_location::current()) ACQUIRE() {
    lock_rank::note_acquire(this, rank_, name_, loc, /*blocking=*/true);
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin on the cached value to avoid cache-line ping-pong
      }
    }
  }

  bool try_lock(std::source_location loc = std::source_location::current())
      TRY_ACQUIRE(true) {
    const bool won = !flag_.load(std::memory_order_relaxed) &&
                     !flag_.exchange(true, std::memory_order_acquire);
    if (won) lock_rank::note_acquire(this, rank_, name_, loc, /*blocking=*/false);
    return won;
  }

  void unlock() RELEASE() {
    lock_rank::note_release(this);
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
  const LockRank rank_;
  const char* const name_;
};

}  // namespace hyflow
