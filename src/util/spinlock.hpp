// Tiny test-and-test-and-set spinlock for very short critical sections
// (object-store slot metadata). Satisfies Lockable so it composes with
// std::scoped_lock (CP.20 — RAII, never plain lock/unlock).
#pragma once

#include <atomic>

namespace hyflow {

class SpinLock {
 public:
  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        // spin on the cached value to avoid cache-line ping-pong
      }
    }
  }

  bool try_lock() {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace hyflow
