// Log-bucketed latency histogram (HdrHistogram-style, much simpler).
//
// Thread-compatible, not thread-safe: each recorder keeps its own histogram
// (or guards it with a lock, as NodeMetrics does) and the harness merges
// them after quiesce (CP.3 — minimise shared writable data).
//
// Values above the configured `max_value` are still counted (clamped into
// the top bucket) but are tracked in `overflow_count()` so a mis-sized
// histogram is visible instead of silently underreporting the tail.
#pragma once

#include <cstdint>
#include <vector>

namespace hyflow {

class Histogram {
 public:
  // Values are expected in [0, max_value]; resolution is ~1/32 relative.
  explicit Histogram(std::uint64_t max_value = 1ull << 40);

  void add(std::uint64_t value);
  void merge(const Histogram& other);

  // Treats `earlier` as a previous snapshot of this (monotonically growing)
  // histogram and subtracts it bucket-wise, leaving the samples recorded in
  // between. min/max are re-derived from the surviving buckets' bounds, so
  // they are bucket-resolution approximations for the window.
  void subtract(const Histogram& earlier);

  void reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t value_at_percentile(double p) const;  // p in [0,100]
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const;

  // Samples that exceeded max_value and were clamped into the top bucket.
  std::uint64_t overflow_count() const { return overflow_; }

 private:
  static std::size_t bucket_of(std::uint64_t value);
  static std::uint64_t bucket_low(std::size_t bucket);
  static std::uint64_t bucket_width(std::size_t bucket);
  static std::uint64_t bucket_mid(std::size_t bucket);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace hyflow
