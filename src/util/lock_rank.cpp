#include "util/lock_rank.hpp"

#ifdef HYFLOW_LOCK_RANK_CHECKS

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hyflow::lock_rank {

namespace {

struct Held {
  const void* lock;
  int rank;
  const char* name;
  const char* file;
  unsigned line;
};

// Per-thread stack of ranked locks currently held. Depth is tiny (the
// hierarchy is ~3 levels deep), so a vector with a reserved inline-ish
// capacity never reallocates on the hot path after the first acquisition.
thread_local std::vector<Held> t_held;

[[noreturn]] void violation(const Held& held, LockRank rank, const char* name,
                            const std::source_location& loc) {
  std::fprintf(stderr,
               "hyflow lock-rank violation: acquiring \"%s\" (rank %d) at %s:%u\n"
               "  while holding \"%s\" (rank %d) acquired at %s:%u\n"
               "  lock acquisition order must follow docs/CONCURRENCY.md "
               "(ranks strictly increase); aborting\n",
               name, static_cast<int>(rank), loc.file_name(), loc.line(), held.name,
               held.rank, held.file, held.line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void note_acquire(const void* lock, LockRank rank, const char* name,
                  const std::source_location& loc, bool blocking) {
  if (rank == LockRank::kUnranked) return;
  const int r = static_cast<int>(rank);
  if (blocking) {
    for (const Held& h : t_held) {
      if (h.rank >= r) violation(h, rank, name, loc);
    }
  }
  if (t_held.capacity() == 0) t_held.reserve(8);
  t_held.push_back(Held{lock, r, name, loc.file_name(), loc.line()});
}

void note_release(const void* lock) {
  // Unlock order may legally differ from lock order: erase the most recent
  // entry for this lock. Unranked locks were never recorded — no match is
  // not an error.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->lock == lock) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

int held_count() { return static_cast<int>(t_held.size()); }

}  // namespace hyflow::lock_rank

#endif  // HYFLOW_LOCK_RANK_CHECKS
