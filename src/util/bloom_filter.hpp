// Counting-free Bloom filter (Bloom, CACM 1970).
//
// The paper's transaction stats table stores "a bloom filter representation
// of the most current successful commit times of write transactions"
// (§III-B). tfa::StatsTable uses this filter to remember which commit-time
// buckets were observed recently; it is also unit-tested and benchmarked as
// a standalone substrate.
#pragma once

#include <cstdint>
#include <vector>

namespace hyflow {

class BloomFilter {
 public:
  // `bits` is rounded up to a power of two; `hashes` is the number of probe
  // functions (k). Defaults give ~1% FPR at ~1000 inserted keys.
  explicit BloomFilter(std::size_t bits = 1 << 14, int hashes = 7);

  void insert(std::uint64_t key);
  bool maybe_contains(std::uint64_t key) const;
  void clear();

  // Number of keys inserted since construction/clear.
  std::size_t inserted() const { return inserted_; }
  std::size_t bit_count() const { return words_.size() * 64; }
  int hash_count() const { return hashes_; }

  // Fraction of bits set — a cheap saturation signal used by StatsTable to
  // decide when to age out the filter.
  double fill_ratio() const;

  // Theoretical false-positive rate for the current load.
  double estimated_fpr() const;

 private:
  std::vector<std::uint64_t> words_;
  std::size_t mask_;  // bit-index mask (bit_count - 1)
  int hashes_;
  std::size_t inserted_ = 0;
};

}  // namespace hyflow
