#include "util/config.hpp"

#include <cstdlib>
#include <sstream>

namespace hyflow {

Config Config::from_args(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        cfg.set(arg.substr(2), "true");
      } else {
        cfg.set(arg.substr(2, eq - 2), arg.substr(eq + 1));
      }
    } else {
      cfg.positional_.push_back(std::move(arg));
    }
  }
  return cfg;
}

void Config::set(const std::string& key, const std::string& value) {
  values_[key] = value;
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Config::raw(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, const std::string& def) const {
  return raw(key).value_or(def);
}

std::int64_t Config::get_int(const std::string& key, std::int64_t def) const {
  auto v = raw(key);
  if (!v) return def;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Config::get_double(const std::string& key, double def) const {
  auto v = raw(key);
  if (!v) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool Config::get_bool(const std::string& key, bool def) const {
  auto v = raw(key);
  if (!v) return def;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<std::int64_t> Config::get_int_list(const std::string& key,
                                               std::vector<std::int64_t> def) const {
  auto v = raw(key);
  if (!v) return def;
  std::vector<std::int64_t> out;
  std::stringstream ss(*v);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) out.push_back(std::strtoll(part.c_str(), nullptr, 10));
  }
  return out.empty() ? def : out;
}

std::string Config::describe() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [k, v] : values_) {
    if (!first) os << ' ';
    os << "--" << k << '=' << v;
    first = false;
  }
  return os.str();
}

}  // namespace hyflow
