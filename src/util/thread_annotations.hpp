// Clang thread-safety-analysis annotations (-Wthread-safety).
//
// Under Clang these expand to the `thread_safety` attribute family, letting
// the compiler prove at build time that every access to a GUARDED_BY field
// happens with its capability held and that ACQUIRE/RELEASE pairs balance.
// Under GCC (which has no such analysis) they expand to nothing, so the
// annotated code stays portable. CI runs a dedicated Clang build with
// `-Wthread-safety -Werror=thread-safety`; see docs/CONCURRENCY.md.
//
// Usage convention in this codebase:
//   * lock owners are `hyflow::Mutex` / `hyflow::SpinLock` (CAPABILITY types)
//   * every field protected by a lock carries GUARDED_BY(mu_)
//   * private helpers that assume the lock is held carry REQUIRES(mu_)
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define HYFLOW_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define HYFLOW_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

// A type whose instances are capabilities (lockable objects).
#define CAPABILITY(x) HYFLOW_THREAD_ANNOTATION(capability(x))

// A RAII type that acquires a capability on construction and releases it on
// destruction (std::lock_guard-style).
#define SCOPED_CAPABILITY HYFLOW_THREAD_ANNOTATION(scoped_lockable)

// Data members protected by a capability.
#define GUARDED_BY(x) HYFLOW_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) HYFLOW_THREAD_ANNOTATION(pt_guarded_by(x))

// Declared acquisition order between two capabilities.
#define ACQUIRED_BEFORE(...) HYFLOW_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) HYFLOW_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function attributes: the capability must be held on entry (REQUIRES), is
// acquired by the call (ACQUIRE), released by it (RELEASE), conditionally
// acquired (TRY_ACQUIRE), or must NOT be held on entry (EXCLUDES).
#define REQUIRES(...) HYFLOW_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HYFLOW_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) HYFLOW_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) HYFLOW_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) HYFLOW_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) HYFLOW_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) HYFLOW_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  HYFLOW_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) HYFLOW_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Assertion that the calling thread already holds the capability.
#define ASSERT_CAPABILITY(x) HYFLOW_THREAD_ANNOTATION(assert_capability(x))

// Function returning a reference to the capability guarding its result.
#define RETURN_CAPABILITY(x) HYFLOW_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for code the analysis cannot model.
#define NO_THREAD_SAFETY_ANALYSIS HYFLOW_THREAD_ANNOTATION(no_thread_safety_analysis)
