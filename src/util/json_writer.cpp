#include "util/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/assert.hpp"

namespace hyflow {

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::prepare_for_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (stack_.empty()) {
    HYFLOW_ASSERT_MSG(out_.empty(), "only one top-level JSON value");
    return;
  }
  HYFLOW_ASSERT_MSG(stack_.back() == Ctx::kArray,
                    "object members need key() before the value");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
}

JsonWriter& JsonWriter::begin_object() {
  prepare_for_value();
  out_ += '{';
  stack_.push_back(Ctx::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  HYFLOW_ASSERT(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prepare_for_value();
  out_ += '[';
  stack_.push_back(Ctx::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  HYFLOW_ASSERT(!stack_.empty() && stack_.back() == Ctx::kArray);
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline_indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  HYFLOW_ASSERT_MSG(!stack_.empty() && stack_.back() == Ctx::kObject && !pending_key_,
                    "key() is only valid directly inside an object");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  newline_indent();
  out_ += '"';
  out_ += escape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prepare_for_value();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();  // NaN/inf are not valid JSON
  prepare_for_value();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prepare_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prepare_for_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prepare_for_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  prepare_for_value();
  out_ += "null";
  return *this;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::fprintf(stderr, "json: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  out << text;
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "json: short write to '%s'\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace hyflow
