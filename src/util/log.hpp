// Minimal leveled, thread-safe logger. Protocol tracing in a D-STM is
// indispensable when debugging ownership races; benches run at `kWarn`.
#pragma once

#include <atomic>
#include <sstream>
#include <string>

namespace hyflow {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

class Log {
 public:
  static void set_level(LogLevel level);
  static LogLevel level();
  static bool enabled(LogLevel level) { return level >= Log::level(); }

  // Writes one line (with level tag and thread id) under an internal lock.
  static void write(LogLevel level, const std::string& message);

 private:
  static std::atomic<int> level_;
};

namespace log_detail {
template <typename... Args>
std::string format_parts(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace log_detail

}  // namespace hyflow

#define HYFLOW_LOG(level, ...)                                               \
  do {                                                                       \
    if (::hyflow::Log::enabled(level))                                       \
      ::hyflow::Log::write(level, ::hyflow::log_detail::format_parts(__VA_ARGS__)); \
  } while (0)

#define HYFLOW_TRACE(...) HYFLOW_LOG(::hyflow::LogLevel::kTrace, __VA_ARGS__)
#define HYFLOW_DEBUG(...) HYFLOW_LOG(::hyflow::LogLevel::kDebug, __VA_ARGS__)
#define HYFLOW_INFO(...) HYFLOW_LOG(::hyflow::LogLevel::kInfo, __VA_ARGS__)
#define HYFLOW_WARN(...) HYFLOW_LOG(::hyflow::LogLevel::kWarn, __VA_ARGS__)
#define HYFLOW_ERROR(...) HYFLOW_LOG(::hyflow::LogLevel::kError, __VA_ARGS__)
