#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace hyflow {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Ewma::add(double x) {
  if (!seeded_) {
    value_ = x;
    seeded_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

}  // namespace hyflow
