// Deterministic, cheap PRNGs for workload generation and tests.
//
// xoshiro256** is the workhorse (fast, good statistical quality); SplitMix64
// seeds it and doubles as a hash finaliser for ObjectId placement.
#pragma once

#include <cstdint>
#include <limits>

namespace hyflow {

// SplitMix64 — used for seeding and as an integer mixer.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

inline std::uint64_t mix64(std::uint64_t x) {
  std::uint64_t s = x;
  return splitmix64(s);
}

// xoshiro256** by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bull) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Unbiased-enough uniform integer in [0, bound) for workload use.
  std::uint64_t below(std::uint64_t bound) {
    return bound == 0 ? 0 : (*this)() % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace hyflow
