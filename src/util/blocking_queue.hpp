// Unbounded blocking MPMC queue (mutex + condition variable, CP.42: every
// wait has a predicate). Used for node inboxes and the network dispatcher.
//
// `close()` wakes all waiters; `pop()` then drains remaining items and
// finally returns nullopt — the standard shutdown protocol for worker loops.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hyflow {

template <typename T>
class BlockingQueue {
 public:
  // Returns false if the queue is closed (item is dropped).
  bool push(T item) {
    {
      std::scoped_lock lk(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking variant.
  std::optional<T> try_pop() {
    std::scoped_lock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      std::scoped_lock lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::scoped_lock lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::scoped_lock lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace hyflow
