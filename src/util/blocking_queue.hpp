// Unbounded blocking MPMC queue (mutex + condition variable; every wait
// re-checks its predicate in a loop, CP.42). Used for node inboxes and the
// network dispatcher.
//
// `close()` wakes all waiters; `pop()` then drains remaining items and
// finally returns nullopt — the standard shutdown protocol for worker loops.
//
// The queue's Mutex is an annotated capability (rank kInbox by default);
// waits go through std::condition_variable_any on the MutexLock guard so the
// thread-safety analysis tracks the capability across the wait.
#pragma once

#include <condition_variable>
#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.hpp"

namespace hyflow {

template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(LockRank rank = LockRank::kInbox)
      : mu_(rank, "BlockingQueue::mu") {}

  // Returns false if the queue is closed (item is dropped).
  bool push(T item) {
    {
      MutexLock lk(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    MutexLock lk(mu_);
    while (items_.empty() && !closed_) cv_.wait(lk);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking variant.
  std::optional<T> try_pop() {
    MutexLock lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  void close() {
    {
      MutexLock lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    MutexLock lk(mu_);
    return items_.size();
  }

 private:
  mutable Mutex mu_;
  std::condition_variable_any cv_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace hyflow
