// Annotation-aware mutex and RAII guard.
//
// `Mutex` wraps std::mutex as a Clang thread-safety CAPABILITY and feeds
// every (blocking) acquisition through the runtime lock-rank validator, so
// one type gives both compile-time guarded-access checking and runtime
// deadlock-order checking. `MutexLock` is the scoped guard the analysis
// understands; it is relockable (explicit unlock()/lock()) and satisfies
// BasicLockable, so it composes with std::condition_variable_any — use that
// instead of std::condition_variable when waiting on a Mutex.
//
// std::scoped_lock / std::unique_lock must NOT be used with Mutex: the
// analysis cannot see through them (std templates carry no annotations), so
// guarded accesses under them would be flagged as unprotected.
#pragma once

#include <mutex>
#include <source_location>

#include "util/lock_rank.hpp"
#include "util/thread_annotations.hpp"

namespace hyflow {

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() noexcept : Mutex(LockRank::kUnranked, "mutex") {}
  Mutex(LockRank rank, const char* name) noexcept : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock(std::source_location loc = std::source_location::current()) ACQUIRE() {
    // Check order BEFORE blocking: a genuine inversion may deadlock inside
    // mu_.lock() and never reach a post-acquisition check.
    lock_rank::note_acquire(this, rank_, name_, loc, /*blocking=*/true);
    mu_.lock();
  }

  bool try_lock(std::source_location loc = std::source_location::current())
      TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    // Recorded so later blocking acquisitions see it, but exempt from the
    // order check — a non-blocking acquisition cannot deadlock.
    lock_rank::note_acquire(this, rank_, name_, loc, /*blocking=*/false);
    return true;
  }

  void unlock() RELEASE() {
    lock_rank::note_release(this);
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
  const char* const name_;
};

// Scoped guard over Mutex. Relockable: unlock()/lock() let condition-wait
// and hand-off code drop the capability mid-scope with the analysis still
// tracking it; the destructor releases only if currently held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu,
                     std::source_location loc = std::source_location::current())
      ACQUIRE(mu)
      : mu_(mu) {
    mu_.lock(loc);
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  // BasicLockable, for std::condition_variable_any::wait(*this).
  void lock(std::source_location loc = std::source_location::current()) ACQUIRE() {
    mu_.lock(loc);
    held_ = true;
  }

  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

}  // namespace hyflow
