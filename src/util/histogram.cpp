#include "util/histogram.hpp"

#include <algorithm>
#include <bit>

#include "util/assert.hpp"

namespace hyflow {

namespace {
// 5 sub-bucket bits => 32 linear sub-buckets per power of two.
constexpr int kSubBits = 5;
constexpr std::uint64_t kSubCount = 1ull << kSubBits;
}  // namespace

Histogram::Histogram(std::uint64_t max_value)
    : buckets_(bucket_of(max_value) + 2, 0) {}

std::size_t Histogram::bucket_of(std::uint64_t value) {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  const std::uint64_t sub = (value >> shift) & (kSubCount - 1);
  return static_cast<std::size_t>(
      kSubCount + static_cast<std::uint64_t>(msb - kSubBits) * kSubCount + sub);
}

std::uint64_t Histogram::bucket_mid(std::size_t bucket) {
  if (bucket < kSubCount) return bucket;
  const std::size_t rel = bucket - kSubCount;
  const int exp = static_cast<int>(rel / kSubCount);
  const std::uint64_t sub = rel % kSubCount;
  const int shift = exp;  // since msb = exp + kSubBits
  const std::uint64_t base = (kSubCount + sub) << shift;
  return base + (1ull << shift) / 2;
}

void Histogram::add(std::uint64_t value) {
  std::size_t b = bucket_of(value);
  if (b >= buckets_.size()) b = buckets_.size() - 1;
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
}

void Histogram::merge(const Histogram& other) {
  HYFLOW_ASSERT(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

std::uint64_t Histogram::value_at_percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= target) return std::min(bucket_mid(b), max_);
  }
  return max_;
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

}  // namespace hyflow
