#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/assert.hpp"

namespace hyflow {

namespace {
// 5 sub-bucket bits => 32 linear sub-buckets per power of two.
constexpr int kSubBits = 5;
constexpr std::uint64_t kSubCount = 1ull << kSubBits;
}  // namespace

Histogram::Histogram(std::uint64_t max_value)
    : buckets_(bucket_of(max_value) + 2, 0) {}

std::size_t Histogram::bucket_of(std::uint64_t value) {
  if (value < kSubCount) return static_cast<std::size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - kSubBits;
  const std::uint64_t sub = (value >> shift) & (kSubCount - 1);
  return static_cast<std::size_t>(
      kSubCount + static_cast<std::uint64_t>(msb - kSubBits) * kSubCount + sub);
}

std::uint64_t Histogram::bucket_low(std::size_t bucket) {
  if (bucket < kSubCount) return bucket;
  const std::size_t rel = bucket - kSubCount;
  const int exp = static_cast<int>(rel / kSubCount);
  const std::uint64_t sub = rel % kSubCount;
  return (kSubCount + sub) << exp;
}

std::uint64_t Histogram::bucket_width(std::size_t bucket) {
  if (bucket < kSubCount) return 1;
  const int exp = static_cast<int>((bucket - kSubCount) / kSubCount);
  return 1ull << exp;
}

std::uint64_t Histogram::bucket_mid(std::size_t bucket) {
  return bucket_low(bucket) + bucket_width(bucket) / 2;
}

void Histogram::add(std::uint64_t value) {
  std::size_t b = bucket_of(value);
  if (b >= buckets_.size()) {
    b = buckets_.size() - 1;
    ++overflow_;
  }
  ++buckets_[b];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += static_cast<double>(value);
}

void Histogram::merge(const Histogram& other) {
  HYFLOW_ASSERT(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (other.count_) {
    min_ = count_ ? std::min(min_, other.min_) : other.min_;
    max_ = count_ ? std::max(max_, other.max_) : other.max_;
  }
  count_ += other.count_;
  overflow_ += other.overflow_;
  sum_ += other.sum_;
}

void Histogram::subtract(const Histogram& earlier) {
  HYFLOW_ASSERT(buckets_.size() == earlier.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] -= std::min(buckets_[i], earlier.buckets_[i]);
  }
  count_ -= std::min(count_, earlier.count_);
  overflow_ -= std::min(overflow_, earlier.overflow_);
  sum_ = std::max(0.0, sum_ - earlier.sum_);
  if (count_ == 0) {
    min_ = max_ = 0;
    return;
  }
  // The exact window min/max are unknowable from bucket deltas; bound them
  // by the surviving buckets' edges (tightened by the cumulative extremes).
  std::size_t first = buckets_.size(), last = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    first = std::min(first, i);
    last = i;
  }
  min_ = std::max(min_, bucket_low(first));
  max_ = std::min(max_, bucket_low(last) + bucket_width(last) - 1);
  if (min_ > max_) min_ = max_;
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  overflow_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

std::uint64_t Histogram::value_at_percentile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank: the value such that at least ceil(p% * count) samples are
  // <= it. p=0 maps to rank 1 (the minimum), never to an empty prefix.
  auto target = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  target = std::clamp<std::uint64_t>(target, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    seen += buckets_[b];
    if (seen < target) continue;
    // Interpolate within the bucket by the rank's position among its
    // samples, then clamp to the recorded extremes so low percentiles can
    // never fall below the observed minimum (nor high ones above the max).
    const std::uint64_t rank_in_bucket = target - (seen - buckets_[b]);  // 1..n
    const std::uint64_t low = bucket_low(b);
    const std::uint64_t width = bucket_width(b);
    const std::uint64_t value =
        low + (width - 1) * rank_in_bucket / buckets_[b];
    return std::clamp(value, min_, max_);
  }
  return max_;
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

}  // namespace hyflow
