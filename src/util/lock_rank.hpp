// Runtime lock-rank (lock-ordering) validator.
//
// Clang's thread-safety analysis proves that guarded state is only touched
// with its capability held, but it cannot see *cross-mutex ordering*: thread
// A taking store->directory while thread B takes directory->store is
// invisible to it yet deadlocks at runtime. This validator closes that gap:
// every Mutex/SpinLock is constructed with a LockRank, a thread-local stack
// records the ranks a thread currently holds, and acquiring a lock whose
// rank is not strictly greater than every held rank aborts immediately,
// printing both acquisition sites. Deadlock ordering bugs thus fail loudly
// on the first occurrence instead of hanging once in a thousand runs.
//
// Rules (see docs/CONCURRENCY.md for the full hierarchy):
//   * ranks must strictly increase along any acquisition chain; acquiring
//     equal rank while one is held is also a violation (two instances of the
//     same class must never nest)
//   * kUnranked locks opt out entirely (utility locks in tests)
//   * successful try_lock() is recorded but exempt from the order check — a
//     non-blocking acquisition cannot deadlock
//
// Enabled when HYFLOW_LOCK_RANK_CHECKS is defined (CMake option
// HYFLOW_LOCK_RANK, ON by default; turn OFF for peak-throughput bench runs).
#pragma once

#include <source_location>

namespace hyflow {

// Global acquisition order, outermost (acquired first) to innermost. The
// directory -> object-store -> scheduler-queue prefix mirrors the hand-off
// chain of Alg. 4: ownership registration, then slot state, then the parked
// requester queue.
enum class LockRank : int {
  kUnranked = 0,        // opted out of ordering checks
  kDirectory = 10,      // dsm::DirectoryShard::mu_
  kObjectStore = 20,    // dsm::ObjectStore::mu_
  kSchedulerQueue = 30, // core::SchedulingTable::mu_
  kSchedulerAux = 35,   // core::KarmaScheduler::karma_mu_ (under the table lock)
  kGrantTable = 40,     // tfa::TfaRuntime::grants_mu_
  kContention = 50,     // core::ContentionTracker::mu_
  kStatsTable = 55,     // tfa::StatsTable::mu_
  kHoldStats = 58,      // tfa::TfaRuntime::hold_mu_
  kThreshold = 60,      // core::ThresholdController::rollover_mu_
  kOwnerHints = 65,     // dsm::OwnerResolver::mu_
  kReplyCache = 70,     // net::ReplyCache::mu_
  kCallRegistry = 75,   // net::PendingCalls::mu_
  kCallState = 80,      // net::PendingCalls::CallState::mu
  kNetTimer = 85,       // net::Network::timer_mu_
  kInbox = 90,          // BlockingQueue (network lanes, node inboxes)
  kMetrics = 95,        // runtime::NodeMetrics::latency_mu_ — leaf
  kLog = 100,           // log sink — leaf, may be taken under anything
};

namespace lock_rank {

#ifdef HYFLOW_LOCK_RANK_CHECKS

// Records an acquisition by the calling thread; aborts (after printing both
// acquisition sites) when `blocking` and some held lock has rank >= `rank`.
// kUnranked acquisitions are ignored.
void note_acquire(const void* lock, LockRank rank, const char* name,
                  const std::source_location& loc, bool blocking);

// Forgets the most recent acquisition of `lock` by the calling thread.
void note_release(const void* lock);

// Number of ranked locks the calling thread currently holds (test hook).
int held_count();

constexpr bool enabled() { return true; }

#else

inline void note_acquire(const void*, LockRank, const char*,
                         const std::source_location&, bool) {}
inline void note_release(const void*) {}
inline int held_count() { return 0; }
constexpr bool enabled() { return false; }

#endif  // HYFLOW_LOCK_RANK_CHECKS

}  // namespace lock_rank
}  // namespace hyflow
