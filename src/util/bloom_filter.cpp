#include "util/bloom_filter.hpp"

#include <bit>
#include <cmath>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace hyflow {

namespace {
std::size_t round_up_pow2(std::size_t v) {
  if (v < 64) return 64;
  return std::bit_ceil(v);
}
}  // namespace

BloomFilter::BloomFilter(std::size_t bits, int hashes)
    : words_(round_up_pow2(bits) / 64),
      mask_(round_up_pow2(bits) - 1),
      hashes_(hashes) {
  HYFLOW_ASSERT_MSG(hashes >= 1 && hashes <= 32, "unreasonable hash count");
}

void BloomFilter::insert(std::uint64_t key) {
  // Double hashing (Kirsch & Mitzenmacher): probe i = h1 + i*h2.
  const std::uint64_t h1 = mix64(key);
  const std::uint64_t h2 = mix64(key ^ 0x9e3779b97f4a7c15ull) | 1;
  for (int i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
    words_[bit >> 6] |= (1ull << (bit & 63));
  }
  ++inserted_;
}

bool BloomFilter::maybe_contains(std::uint64_t key) const {
  const std::uint64_t h1 = mix64(key);
  const std::uint64_t h2 = mix64(key ^ 0x9e3779b97f4a7c15ull) | 1;
  for (int i = 0; i < hashes_; ++i) {
    const std::size_t bit = (h1 + static_cast<std::uint64_t>(i) * h2) & mask_;
    if ((words_[bit >> 6] & (1ull << (bit & 63))) == 0) return false;
  }
  return true;
}

void BloomFilter::clear() {
  std::fill(words_.begin(), words_.end(), 0);
  inserted_ = 0;
}

double BloomFilter::fill_ratio() const {
  std::size_t set = 0;
  for (std::uint64_t w : words_) set += static_cast<std::size_t>(std::popcount(w));
  return static_cast<double>(set) / static_cast<double>(bit_count());
}

double BloomFilter::estimated_fpr() const {
  // (1 - e^{-kn/m})^k
  const double k = hashes_;
  const double n = static_cast<double>(inserted_);
  const double m = static_cast<double>(bit_count());
  return std::pow(1.0 - std::exp(-k * n / m), k);
}

}  // namespace hyflow
