// Tiny CSV writer used by the bench harness (`--csv=FILE`) and the CLI
// driver so sweeps can be post-processed/plotted without scraping stdout.
//
// Quoting follows RFC 4180: fields containing comma, quote or newline are
// quoted, embedded quotes doubled. The writer appends to an existing file
// (writing the header only when it creates the file), so repeated bench
// invocations accumulate one tidy table. If an existing file's header does
// not match the requested schema, the old file is rotated to `<path>.stale`
// (with a warning on stderr) and a fresh file is started — appending rows
// under a mismatched header would silently misalign every column.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

namespace hyflow {

class CsvWriter {
 public:
  // Opens `path` for append; writes `header` first if the file is new or
  // empty, and rotates the file to `<path>.stale` first when its existing
  // header differs. An empty path produces a disabled writer (all ops no-op).
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  bool enabled() const { return out_.is_open(); }

  class Row {
   public:
    explicit Row(CsvWriter* writer) : writer_(writer) {}
    Row(const Row&) = delete;
    Row& operator=(const Row&) = delete;
    Row(Row&& other) noexcept : writer_(other.writer_), cells_(std::move(other.cells_)) {
      other.writer_ = nullptr;
    }
    ~Row();

    Row& cell(const std::string& value);
    Row& cell(double value);
    Row& cell(std::int64_t value);
    Row& cell(std::uint64_t value);

   private:
    CsvWriter* writer_;
    std::vector<std::string> cells_;
  };

  // Begin a row; it is written (with trailing newline + flush) when the Row
  // handle is destroyed.
  Row row() { return Row(this); }

  static std::string escape(const std::string& field);

 private:
  friend class Row;
  void write_line(const std::vector<std::string>& cells);
  std::ofstream out_;
};

}  // namespace hyflow
