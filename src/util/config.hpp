// Flat key=value configuration with CLI override parsing.
//
// Every bench binary accepts `--key=value` pairs (e.g. `--nodes=40
// --duration-ms=500`); this keeps the table/figure harnesses reproducible
// without a heavyweight flags library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hyflow {

class Config {
 public:
  Config() = default;

  // Parses "--key=value" / "--flag" arguments; unrecognised positional
  // arguments are returned untouched for the caller to handle.
  static Config from_args(int argc, char** argv);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  // Comma-separated integer list, e.g. "--nodes=10,20,40,80".
  std::vector<std::int64_t> get_int_list(const std::string& key,
                                         std::vector<std::int64_t> def) const;

  const std::vector<std::string>& positional() const { return positional_; }
  std::string describe() const;

 private:
  std::optional<std::string> raw(const std::string& key) const;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace hyflow
