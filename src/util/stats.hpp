// Online statistics: Welford mean/variance and an exponentially weighted
// moving average. Used by the transaction stats table (expected commit
// times), the contention-level tracker and the experiment harness.
#pragma once

#include <cstdint>

namespace hyflow {

// Welford's online algorithm — numerically stable single-pass mean/variance.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  // population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// EWMA with configurable smoothing factor; `value()` before the first sample
// returns the provided initial estimate.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2, double initial = 0.0)
      : alpha_(alpha), value_(initial) {}

  void add(double x);
  double value() const { return value_; }
  bool seeded() const { return seeded_; }
  void reset(double initial = 0.0) {
    value_ = initial;
    seeded_ = false;
  }

 private:
  double alpha_;
  double value_;
  bool seeded_ = false;
};

}  // namespace hyflow
