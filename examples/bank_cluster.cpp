// Bank example: a distributed monetary application on the D-STM.
//
// Builds an 8-node cluster, spreads 40 accounts across it, runs concurrent
// transfer transactions from every node (each transfer = one closed-nested
// child moving money between two accounts), then audits conservation: the
// total balance must be exactly what we started with.
//
//   ./build/examples/bank_cluster [--nodes=8] [--transfers=200] [--scheduler=rts]
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/cluster.hpp"
#include "util/config.hpp"
#include "workloads/bank.hpp"

using namespace hyflow;

int main(int argc, char** argv) {
  const auto cli = Config::from_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 8));
  const int transfers = static_cast<int>(cli.get_int("transfers", 200));

  runtime::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.scheduler.kind = cli.get_string("scheduler", "rts");
  runtime::Cluster cluster(cfg);

  // Place accounts round-robin; BankWorkload's setup does exactly this.
  workloads::WorkloadConfig wcfg;
  wcfg.objects_per_node = 5;
  workloads::BankWorkload bank(wcfg, /*initial_balance=*/1000);
  bank.setup(cluster);
  const auto& accounts = bank.accounts();

  // Concurrent transfers from every node.
  std::printf("running %d transfers across %u nodes...\n", transfers, nodes);
  std::atomic<int> issued{0};
  std::atomic<std::uint64_t> attempts{0};
  {
    std::vector<std::jthread> clients;
    for (NodeId n = 0; n < nodes; ++n) {
      clients.emplace_back([&, n] {
        Xoshiro256 rng(1000 + n);
        while (issued.fetch_add(1) < transfers) {
          const ObjectId from = accounts[rng.below(accounts.size())];
          const ObjectId to = accounts[rng.below(accounts.size())];
          const std::int64_t amount = rng.range(1, 50);
          const auto result = cluster.execute(n, 1, [&](tfa::Txn& tx) {
            tx.nested([&](tfa::Txn& child) {
              child.write<workloads::Account>(from).withdraw(amount);
              child.write<workloads::Account>(to).deposit(amount);
            });
          });
          attempts.fetch_add(result.attempts);
        }
      });
    }
  }

  // Audit: total balance unchanged.
  std::int64_t total = 0;
  for (const ObjectId oid : accounts) {
    cluster.execute(0, 2, [&](tfa::Txn& tx) {
      total += tx.read<workloads::Account>(oid).balance();
    });
  }
  const std::int64_t expected = 1000 * static_cast<std::int64_t>(accounts.size());
  std::printf("attempts=%llu (aborted+committed) total=%lld expected=%lld -> %s\n",
              static_cast<unsigned long long>(attempts.load()),
              static_cast<long long>(total), static_cast<long long>(expected),
              total == expected ? "CONSERVED" : "VIOLATED");
  cluster.shutdown();
  return total == expected ? 0 : 1;
}
