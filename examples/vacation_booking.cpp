// Vacation example: the paper's motivating scenario for closed nesting —
// book several travel resources as one atomic trip, where each resource
// booking is a closed-nested action that can fail (sold out) and fall back
// to an alternative WITHOUT aborting the whole trip ("if a remote device is
// unreachable ... one would want to try an alternate remote device, all as
// part of a top-level atomic action", SS I).
//
//   ./build/examples/vacation_booking [--nodes=6] [--trips=60]
#include <cstdio>
#include <thread>
#include <vector>

#include "runtime/cluster.hpp"
#include "util/config.hpp"
#include "workloads/vacation.hpp"

using namespace hyflow;
using workloads::CustomerShard;
using workloads::Reservation;
using workloads::ResourceItem;
using workloads::ResourceKind;
using workloads::ResourceShard;

namespace {

// One trip: reserve a car, a flight and a room for `customer`. Each kind is
// tried on a primary resource and, if sold out, on an alternate — the
// closed-nested child commits whichever succeeded into the trip.
bool book_trip(tfa::Txn& tx, const ObjectId customer_shard, std::uint64_t customer,
               const std::vector<std::pair<ObjectId, std::uint64_t>>& primaries,
               const std::vector<std::pair<ObjectId, std::uint64_t>>& alternates) {
  int booked = 0;
  for (std::size_t kind = 0; kind < primaries.size(); ++kind) {
    tx.nested([&](tfa::Txn& child) {
      auto try_book = [&](const std::pair<ObjectId, std::uint64_t>& pick) {
        auto& shard = child.write<ResourceShard>(pick.first);
        auto it = shard.items().find(pick.second);
        if (it == shard.items().end() || it->second.used >= it->second.total) return false;
        it->second.used += 1;
        child.write<CustomerShard>(customer_shard)
            .customers()[customer]
            .push_back(Reservation{static_cast<ResourceKind>(kind), pick.second});
        return true;
      };
      // Action-specific fallback inside the nested action.
      if (try_book(primaries[kind]) || try_book(alternates[kind])) ++booked;
    });
  }
  return booked == static_cast<int>(primaries.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = Config::from_args(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 6));
  const int trips = static_cast<int>(cli.get_int("trips", 60));

  runtime::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.scheduler.kind = "rts";
  runtime::Cluster cluster(cfg);

  // Three resource shards (one per kind) + one customer shard per node,
  // with deliberately scarce primary resources so fallbacks trigger.
  std::vector<ObjectId> kind_shards[3];
  std::vector<ObjectId> customer_shards;
  std::uint64_t next_id = 1;
  for (NodeId n = 0; n < nodes; ++n) {
    for (int k = 0; k < 3; ++k) {
      const ObjectId oid{(0x20ull << 56) | next_id++};
      auto shard = std::make_unique<ResourceShard>(oid, static_cast<ResourceKind>(k));
      shard->items()[0] = ResourceItem{2, 0, 100};   // scarce primary
      shard->items()[1] = ResourceItem{1000, 0, 140};  // roomy alternate
      cluster.create_object(std::move(shard), n);
      kind_shards[k].push_back(oid);
    }
    const ObjectId coid{(0x21ull << 56) | next_id++};
    cluster.create_object(std::make_unique<CustomerShard>(coid), n);
    customer_shards.push_back(coid);
  }

  std::atomic<int> complete{0}, partial{0};
  {
    std::vector<std::jthread> clients;
    for (NodeId n = 0; n < nodes; ++n) {
      clients.emplace_back([&, n] {
        Xoshiro256 rng(7 + n);
        for (int t = 0; t < trips / static_cast<int>(nodes); ++t) {
          const std::uint64_t customer = n * 1000ull + static_cast<std::uint64_t>(t);
          std::vector<std::pair<ObjectId, std::uint64_t>> primaries, alternates;
          for (int k = 0; k < 3; ++k) {
            const ObjectId shard = kind_shards[k][rng.below(kind_shards[k].size())];
            primaries.emplace_back(shard, 0);
            alternates.emplace_back(shard, 1);
          }
          bool full = false;
          cluster.execute(n, 1, [&](tfa::Txn& tx) {
            full = book_trip(tx, customer_shards[n], customer, primaries, alternates);
          });
          (full ? complete : partial).fetch_add(1);
        }
      });
    }
  }

  // Audit: every `used` increment is backed by a customer reservation.
  std::int64_t used_total = 0, reservations = 0;
  cluster.execute(0, 2, [&](tfa::Txn& tx) {
    for (int k = 0; k < 3; ++k) {
      for (const ObjectId shard : kind_shards[k]) {
        for (const auto& [id, item] : tx.read<ResourceShard>(shard).items())
          used_total += item.used;
      }
    }
    for (const ObjectId cs : customer_shards) {
      for (const auto& [c, rs] : tx.read<CustomerShard>(cs).customers())
        reservations += static_cast<std::int64_t>(rs.size());
    }
  });

  std::printf("trips: %d fully booked, %d partial (fallback exhausted)\n", complete.load(),
              partial.load());
  std::printf("resources used=%lld, customer reservations=%lld -> %s\n",
              static_cast<long long>(used_total), static_cast<long long>(reservations),
              used_total == reservations ? "CONSISTENT" : "INCONSISTENT");
  cluster.shutdown();
  return used_total == reservations ? 0 : 1;
}
