// Quickstart: build a small simulated cluster, define a transactional
// object, and run closed-nested transactions through the public API.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "runtime/cluster.hpp"

using namespace hyflow;

// 1. Define a transactional object: subclass TxObject<Derived> and keep
//    state in plain members. Copying must capture the full state.
class Counter : public TxObject<Counter> {
 public:
  explicit Counter(ObjectId id) : TxObject(id) {}
  std::int64_t value = 0;
};

int main() {
  // 2. Build a cluster: 4 nodes, RTS scheduler (the paper's contribution).
  runtime::ClusterConfig cfg;
  cfg.nodes = 4;
  cfg.scheduler.kind = "rts";       // or "tfa" / "backoff"
  cfg.scheduler.cl_threshold = 3;   // contention-level threshold (§III-B)
  runtime::Cluster cluster(cfg);

  // 3. Place two shared objects on different nodes.
  const ObjectId a{1}, b{2};
  cluster.create_object(std::make_unique<Counter>(a), /*owner=*/0);
  cluster.create_object(std::make_unique<Counter>(b), /*owner=*/3);

  // 4. Run a closed-nested transaction from node 1: the parent moves one
  //    unit from `a` to `b`, each side in its own nested child. A child
  //    abort retries the child alone; a parent abort rolls back both.
  const auto result = cluster.execute(/*node=*/1, /*profile=*/1, [&](tfa::Txn& tx) {
    tx.nested([&](tfa::Txn& child) { child.write<Counter>(a).value -= 1; });
    tx.nested([&](tfa::Txn& child) { child.write<Counter>(b).value += 1; });
  });
  std::printf("transfer committed=%d attempts=%u latency=%.2f ms\n", result.committed,
              result.attempts, static_cast<double>(result.latency) / 1e6);

  // 5. Read the values back transactionally from another node.
  std::int64_t va = 0, vb = 0;
  cluster.execute(/*node=*/2, /*profile=*/2, [&](tfa::Txn& tx) {
    va = tx.read<Counter>(a).value;
    vb = tx.read<Counter>(b).value;
  });
  std::printf("a=%lld b=%lld (expected -1 and 1)\n", static_cast<long long>(va),
              static_cast<long long>(vb));

  cluster.shutdown();
  return (va == -1 && vb == 1) ? 0 : 1;
}
