// Scheduler-comparison example: runs the same workload under every
// registered policy (RTS, TFA, TFA+Backoff, Bi-interval, Greedy,
// Karma/Polka, steal-on-abort — see docs/SCHEDULERS.md) on identical
// clusters and prints a side-by-side summary — a minimal, self-contained
// version of the paper's evaluation loop, and a template for plugging a
// *custom* scheduler into the runtime (see core::Scheduler; the registry in
// core/scheduler_factory.cpp is the only place to add one).
//
//   ./build/examples/scheduler_comparison [--workload=bank] [--nodes=10]
//   [--read-ratio=0.1] [--duration-ms=400]
#include <cstdio>

#include "core/scheduler.hpp"
#include "runtime/experiment.hpp"
#include "util/config.hpp"
#include "workloads/registry.hpp"

using namespace hyflow;

int main(int argc, char** argv) {
  const auto cli = Config::from_args(argc, argv);
  const auto workload_name = cli.get_string("workload", "bank");
  const auto nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 10));
  const double read_ratio = cli.get_double("read-ratio", 0.1);

  std::printf("workload=%s nodes=%u read-ratio=%.2f\n\n", workload_name.c_str(), nodes,
              read_ratio);
  std::printf("%-14s %10s %10s %10s %10s %10s %10s\n", "scheduler", "txn/s", "aborts/c",
              "nested-ar", "enqueued", "handoffs", "msgs/c");

  for (const auto& scheduler : core::scheduler_names()) {
    runtime::ExperimentConfig cfg;
    cfg.cluster.nodes = nodes;
    cfg.cluster.workers_per_node = 3;
    cfg.cluster.scheduler.kind = scheduler;
    cfg.cluster.scheduler.cl_threshold =
        static_cast<std::uint32_t>(cli.get_int("threshold", 4));
    cfg.warmup = sim_ms(cli.get_int("warmup-ms", 150));
    cfg.measure = sim_ms(cli.get_int("duration-ms", 400));

    workloads::WorkloadConfig wcfg;
    wcfg.read_ratio = read_ratio;
    auto workload = workloads::make_workload(workload_name, wcfg);
    const auto r = runtime::run_experiment(*workload, cfg);

    const double commits = std::max<double>(1.0, static_cast<double>(r.delta.commits_root));
    std::printf("%-14s %10.1f %10.2f %9.1f%% %10llu %10llu %10.1f%s\n", scheduler.c_str(),
                r.throughput, static_cast<double>(r.delta.aborts_total()) / commits,
                r.nested_abort_rate * 100.0,
                static_cast<unsigned long long>(r.delta.enqueued),
                static_cast<unsigned long long>(r.delta.handoffs_received),
                static_cast<double>(r.messages) / commits,
                r.verified ? "" : "  VERIFY-FAILED");
  }
  std::printf(
      "\ncolumns: aborts/c = root aborts per commit; nested-ar = parent-caused share of\n"
      "nested aborts (Table I metric); msgs/c = network messages per commit.\n");
  return 0;
}
