#!/usr/bin/env bash
# Runs clang-tidy over the library sources exactly the way CI does, so local
# and CI results never diverge.
#
#   tools/run_tidy.sh           # analyse src/ (and tools/) against .clang-tidy
#   tools/run_tidy.sh --fix     # apply suggested fixes in place
#
# Requires clang-tidy (and clang++ for the compilation database). The `tidy`
# CMake preset produces build-tidy/compile_commands.json.
set -euo pipefail

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-clang-tidy}"
JOBS="$(nproc 2>/dev/null || echo 4)"
FIX_ARGS=()
if [[ "${1:-}" == "--fix" ]]; then
  FIX_ARGS=(-fix -fix-errors)
fi

command -v "$TIDY" >/dev/null || {
  echo "error: $TIDY not found (install clang-tidy or set CLANG_TIDY)" >&2
  exit 2
}

cmake --preset tidy >/dev/null

mapfile -t FILES < <(git ls-files 'src/**/*.cpp' 'tools/*.cpp')

# run-clang-tidy ships with LLVM and parallelises over the database; fall
# back to a plain loop when it is absent.
if command -v run-clang-tidy >/dev/null; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p build-tidy -quiet -j "$JOBS" \
    ${FIX_ARGS:+"${FIX_ARGS[@]}"} "${FILES[@]}"
else
  for f in "${FILES[@]}"; do
    echo "tidy: $f"
    "$TIDY" -p build-tidy --quiet ${FIX_ARGS:+"${FIX_ARGS[@]}"} "$f"
  done
fi

echo "clang-tidy: clean"
