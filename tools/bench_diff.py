#!/usr/bin/env python3
"""Validate and diff BENCH_*.json files (the bench harness's machine output).

Modes:
  bench_diff.py --validate FILE [FILE...]
      Schema-check each file; exit 1 on the first violation.
  bench_diff.py BASELINE CANDIDATE [options]
      Compare two runs point-by-point (points are matched on their full label
      set). Exit 1 when any matched point regresses: throughput drops more
      than --max-throughput-drop (default 15%), or p99 latency inflates more
      than --max-p99-inflation (default 50%). Points with fewer than
      --min-commits root commits (default 50) are skipped as noise — tiny
      smoke windows commit a handful of transactions and their ratios are
      meaningless.
  bench_diff.py --self-test
      Run the built-in synthetic checks (used by ctest); exit 0 iff they pass.

No third-party dependencies — stdlib json/argparse only.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

SCHEMA_VERSION = 1

# Every point that reports `throughput` (i.e. came from a measurement window,
# not a microbenchmark) must also report the latency percentiles and the
# degradation counters — that is the contract the regression gate relies on.
WINDOW_REQUIRED_METRICS = (
    "latency_p50_us",
    "latency_p99_us",
    "rpc_retries",
    "dedup_hits",
    "watchdog_aborts",
    "grant_reforwards",
)


class SchemaError(Exception):
    pass


def validate_doc(doc, name="<doc>"):
    """Raises SchemaError on the first violation."""
    if not isinstance(doc, dict):
        raise SchemaError(f"{name}: top level must be an object")
    if doc.get("schema_version") != SCHEMA_VERSION:
        raise SchemaError(
            f"{name}: schema_version must be {SCHEMA_VERSION}, "
            f"got {doc.get('schema_version')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        raise SchemaError(f"{name}: 'bench' must be a non-empty string")
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        raise SchemaError(f"{name}: 'meta' must be an object")
    if not isinstance(meta.get("git_sha"), str):
        raise SchemaError(f"{name}: meta.git_sha must be a string")
    points = doc.get("points")
    if not isinstance(points, list):
        raise SchemaError(f"{name}: 'points' must be an array")
    for i, point in enumerate(points):
        where = f"{name}: points[{i}]"
        if not isinstance(point, dict):
            raise SchemaError(f"{where} must be an object")
        labels = point.get("labels")
        if not isinstance(labels, dict):
            raise SchemaError(f"{where}.labels must be an object")
        for k, v in labels.items():
            if not isinstance(v, str):
                raise SchemaError(f"{where}.labels[{k!r}] must be a string")
        metrics = point.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise SchemaError(f"{where}.metrics must be a non-empty object")
        for k, v in metrics.items():
            if v is not None and not isinstance(v, (int, float)):
                raise SchemaError(f"{where}.metrics[{k!r}] must be a number")
            if isinstance(v, float) and not math.isfinite(v):
                raise SchemaError(f"{where}.metrics[{k!r}] is not finite")
        if "throughput" in metrics:
            for required in WINDOW_REQUIRED_METRICS:
                if required not in metrics:
                    raise SchemaError(
                        f"{where}: window point missing metric {required!r}")


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SchemaError(f"{path}: {exc}") from exc


def point_key(point):
    return tuple(sorted(point["labels"].items()))


def fmt_key(key):
    return "/".join(f"{k}={v}" for k, v in key) or "<unlabelled>"


def compare(baseline, candidate, opts):
    """Returns a list of regression strings (empty = pass)."""
    base_points = {point_key(p): p["metrics"] for p in baseline["points"]}
    cand_points = {point_key(p): p["metrics"] for p in candidate["points"]}

    regressions = []
    compared = skipped = 0
    for key, base in sorted(base_points.items()):
        cand = cand_points.get(key)
        if cand is None:
            print(f"  ~ {fmt_key(key)}: missing from candidate (skipped)")
            continue
        if "throughput" not in base or "throughput" not in cand:
            continue
        commits = min(base.get("commits_root", 0), cand.get("commits_root", 0))
        if commits < opts.min_commits:
            skipped += 1
            continue
        compared += 1

        base_thr, cand_thr = base["throughput"], cand["throughput"]
        if base_thr > 0:
            drop = 1.0 - cand_thr / base_thr
            if drop > opts.max_throughput_drop:
                regressions.append(
                    f"{fmt_key(key)}: throughput {base_thr:.1f} -> {cand_thr:.1f} "
                    f"(-{drop:.1%}, limit -{opts.max_throughput_drop:.0%})")

        base_p99 = base.get("latency_p99_us", 0)
        cand_p99 = cand.get("latency_p99_us", 0)
        if base_p99 > 0:
            inflation = cand_p99 / base_p99 - 1.0
            if inflation > opts.max_p99_inflation:
                regressions.append(
                    f"{fmt_key(key)}: p99 {base_p99:.0f}us -> {cand_p99:.0f}us "
                    f"(+{inflation:.1%}, limit +{opts.max_p99_inflation:.0%})")

        if cand.get("verified", 1) < 1 <= base.get("verified", 1):
            regressions.append(f"{fmt_key(key)}: candidate failed verification")

    print(f"  compared {compared} point(s), skipped {skipped} "
          f"below --min-commits={opts.min_commits}")
    return regressions


def make_doc(points):
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "synthetic",
        "meta": {"git_sha": "selftest"},
        "points": points,
    }


def make_point(labels, throughput, p99, commits=1000, verified=1):
    metrics = {
        "throughput": throughput,
        "commits_root": commits,
        "latency_p50_us": p99 / 2,
        "latency_p99_us": p99,
        "rpc_retries": 0,
        "dedup_hits": 0,
        "watchdog_aborts": 0,
        "grant_reforwards": 0,
        "verified": verified,
    }
    return {"labels": labels, "metrics": metrics}


def self_test():
    default = argparse.Namespace(
        max_throughput_drop=0.15, max_p99_inflation=0.5, min_commits=50)
    failures = []

    def check(name, condition):
        print(f"  {'ok' if condition else 'FAIL'}: {name}")
        if not condition:
            failures.append(name)

    labels = {"workload": "bank", "scheduler": "rts", "nodes": "8"}
    base = make_doc([make_point(labels, 1000.0, 500.0)])

    # Identical runs pass.
    check("identical runs pass", not compare(base, base, default))
    # A 30% throughput drop must be flagged.
    slow = make_doc([make_point(labels, 700.0, 500.0)])
    check("30% throughput drop flagged", bool(compare(base, slow, default)))
    # p99 doubling must be flagged.
    tail = make_doc([make_point(labels, 1000.0, 1100.0)])
    check("p99 inflation flagged", bool(compare(base, tail, default)))
    # Noise guard: the same drop with too few commits is skipped.
    noisy_base = make_doc([make_point(labels, 1000.0, 500.0, commits=5)])
    noisy_slow = make_doc([make_point(labels, 500.0, 500.0, commits=5)])
    check("low-commit points skipped",
          not compare(noisy_base, noisy_slow, default))
    # A verification failure in the candidate must be flagged.
    broken = make_doc([make_point(labels, 1000.0, 500.0, verified=0)])
    check("verify failure flagged", bool(compare(base, broken, default)))
    # Schema checks: a valid doc validates, a window point without p99 fails.
    try:
        validate_doc(base, "base")
        check("valid doc validates", True)
    except SchemaError:
        check("valid doc validates", False)
    bad = make_doc([make_point(labels, 1000.0, 500.0)])
    del bad["points"][0]["metrics"]["latency_p99_us"]
    try:
        validate_doc(bad, "bad")
        check("missing p99 rejected", False)
    except SchemaError:
        check("missing p99 rejected", True)
    try:
        validate_doc(make_doc([{"labels": {}, "metrics": {"x": float("nan")}}]))
        check("NaN metric rejected", False)
    except SchemaError:
        check("NaN metric rejected", True)

    if failures:
        print(f"self-test: {len(failures)} check(s) failed")
        return 1
    print("self-test: all checks passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*",
                        help="BASELINE CANDIDATE, or files for --validate")
    parser.add_argument("--validate", action="store_true",
                        help="schema-check the given files instead of diffing")
    parser.add_argument("--self-test", action="store_true",
                        help="run built-in synthetic checks")
    parser.add_argument("--max-throughput-drop", type=float, default=0.15,
                        metavar="FRAC",
                        help="fail when throughput drops more (default 0.15)")
    parser.add_argument("--max-p99-inflation", type=float, default=0.5,
                        metavar="FRAC",
                        help="fail when p99 inflates more (default 0.5)")
    parser.add_argument("--min-commits", type=int, default=50,
                        help="skip points with fewer root commits (default 50)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (CI smoke runs)")
    opts = parser.parse_args(argv)

    if opts.self_test:
        return self_test()

    if opts.validate:
        if not opts.files:
            parser.error("--validate needs at least one file")
        for path in opts.files:
            try:
                validate_doc(load(path), path)
            except SchemaError as exc:
                print(f"INVALID: {exc}")
                return 1
            print(f"ok: {path}")
        return 0

    if len(opts.files) != 2:
        parser.error("compare mode needs exactly BASELINE and CANDIDATE")
    try:
        baseline = load(opts.files[0])
        candidate = load(opts.files[1])
        validate_doc(baseline, opts.files[0])
        validate_doc(candidate, opts.files[1])
    except SchemaError as exc:
        print(f"INVALID: {exc}")
        return 1

    print(f"comparing {opts.files[0]} (baseline) vs {opts.files[1]}")
    regressions = compare(baseline, candidate, opts)
    if regressions:
        print(f"\n{len(regressions)} regression(s):")
        for regression in regressions:
            print(f"  !! {regression}")
        return 0 if opts.warn_only else 1
    print("no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
