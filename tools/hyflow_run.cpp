// hyflow_run — the repository's general-purpose experiment driver: run any
// workload on any scheduler with every knob exposed, print the experiment
// summary plus a per-node cluster report, and optionally append a CSV row
// for sweep post-processing.
//
//   hyflow_run --workload=bank --scheduler=rts --nodes=20 --read-ratio=0.1
//              --duration-ms=500 [--csv=results.csv] [--report] [--latency]
//
// Knobs (defaults in parentheses): --workload(bank) --scheduler(rts)
// --nodes(10) --workers(3) --read-ratio(0.5) --objects(6) --max-nested(4)
// --local-work-us(300) --threshold(tuned per workload)
// --min-delay-us(50) --max-delay-us(2500) --jitter(0.0)
// --warmup-ms(150) --duration-ms(400) --seed(42) --adaptive(false)
//
// Fault injection (see docs/EXPERIMENTS.md): --fault-drop(0.0)
// --fault-dup(0.0) --fault-delay(0.0) --fault-delay-spike-us(2000)
// --fault-seed(1) --fault-partition-start-ms/-end-ms/-cut
// --fault-crash-node/-start-ms/-end-ms
#include <cstdio>

#include <thread>

#include "runtime/experiment.hpp"
#include "runtime/report.hpp"
#include "util/config.hpp"
#include "util/csv.hpp"
#include "workloads/registry.hpp"

using namespace hyflow;

namespace {

std::uint32_t default_threshold(const std::string& workload) {
  if (workload == "vacation") return 8;
  if (workload == "bank") return 4;
  return 4;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = Config::from_args(argc, argv);
  if (cli.get_bool("help", false)) {
    std::printf("see the header of tools/hyflow_run.cpp for the full knob list\n");
    return 0;
  }

  const auto workload_name = cli.get_string("workload", "bank");
  const auto scheduler = cli.get_string("scheduler", "rts");
  const double read_ratio = cli.get_double("read-ratio", 0.5);

  runtime::ExperimentConfig cfg;
  cfg.cluster.nodes = static_cast<std::uint32_t>(cli.get_int("nodes", 10));
  cfg.cluster.workers_per_node = static_cast<int>(cli.get_int("workers", 3));
  cfg.cluster.scheduler.kind = scheduler;
  cfg.cluster.scheduler.cl_threshold = static_cast<std::uint32_t>(
      cli.get_int("threshold", default_threshold(workload_name)));
  cfg.cluster.scheduler.adaptive_threshold = cli.get_bool("adaptive", false);
  cfg.cluster.topology.min_delay = sim_us(cli.get_int("min-delay-us", 50));
  cfg.cluster.topology.max_delay = sim_us(cli.get_int("max-delay-us", 2500));
  cfg.cluster.topology.jitter = cli.get_double("jitter", 0.0);
  cfg.cluster.topology.seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  cfg.cluster.seed = cfg.cluster.topology.seed;
  cfg.cluster.fault = net::FaultPlan::from_config(cli);
  cfg.warmup = sim_ms(cli.get_int("warmup-ms", 150));
  cfg.measure = sim_ms(cli.get_int("duration-ms", 400));

  workloads::WorkloadConfig wcfg;
  wcfg.read_ratio = read_ratio;
  wcfg.objects_per_node = static_cast<int>(cli.get_int("objects", 6));
  wcfg.max_nested = static_cast<int>(cli.get_int("max-nested", 4));
  wcfg.local_work = sim_us(cli.get_int("local-work-us", 300));
  wcfg.seed = cfg.cluster.seed;

  auto workload = workloads::make_workload(workload_name, wcfg);

  // Run with an inline cluster (not run_experiment) so the report and
  // latency histogram can be collected before teardown.
  runtime::Cluster cluster(cfg.cluster);
  workload->setup(cluster);
  cluster.start_workers(*workload);
  std::this_thread::sleep_for(to_chrono(cfg.warmup));
  const auto before = cluster.total_metrics();
  const auto msgs_before = cluster.network().stats().messages.load();
  const SimTime t0 = sim_now();
  std::this_thread::sleep_for(to_chrono(cfg.measure));
  const auto after = cluster.total_metrics();
  const auto msgs_after = cluster.network().stats().messages.load();
  const SimTime t1 = sim_now();
  cluster.stop_workers();

  const auto delta = after - before;
  const double secs = static_cast<double>(t1 - t0) * 1e-9;
  const double throughput = static_cast<double>(delta.commits_root) / secs;
  const bool verified = workload->verify(cluster);

  std::printf("%s on %s: %u nodes, read-ratio %.2f\n", workload_name.c_str(),
              scheduler.c_str(), cluster.size(), read_ratio);
  std::printf("throughput          %10.1f txn/s\n", throughput);
  std::printf("aborts/commit       %10.2f\n",
              delta.commits_root
                  ? static_cast<double>(delta.aborts_total()) /
                        static_cast<double>(delta.commits_root)
                  : 0.0);
  std::printf("nested abort rate   %9.1f%%  (parent-caused share, Table I)\n",
              delta.nested_abort_rate() * 100.0);
  std::printf("enqueued/hand-offs  %10llu / %llu\n",
              static_cast<unsigned long long>(delta.enqueued),
              static_cast<unsigned long long>(delta.handoffs_received));
  std::printf("messages            %10llu (%.1f per commit)\n",
              static_cast<unsigned long long>(msgs_after - msgs_before),
              delta.commits_root ? static_cast<double>(msgs_after - msgs_before) /
                                       static_cast<double>(delta.commits_root)
                                 : 0.0);
  std::printf("invariants          %10s\n", verified ? "verified" : "VIOLATED");

  if (cli.get_bool("latency", false)) {
    const auto lat = cluster.merged_latency();
    std::printf("latency ms          p50=%.2f p90=%.2f p99=%.2f max=%.2f\n",
                static_cast<double>(lat.value_at_percentile(50)) / 1e6,
                static_cast<double>(lat.value_at_percentile(90)) / 1e6,
                static_cast<double>(lat.value_at_percentile(99)) / 1e6,
                static_cast<double>(lat.max()) / 1e6);
  }
  if (cli.get_bool("report", false)) {
    std::printf("\n%s", runtime::collect_report(cluster).to_string().c_str());
  }

  CsvWriter csv(cli.get_string("csv", ""),
                {"workload", "scheduler", "nodes", "workers", "read_ratio", "threshold",
                 "throughput", "commits", "aborts", "nested_abort_rate", "enqueued",
                 "handoffs", "messages", "verified"});
  if (csv.enabled()) {
    csv.row()
        .cell(workload_name)
        .cell(scheduler)
        .cell(static_cast<std::uint64_t>(cluster.size()))
        .cell(static_cast<std::int64_t>(cfg.cluster.workers_per_node))
        .cell(read_ratio)
        .cell(static_cast<std::uint64_t>(cfg.cluster.scheduler.cl_threshold))
        .cell(throughput)
        .cell(delta.commits_root)
        .cell(delta.aborts_total())
        .cell(delta.nested_abort_rate())
        .cell(delta.enqueued)
        .cell(delta.handoffs_received)
        .cell(msgs_after - msgs_before)
        .cell(std::string(verified ? "yes" : "no"));
  }

  cluster.shutdown();
  return verified ? 0 : 1;
}
