#include "bench/common.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "bench/bench_result.hpp"
#include "core/scheduler.hpp"
#include "util/csv.hpp"

namespace hyflow::bench {

namespace {

std::vector<std::string> split_csv_list(const std::string& raw) {
  std::vector<std::string> items;
  std::stringstream ss(raw);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

}  // namespace

HarnessOptions HarnessOptions::from_config(const Config& cfg) {
  HarnessOptions opt;
  opt.node_sweep = cfg.get_int_list("nodes", opt.node_sweep);
  opt.workers = static_cast<int>(cfg.get_int("workers", opt.workers));
  opt.measure = sim_ms(cfg.get_int("duration-ms", opt.measure / 1000000));
  opt.warmup = sim_ms(cfg.get_int("warmup-ms", opt.warmup / 1000000));
  opt.repeats = static_cast<int>(cfg.get_int("repeats", opt.repeats));
  opt.read_ratio_low = cfg.get_double("read-ratio-low", opt.read_ratio_low);
  opt.read_ratio_high = cfg.get_double("read-ratio-high", opt.read_ratio_high);
  opt.objects_per_node = static_cast<int>(cfg.get_int("objects", opt.objects_per_node));
  opt.min_delay = sim_us(cfg.get_int("min-delay-us", opt.min_delay / 1000));
  opt.max_delay = sim_us(cfg.get_int("max-delay-us", opt.max_delay / 1000));
  opt.local_work = sim_us(cfg.get_int("local-work-us", opt.local_work / 1000));
  opt.max_nested = static_cast<int>(cfg.get_int("max-nested", opt.max_nested));
  opt.seed = static_cast<std::uint64_t>(cfg.get_int("seed", static_cast<std::int64_t>(opt.seed)));
  opt.verify = cfg.get_bool("verify", opt.verify);
  opt.csv_path = cfg.get_string("csv", "");
  opt.json_path = cfg.get_string("json", "");
  opt.workloads = split_csv_list(cfg.get_string("workloads", ""));
  opt.schedulers = split_csv_list(cfg.get_string("schedulers", ""));
  return opt;
}

BenchResult make_bench_result(const HarnessOptions& opt) {
  BenchResult result(opt.bench_name.empty() ? "bench" : opt.bench_name);
  result.meta("seed", static_cast<std::int64_t>(opt.seed));
  result.meta("workers_per_node", static_cast<std::int64_t>(opt.workers));
  result.meta("measure_ms", static_cast<std::int64_t>(opt.measure / 1000000));
  result.meta("warmup_ms", static_cast<std::int64_t>(opt.warmup / 1000000));
  result.meta("repeats", static_cast<std::int64_t>(opt.repeats));
  result.meta("objects_per_node", static_cast<std::int64_t>(opt.objects_per_node));
  result.meta("min_delay_us", static_cast<std::int64_t>(opt.min_delay / 1000));
  result.meta("max_delay_us", static_cast<std::int64_t>(opt.max_delay / 1000));
  result.meta("local_work_us", static_cast<std::int64_t>(opt.local_work / 1000));
  result.meta("max_nested", static_cast<std::int64_t>(opt.max_nested));
  result.meta("verify", opt.verify);
  {
    std::ostringstream nodes;
    for (std::size_t i = 0; i < opt.node_sweep.size(); ++i)
      nodes << (i ? "," : "") << opt.node_sweep[i];
    result.meta("node_sweep", nodes.str());
  }
  return result;
}

void write_bench_json(const BenchResult& result, const HarnessOptions& opt) {
  if (opt.json_path == "none" || opt.json_path == "off") return;
  const std::string path =
      opt.json_path.empty() ? "BENCH_" + result.name() + ".json" : opt.json_path;
  if (result.write(path))
    std::printf("# wrote %s (%zu points)\n", path.c_str(), result.point_count());
}

std::vector<std::string> selected_workloads(const HarnessOptions& opt) {
  return opt.workloads.empty() ? workloads::workload_names() : opt.workloads;
}

std::vector<std::string> selected_schedulers(const HarnessOptions& opt) {
  if (opt.schedulers.empty()) return core::scheduler_names();
  std::vector<std::string> names;
  for (const auto& s : opt.schedulers) {
    const auto canonical = core::canonical_scheduler_name(s);
    // Pass unknown names through: make_scheduler reports them fatally with
    // the valid list, which beats silently dropping a misspelled policy.
    names.push_back(canonical.empty() ? s : canonical);
  }
  return names;
}

std::uint32_t tuned_threshold(const std::string& workload) {
  // Peaks from bench/ablation_cl_threshold (EXPERIMENTS.md records the
  // sweeps); the paper fixes the threshold at each benchmark's peak.
  if (workload == "vacation") return 8;
  if (workload == "bank") return 4;
  if (workload == "linked-list" || workload == "ll") return 4;
  if (workload == "rb-tree" || workload == "rbtree") return 4;
  if (workload == "bst") return 4;
  if (workload == "dht") return 4;
  return 4;
}

runtime::ExperimentResult run_point(const HarnessOptions& opt, const std::string& workload,
                                    const std::string& scheduler, std::uint32_t nodes,
                                    double read_ratio, std::uint32_t threshold_override) {
  std::vector<runtime::ExperimentResult> results;
  for (int rep = 0; rep < std::max(1, opt.repeats); ++rep) {
    runtime::ExperimentConfig cfg;
    cfg.cluster.nodes = nodes;
    cfg.cluster.workers_per_node = opt.workers;
    cfg.cluster.scheduler.kind = scheduler;
    cfg.cluster.scheduler.cl_threshold =
        threshold_override ? threshold_override : tuned_threshold(workload);
    cfg.cluster.topology.min_delay = opt.min_delay;
    cfg.cluster.topology.max_delay = opt.max_delay;
    cfg.cluster.topology.seed = opt.seed;
    cfg.cluster.seed = opt.seed + static_cast<std::uint64_t>(rep) * 1000;
    cfg.warmup = opt.warmup;
    cfg.measure = opt.measure;
    cfg.verify = opt.verify;

    workloads::WorkloadConfig wcfg;
    wcfg.read_ratio = read_ratio;
    wcfg.objects_per_node = opt.objects_per_node;
    wcfg.max_nested = opt.max_nested;
    wcfg.local_work = opt.local_work;
    wcfg.seed = opt.seed + static_cast<std::uint64_t>(rep);

    auto wl = workloads::make_workload(workload, wcfg);
    results.push_back(runtime::run_experiment(*wl, cfg));
  }
  std::sort(results.begin(), results.end(),
            [](const runtime::ExperimentResult& a, const runtime::ExperimentResult& b) {
              return a.throughput < b.throughput;
            });
  const auto& median = results[results.size() / 2];
  const std::uint32_t threshold =
      threshold_override ? threshold_override : tuned_threshold(workload);
  // Label points with the canonical policy name so aliases ("backoff",
  // "bi") and the per-policy abort breakdowns they carry diff cleanly
  // across runs.
  const std::string canonical = core::canonical_scheduler_name(scheduler);
  const std::string& policy = canonical.empty() ? scheduler : canonical;
  if (opt.sink) {
    opt.sink->add_point()
        .label("workload", workload)
        .label("scheduler", policy)
        .label("nodes", static_cast<std::int64_t>(nodes))
        .label("read_ratio", read_ratio)
        .label("threshold", static_cast<std::int64_t>(threshold))
        .from_experiment(median);
  }
  if (!opt.csv_path.empty()) {
    CsvWriter csv(opt.csv_path,
                  {"bench", "workload", "scheduler", "nodes", "read_ratio", "threshold",
                   "throughput", "commits", "aborts", "nested_abort_rate", "enqueued",
                   "handoffs", "backoff_expired", "messages", "verified"});
    csv.row()
        .cell(opt.bench_name)
        .cell(workload)
        .cell(policy)
        .cell(static_cast<std::uint64_t>(nodes))
        .cell(read_ratio)
        .cell(static_cast<std::uint64_t>(threshold))
        .cell(median.throughput)
        .cell(median.delta.commits_root)
        .cell(median.delta.aborts_total())
        .cell(median.delta.nested_abort_rate())
        .cell(median.delta.enqueued)
        .cell(median.delta.handoffs_received)
        .cell(median.delta.backoff_expired)
        .cell(median.messages)
        .cell(std::string(median.verified ? "yes" : "no"));
  }
  return median;
}

void print_header(const std::string& title, const HarnessOptions& opt) {
  std::printf("# %s\n", title.c_str());
  std::printf(
      "# workers/node=%d measure=%lldms warmup=%lldms repeats=%d objects/node=%d\n"
      "# link delay=[%lld,%lld]us (paper 1..50ms scaled) local-work=%lldus max-nested=%d\n",
      opt.workers, static_cast<long long>(opt.measure / 1000000),
      static_cast<long long>(opt.warmup / 1000000), opt.repeats, opt.objects_per_node,
      static_cast<long long>(opt.min_delay / 1000), static_cast<long long>(opt.max_delay / 1000),
      static_cast<long long>(opt.local_work / 1000), opt.max_nested);
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%5.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace hyflow::bench
