// google-benchmark microbenchmarks for the substrates: bloom filter, online
// stats, histogram, blocking queue, contention tracker, requester list,
// scheduler decisions, object store operations, topology lookups and a full
// network round-trip. These quantify the per-message and per-decision costs
// underlying the macro results.
//
// In addition to google-benchmark's console output, writes
// BENCH_micro_substrates.json (one point per microbenchmark with
// real/cpu time and ops/s) via a collecting reporter; --json=FILE overrides
// the path, --json=none disables.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_result.hpp"

#include "core/contention.hpp"
#include "core/requester_list.hpp"
#include "core/rts_scheduler.hpp"
#include "dsm/object_store.hpp"
#include "net/network.hpp"
#include "runtime/cluster.hpp"
#include "net/rpc.hpp"
#include "util/blocking_queue.hpp"
#include "util/bloom_filter.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hyflow {
namespace {

void BM_BloomInsert(benchmark::State& state) {
  BloomFilter filter(1 << 14, 7);
  std::uint64_t key = 0;
  for (auto _ : state) {
    filter.insert(key++);
    if ((key & 0x3ff) == 0) filter.clear();
  }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomQuery(benchmark::State& state) {
  BloomFilter filter(1 << 14, 7);
  for (std::uint64_t k = 0; k < 1000; ++k) filter.insert(k);
  std::uint64_t key = 0;
  for (auto _ : state) benchmark::DoNotOptimize(filter.maybe_contains(key++));
}
BENCHMARK(BM_BloomQuery);

void BM_OnlineStatsAdd(benchmark::State& state) {
  OnlineStats stats;
  double x = 0.5;
  for (auto _ : state) {
    stats.add(x);
    x += 0.1;
  }
  benchmark::DoNotOptimize(stats.mean());
}
BENCHMARK(BM_OnlineStatsAdd);

void BM_HistogramAdd(benchmark::State& state) {
  Histogram h;
  std::uint64_t v = 1;
  for (auto _ : state) h.add(v = v * 2862933555777941757ull + 3037000493ull);
}
BENCHMARK(BM_HistogramAdd);

void BM_BlockingQueuePushPop(benchmark::State& state) {
  BlockingQueue<int> q;
  for (auto _ : state) {
    q.push(1);
    benchmark::DoNotOptimize(q.try_pop());
  }
}
BENCHMARK(BM_BlockingQueuePushPop);

void BM_ContentionTrackerRecord(benchmark::State& state) {
  core::ContentionTracker tracker(sim_ms(20));
  std::uint64_t i = 0;
  for (auto _ : state) {
    tracker.record_request(ObjectId{1 + (i & 7)}, TxnId{1 + (i & 63)},
                           static_cast<SimTime>(i * 1000));
    ++i;
  }
}
BENCHMARK(BM_ContentionTrackerRecord);

void BM_ContentionTrackerLocalCl(benchmark::State& state) {
  core::ContentionTracker tracker(sim_ms(20));
  for (std::uint64_t i = 0; i < 64; ++i)
    tracker.record_request(ObjectId{1}, TxnId{i + 1}, static_cast<SimTime>(i));
  std::uint64_t i = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(tracker.local_cl(ObjectId{1}, static_cast<SimTime>(++i)));
}
BENCHMARK(BM_ContentionTrackerLocalCl);

void BM_RtsOnConflict(benchmark::State& state) {
  // One decision per iteration (the paper's O(CL_threshold) claim): enqueue
  // until the threshold blocks, then steady-state aborts.
  core::SchedulerConfig cfg;
  cfg.cl_threshold = 4;
  core::RtsScheduler rts(cfg);
  std::uint64_t i = 0;
  for (auto _ : state) {
    core::ConflictContext ctx;
    ctx.oid = ObjectId{1 + (i & 3)};
    ctx.request.oid = ctx.oid;
    ctx.request.txid = TxnId{1 + (i & 31)};
    ctx.request_msg_id = ++i;
    ctx.request.ets.start = 0;
    ctx.request.ets.request = sim_ms(5);
    ctx.request.ets.expected_commit = sim_ms(7);
    ctx.validator_remaining = sim_ms(1);
    benchmark::DoNotOptimize(rts.on_conflict(ctx));
    if ((i & 0xff) == 0) (void)rts.extract_queue(ctx.oid);
  }
}
BENCHMARK(BM_RtsOnConflict);

void BM_RequesterListHeadGroup(benchmark::State& state) {
  core::RequesterList list;
  Xoshiro256 rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    for (int i = 0; i < 8; ++i) {
      net::QueuedRequester r;
      r.txid = TxnId{static_cast<std::uint64_t>(i + 1)};
      r.mode = rng.chance(0.5) ? net::AccessMode::kRead : net::AccessMode::kWrite;
      list.add(0, r);
    }
    state.ResumeTiming();
    while (!list.empty()) benchmark::DoNotOptimize(list.pop_head_group());
  }
}
BENCHMARK(BM_RequesterListHeadGroup);

class Cell : public TxObject<Cell> {
 public:
  explicit Cell(ObjectId id) : TxObject(id) {}
  std::int64_t value = 0;
};

void BM_ObjectStoreLockUnlock(benchmark::State& state) {
  dsm::ObjectStore store;
  store.install(std::make_shared<Cell>(ObjectId{1}), Version{1, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.lock(ObjectId{1}, TxnId{5}, 1));
    store.unlock(ObjectId{1}, TxnId{5});
  }
}
BENCHMARK(BM_ObjectStoreLockUnlock);

void BM_ObjectClone(benchmark::State& state) {
  Cell cell(ObjectId{1});
  for (auto _ : state) benchmark::DoNotOptimize(cell.clone());
}
BENCHMARK(BM_ObjectClone);

void BM_TopologyDelay(benchmark::State& state) {
  net::TopologyConfig cfg;
  cfg.nodes = 80;
  net::Topology topo(cfg);
  std::uint32_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.delay(i % 80, (i * 7 + 3) % 80));
    ++i;
  }
}
BENCHMARK(BM_TopologyDelay);

void BM_NetworkRoundTrip(benchmark::State& state) {
  // Full echo round-trip through the timer dispatcher and delivery lanes at
  // minimal latency: the fixed per-message overhead of the simulation.
  net::TopologyConfig tcfg;
  tcfg.nodes = 2;
  tcfg.min_delay = sim_us(1);
  tcfg.max_delay = sim_us(2);
  tcfg.local_delay = sim_us(1);
  net::Network network{net::Topology(tcfg), 2};
  net::PendingCalls pending;
  network.register_handler(0, [&](net::Message m) {
    if (m.reply_to) pending.deliver(std::move(m));
  });
  network.register_handler(1, [&](net::Message m) {
    net::Message reply;
    reply.from = 1;
    reply.to = 0;
    reply.reply_to = m.msg_id;
    reply.payload = net::FindOwnerResponse{};
    network.send(std::move(reply));
  });
  network.start();
  for (auto _ : state) {
    const auto id = network.allocate_msg_id();
    auto call = pending.open(id);
    net::Message m;
    m.from = 0;
    m.to = 1;
    m.msg_id = id;
    m.payload = net::FindOwnerRequest{ObjectId{1}};
    network.send(std::move(m));
    benchmark::DoNotOptimize(pending.wait(call, id, std::nullopt));
    pending.done(id);
  }
  network.stop();
}
BENCHMARK(BM_NetworkRoundTrip)->Unit(benchmark::kMicrosecond);

// End-to-end transaction paths on a minimal 2-node cluster at near-zero
// link latency: the protocol's fixed per-transaction overhead (messages,
// clock bookkeeping, set management) with the latency model factored out.
struct ClusterFixture {
  ClusterFixture() {
    runtime::ClusterConfig cfg;
    cfg.nodes = 2;
    cfg.workers_per_node = 0;
    cfg.topology.min_delay = sim_us(1);
    cfg.topology.max_delay = sim_us(2);
    cfg.topology.local_delay = sim_us(1);
    cluster = std::make_unique<runtime::Cluster>(cfg);
    cluster->create_object(std::make_unique<Cell>(ObjectId{1}), 1);
  }
  std::unique_ptr<runtime::Cluster> cluster;
};

void BM_TxnReadRemote(benchmark::State& state) {
  ClusterFixture fx;
  for (auto _ : state) {
    fx.cluster->execute(0, 1, [](tfa::Txn& tx) {
      benchmark::DoNotOptimize(tx.read<Cell>(ObjectId{1}).value);
    });
  }
  fx.cluster->shutdown();
}
BENCHMARK(BM_TxnReadRemote)->Unit(benchmark::kMicrosecond);

void BM_TxnWriteCommitRemote(benchmark::State& state) {
  ClusterFixture fx;
  for (auto _ : state) {
    fx.cluster->execute(0, 1, [](tfa::Txn& tx) { tx.write<Cell>(ObjectId{1}).value += 1; });
  }
  fx.cluster->shutdown();
}
BENCHMARK(BM_TxnWriteCommitRemote)->Unit(benchmark::kMicrosecond);

void BM_TxnClosedNestedWrite(benchmark::State& state) {
  ClusterFixture fx;
  for (auto _ : state) {
    fx.cluster->execute(0, 1, [](tfa::Txn& tx) {
      tx.nested([](tfa::Txn& child) { child.write<Cell>(ObjectId{1}).value += 1; });
    });
  }
  fx.cluster->shutdown();
}
BENCHMARK(BM_TxnClosedNestedWrite)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace hyflow

namespace {

// ConsoleReporter that additionally collects each run for the JSON file.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  struct Item {
    std::string name;
    double real_ns = 0.0;  // per iteration
    double cpu_ns = 0.0;   // per iteration
    double iterations = 0.0;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      Item item;
      item.name = run.benchmark_name();
      const double iters = run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      item.real_ns = run.real_accumulated_time * 1e9 / iters;
      item.cpu_ns = run.cpu_accumulated_time * 1e9 / iters;
      item.iterations = static_cast<double>(run.iterations);
      items.push_back(std::move(item));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<Item> items;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --json= before google-benchmark sees (and rejects) it.
  std::string json_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      args.push_back(argv[i]);
    }
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) return 1;

  hyflow::bench::BenchResult bench("micro_substrates");
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (json_path == "none" || json_path == "off") return 0;
  for (const auto& item : reporter.items) {
    bench.add_point()
        .label("benchmark", item.name)
        .metric("real_time_ns", item.real_ns)
        .metric("cpu_time_ns", item.cpu_ns)
        .metric("iterations", item.iterations)
        .metric("ops_per_sec", item.real_ns > 0.0 ? 1e9 / item.real_ns : 0.0);
  }
  const std::string path =
      json_path.empty() ? "BENCH_" + bench.name() + ".json" : json_path;
  if (bench.write(path))
    std::printf("# wrote %s (%zu points)\n", path.c_str(), bench.point_count());
  return 0;
}
