// Ablation: CL-threshold sensitivity (§IV-A: "At a certain point of the
// CL's threshold, we observe a peak point of transactional throughput").
//
// Sweeps the RTS contention-level threshold per benchmark at high contention
// and prints the throughput curve; the per-benchmark defaults in
// bench/common.cpp are the peaks of these sweeps.
//
// Usage: ablation_cl_threshold [--nodes=12] [--thresholds=1,2,4,6,8,12,16]
//        [--workloads=bank,dht] ...
#include <cstdio>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"

using namespace hyflow;
using namespace hyflow::bench;

int main(int argc, char** argv) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = "ablation_cl_threshold";
  const auto nodes = static_cast<std::uint32_t>(cfg.get_int("nodes", 12));
  const auto thresholds = cfg.get_int_list("thresholds", {1, 2, 4, 6, 8, 12, 16});
  if (opt.workloads.empty()) opt.workloads = {"bank", "vacation", "dht"};
  const std::vector<std::string> selected = opt.workloads;

  BenchResult bench = make_bench_result(opt);
  bench.meta("nodes", static_cast<std::int64_t>(nodes));
  opt.sink = &bench;

  print_header("Ablation: RTS CL-threshold sweep (high contention)", opt);
  std::printf("# nodes=%u read-ratio=%.2f\n\n", nodes, opt.read_ratio_high);

  for (const auto& workload : selected) {
    std::printf("## %s\n%-10s %12s %10s %10s %12s\n", workload.c_str(), "threshold",
                "txn/s", "enqueued", "expired", "abort-ratio");
    double best_thr = 0;
    std::int64_t best_t = 0;
    for (const auto t : thresholds) {
      const auto result = run_point(opt, workload, "rts", nodes, opt.read_ratio_high,
                                    static_cast<std::uint32_t>(t));
      std::printf("%-10lld %12.1f %10llu %10llu %12s\n", static_cast<long long>(t),
                  result.throughput,
                  static_cast<unsigned long long>(result.delta.enqueued),
                  static_cast<unsigned long long>(result.delta.backoff_expired),
                  pct(result.abort_ratio).c_str());
      std::fflush(stdout);
      if (result.throughput > best_thr) {
        best_thr = result.throughput;
        best_t = t;
      }
    }
    std::printf("-> peak at threshold %lld (%.1f txn/s)\n\n", static_cast<long long>(best_t),
                best_thr);
  }
  write_bench_json(bench, opt);
  return 0;
}
