// Figure 4 reproduction: transactional throughput at LOW contention (90%
// read transactions), 10-80 nodes, RTS vs TFA vs TFA+Backoff, one panel per
// benchmark (paper panels a-f: Vacation, Bank, Linked List, RB-Tree, BST,
// DHT). Paper shape: RTS highest everywhere; Vacation/Bank improvements are
// the least pronounced (long transactions); all series grow with nodes.
#include "bench/fig_throughput.hpp"

int main(int argc, char** argv) {
  return hyflow::bench::run_throughput_figure(
      argc, argv, "Figure 4: throughput vs nodes, low contention (90% reads)", true);
}
