// Shared harness for the paper-reproduction benches: paper-derived default
// parameters, per-workload tuned CL thresholds (§IV-A fixes the threshold at
// the observed throughput peak), CLI overrides, and table printers.
//
// Common CLI knobs (every bench binary):
//   --nodes=10,20,40,80     node sweep (or single value where applicable)
//   --workers=3             workers per node (saturating load generators)
//   --duration-ms=400       measurement window
//   --warmup-ms=150         warmup before the window
//   --repeats=3             repetitions (median by throughput reported)
//   --read-ratio-low=0.9    "low contention" read fraction   (§IV-A)
//   --read-ratio-high=0.1   "high contention" read fraction  (§IV-A)
//   --objects=6             shared objects per node          (§IV-A: 5..10)
//   --min-delay-us / --max-delay-us  link delays (default: paper 1..50 ms
//                           scaled 1 ms -> 50 us; see DESIGN.md)
//   --local-work-us=300     local execution per nested child
//   --seed=42
//   --csv=FILE              append one row per measured point (see util/csv)
//   --json=FILE             machine-readable result file (default
//                           BENCH_<bench>.json; "none" disables)
//   --workloads=a,b         restrict multi-workload benches to a subset
//   --schedulers=rts,tfa    restrict the policy sweep (default: every
//                           policy registered in core::scheduler_names())
#pragma once

#include <string>
#include <vector>

#include "runtime/experiment.hpp"
#include "util/config.hpp"
#include "workloads/registry.hpp"

namespace hyflow::bench {

class BenchResult;

struct HarnessOptions {
  std::vector<std::int64_t> node_sweep{10, 20, 40, 80};
  int workers = 3;
  SimDuration measure = sim_ms(400);
  SimDuration warmup = sim_ms(150);
  int repeats = 3;
  double read_ratio_low = 0.9;
  double read_ratio_high = 0.1;
  int objects_per_node = 6;
  SimDuration min_delay = sim_us(50);
  SimDuration max_delay = sim_us(2500);
  SimDuration local_work = sim_us(300);
  int max_nested = 4;
  std::uint64_t seed = 42;
  bool verify = true;
  std::string csv_path;    // empty = no CSV output
  std::string bench_name;  // stamped into CSV rows; set by each binary
  std::string json_path;   // "" = BENCH_<bench>.json, "none"/"off" disables
  // Workload subset for benches that sweep every registered workload
  // (empty = all). Lets CI smoke runs measure one workload cheaply.
  std::vector<std::string> workloads;
  // Scheduler-policy subset for benches that sweep the zoo (empty = every
  // registered policy, canonical names, factory order).
  std::vector<std::string> schedulers;
  // When set, run_point appends every measured point here (labels:
  // workload/scheduler/nodes/read_ratio/threshold + the standard metrics).
  BenchResult* sink = nullptr;

  static HarnessOptions from_config(const Config& cfg);
};

// BenchResult for this run with the harness parameters stamped as metadata
// (seed, workers, window, delays, ...). Uses `opt.bench_name`.
BenchResult make_bench_result(const HarnessOptions& opt);

// Writes `result` to opt.json_path (default BENCH_<name>.json) unless
// disabled; prints the path so runs are discoverable from the console.
void write_bench_json(const BenchResult& result, const HarnessOptions& opt);

// The workloads this run sweeps: opt.workloads if given, else all registered.
std::vector<std::string> selected_workloads(const HarnessOptions& opt);

// The scheduler policies this run sweeps: opt.schedulers (canonicalized —
// an unknown name dies in make_scheduler with the valid list) if given,
// else every policy in core::scheduler_names().
std::vector<std::string> selected_schedulers(const HarnessOptions& opt);

// CL threshold at the per-benchmark throughput peak (found by the
// ablation bench; the paper determines it the same way).
std::uint32_t tuned_threshold(const std::string& workload);

// Runs one experiment point; repeats and reports the median by throughput.
runtime::ExperimentResult run_point(const HarnessOptions& opt, const std::string& workload,
                                    const std::string& scheduler, std::uint32_t nodes,
                                    double read_ratio,
                                    std::uint32_t threshold_override = 0);

// Printing helpers.
void print_header(const std::string& title, const HarnessOptions& opt);
std::string pct(double fraction);

}  // namespace hyflow::bench
