// Figure 6 reproduction: summary of RTS's throughput speedup over TFA and
// TFA+Backoff, per benchmark, at low and high contention.
//
// Paper: bars between ~1.2x and ~1.9x; overall "RTS improves throughput ...
// by as much as 1.53x (low) ~ 1.88x (high)". The shape to reproduce: every
// bar above 1.0 at high contention, Vacation/Bank the least pronounced, and
// high-contention speedups above low-contention ones.
//
// Usage: fig6_speedup_summary [--nodes=24] ...
#include <cstdio>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"

using namespace hyflow;
using namespace hyflow::bench;

int main(int argc, char** argv) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = "fig6_speedup_summary";
  const auto nodes = static_cast<std::uint32_t>(cfg.get_int("nodes", 24));

  BenchResult bench = make_bench_result(opt);
  bench.meta("nodes", static_cast<std::int64_t>(nodes));
  opt.sink = &bench;

  print_header("Figure 6: RTS throughput speedup over TFA and TFA+Backoff", opt);
  std::printf("# nodes=%u; values are RTS throughput / competitor throughput\n\n", nodes);
  std::printf("%-12s | %10s %14s | %10s %14s\n", "benchmark", "TFA(low)", "Backoff(low)",
              "TFA(high)", "Backoff(high)");
  std::printf("-------------+---------------------------+--------------------------\n");

  double best_low = 0, best_high = 0;
  for (const auto& workload : selected_workloads(opt)) {
    double speedups[4];
    int i = 0;
    for (const double rr : {opt.read_ratio_low, opt.read_ratio_high}) {
      const double rts = run_point(opt, workload, "rts", nodes, rr).throughput;
      for (const char* baseline : {"tfa", "backoff"}) {
        const double other = run_point(opt, workload, baseline, nodes, rr).throughput;
        speedups[i++] = other > 0 ? rts / other : 0.0;
      }
    }
    std::printf("%-12s | %9.2fx %13.2fx | %9.2fx %13.2fx\n", workload.c_str(), speedups[0],
                speedups[1], speedups[2], speedups[3]);
    std::fflush(stdout);
    best_low = std::max({best_low, speedups[0], speedups[1]});
    best_high = std::max({best_high, speedups[2], speedups[3]});
  }
  std::printf("\n# max speedup: %.2fx (low) / %.2fx (high); paper: 1.53x / 1.88x\n", best_low,
              best_high);
  bench.meta("max_speedup_low", best_low);
  bench.meta("max_speedup_high", best_high);
  write_bench_json(bench, opt);
  return 0;
}
