// Machine-readable bench output: every bench binary accumulates its measured
// points into a BenchResult and writes `BENCH_<name>.json` next to its text
// output. The schema is deliberately flat so tools/bench_diff.py (and any
// ad-hoc jq) can diff two runs without bench-specific knowledge:
//
//   {
//     "schema_version": 1,
//     "bench": "fig4_throughput",
//     "meta":   { "git_sha": "...", "seed": 42, ... },          // run identity
//     "points": [ { "labels":  { "workload": "bank", ... },     // point identity
//                   "metrics": { "throughput": 1234.5, ... } }, // numbers only
//                 ... ]
//   }
//
// Labels are strings (they key the point for diffing); metrics are doubles.
// `BenchPoint::from_experiment` records the standard metric set — throughput,
// commit/abort breakdown by cause, nested-abort rate, latency percentiles
// from the histogram, message/byte traffic, and the degradation counters —
// so every bench reports the same vocabulary.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/experiment.hpp"

namespace hyflow::bench {

inline constexpr int kBenchSchemaVersion = 1;

class BenchPoint {
 public:
  BenchPoint& label(const std::string& key, const std::string& value);
  BenchPoint& label(const std::string& key, std::int64_t value);
  BenchPoint& label(const std::string& key, double value);  // "%g" rendering

  BenchPoint& metric(const std::string& key, double value);
  BenchPoint& metric(const std::string& key, std::uint64_t value);

  // Standard metric set from a measurement window. `from_experiment` is the
  // one-call version for benches built on run_experiment; `from_metrics` is
  // for benches that snapshot a cluster themselves (e.g. makespan_bounds).
  BenchPoint& from_experiment(const runtime::ExperimentResult& result);
  BenchPoint& from_metrics(const runtime::MetricsSnapshot& delta, double seconds,
                           std::uint64_t messages, std::uint64_t bytes, bool verified);

  const std::vector<std::pair<std::string, std::string>>& labels() const { return labels_; }
  const std::vector<std::pair<std::string, double>>& metrics() const { return metrics_; }

 private:
  // Insertion-ordered; duplicate keys overwrite in place so repeated
  // `metric()` calls behave like assignment.
  std::vector<std::pair<std::string, std::string>> labels_;
  std::vector<std::pair<std::string, double>> metrics_;
};

class BenchResult {
 public:
  // Stamps run identity: git sha (build-time, overridable via
  // HYFLOW_GIT_SHA env), schema version, and the start timestamp.
  explicit BenchResult(std::string bench_name);

  void meta(const std::string& key, const std::string& value);
  // Without this overload a string literal would convert to bool.
  void meta(const std::string& key, const char* value) { meta(key, std::string(value)); }
  void meta(const std::string& key, std::int64_t value);
  void meta(const std::string& key, double value);
  void meta(const std::string& key, bool value);

  BenchPoint& add_point();

  const std::string& name() const { return name_; }
  std::size_t point_count() const { return points_.size(); }
  const std::vector<BenchPoint>& points() const { return points_; }

  // Full document, including `wall_time_s` measured from construction.
  std::string to_json() const;
  // Writes to_json() to `path`; logs and returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct MetaEntry {
    enum class Kind { kString, kInt, kDouble, kBool };
    std::string key;
    Kind kind = Kind::kString;
    std::string str;
    std::int64_t i = 0;
    double d = 0.0;
    bool b = false;
  };
  MetaEntry& meta_slot(const std::string& key);

  std::string name_;
  std::vector<MetaEntry> meta_;
  std::vector<BenchPoint> points_;
  std::chrono::steady_clock::time_point start_;
};

// Build-time git sha (short), overridable with the HYFLOW_GIT_SHA env var;
// "unknown" when the build tree had no git metadata.
std::string git_sha();

}  // namespace hyflow::bench
