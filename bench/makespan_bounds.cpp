// §III-D analysis check: makespan of the worst case — N transactions, one
// per node, all updating a single shared object initially held by node 0.
//
//   Lemma 3.2 (scheduler B = abort + backoff):
//       makespan_B   <= 2(N-1) * sum_i d(n0, ni) + sum_i gamma_i
//   Lemma 3.3 (RTS):
//       makespan_RTS <= sum_i d(n0, ni) + sum_i d(n_{i-1}, n_i) + sum_i gamma_i
//   Theorem 3.4: the relative competitive ratio RCR = makespan_RTS /
//   makespan_B is below 1.
//
// This bench measures both makespans on the simulated cluster and evaluates
// the lemmas' right-hand sides from the actual topology (using node order
// 1..N-1 for the chain term — the bound is order-sensitive but any fixed
// order upper-bounds the best case the lemma assumes). Absolute bounds are
// loose (the analysis ignores validation round-trips); the reproduction
// target is makespan_RTS < makespan_B and both under their bounds' shape.
//
// Usage: makespan_bounds [--nodes=16] [--gamma-us=300] [--repeats=3]
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"
#include "runtime/cluster.hpp"

using namespace hyflow;
using namespace hyflow::bench;

namespace {

class Cell : public TxObject<Cell> {
 public:
  explicit Cell(ObjectId id) : TxObject(id) {}
  std::int64_t value = 0;
};

struct MakespanRun {
  SimDuration makespan = 0;
  runtime::MetricsSnapshot delta;  // whole-run counters (incl. latency)
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  bool verified = true;
};

// One transaction per node, all incrementing the same object; returns the
// wall-clock makespan plus the run's metrics.
MakespanRun measure_makespan(const HarnessOptions& opt, const std::string& scheduler,
                             std::uint32_t nodes, SimDuration gamma) {
  runtime::ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.workers_per_node = 0;
  cfg.scheduler.kind = scheduler;
  cfg.scheduler.cl_threshold = 64;  // worst-case analysis assumes everyone queues
  cfg.topology.min_delay = opt.min_delay;
  cfg.topology.max_delay = opt.max_delay;
  cfg.topology.seed = opt.seed;
  runtime::Cluster cluster(cfg);
  const ObjectId oid{777};
  cluster.create_object(std::make_unique<Cell>(oid), 0);

  const Stopwatch clock;
  {
    std::vector<std::jthread> txns;
    for (NodeId n = 0; n < nodes; ++n) {
      txns.emplace_back([&cluster, n, oid, gamma] {
        cluster.execute(n, 1, [&](tfa::Txn& tx) {
          tx.write<Cell>(oid).value += 1;
          std::this_thread::sleep_for(to_chrono(gamma));
        });
      });
    }
  }
  MakespanRun run;
  run.makespan = clock.elapsed();
  run.delta = cluster.total_metrics();
  run.messages = cluster.network().stats().messages.load();
  run.bytes = cluster.network().stats().bytes.load();

  // All N increments must have committed exactly once.
  std::int64_t final_value = 0;
  cluster.execute(0, 2, [&](tfa::Txn& tx) { final_value = tx.read<Cell>(oid).value; });
  if (final_value != static_cast<std::int64_t>(nodes)) {
    std::printf("!! lost updates: value=%lld nodes=%u\n",
                static_cast<long long>(final_value), nodes);
    run.verified = false;
  }
  cluster.shutdown();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = "makespan_bounds";
  const auto nodes = static_cast<std::uint32_t>(cfg.get_int("nodes", 16));
  const SimDuration gamma = sim_us(cfg.get_int("gamma-us", 300));
  const int repeats = static_cast<int>(cfg.get_int("repeats", 3));

  BenchResult bench = make_bench_result(opt);
  bench.meta("nodes", static_cast<std::int64_t>(nodes));
  bench.meta("gamma_us", static_cast<std::int64_t>(gamma / 1000));

  print_header("Makespan bounds (paper SS III-D): N writers, one object", opt);
  std::printf("# nodes=%u gamma=%lldus repeats=%d\n\n", nodes,
              static_cast<long long>(gamma / 1000), repeats);

  // Analytical right-hand sides from the actual topology.
  net::TopologyConfig tcfg;
  tcfg.nodes = nodes;
  tcfg.min_delay = opt.min_delay;
  tcfg.max_delay = opt.max_delay;
  tcfg.seed = opt.seed;
  net::Topology topo(tcfg);
  SimDuration sum_d0 = 0, sum_chain = 0;
  for (NodeId i = 1; i < nodes; ++i) {
    sum_d0 += topo.delay(0, i);
    sum_chain += topo.delay(i - 1, i);
  }
  const SimDuration sum_gamma = static_cast<SimDuration>(nodes) * gamma;
  const SimDuration bound_b = 2 * static_cast<SimDuration>(nodes - 1) * sum_d0 + sum_gamma;
  const SimDuration bound_rts = sum_d0 + sum_chain + sum_gamma;

  MakespanRun best_rts_run, best_b_run;
  double best_rts = 1e18, best_b = 1e18;
  for (int rep = 0; rep < repeats; ++rep) {
    auto rts_run = measure_makespan(opt, "rts", nodes, gamma);
    if (static_cast<double>(rts_run.makespan) < best_rts) {
      best_rts = static_cast<double>(rts_run.makespan);
      best_rts_run = std::move(rts_run);
    }
    auto b_run = measure_makespan(opt, "backoff", nodes, gamma);
    if (static_cast<double>(b_run.makespan) < best_b) {
      best_b = static_cast<double>(b_run.makespan);
      best_b_run = std::move(b_run);
    }
  }

  std::printf("%-22s %14s %14s\n", "", "measured(ms)", "lemma bound(ms)");
  std::printf("%-22s %14.2f %14.2f\n", "RTS (Lemma 3.3)", best_rts / 1e6,
              static_cast<double>(bound_rts) / 1e6);
  std::printf("%-22s %14.2f %14.2f\n", "scheduler B (Lemma 3.2)", best_b / 1e6,
              static_cast<double>(bound_b) / 1e6);
  const double rcr = best_rts / best_b;
  std::printf("\nRCR = makespan_RTS / makespan_B = %.3f (Theorem 3.4 expects < 1)\n", rcr);
  std::printf("bound ratio = %.3f\n",
              static_cast<double>(bound_rts) / static_cast<double>(bound_b));

  const struct {
    const char* scheduler;
    const MakespanRun* run;
    double makespan;
    SimDuration bound;
  } rows[] = {{"rts", &best_rts_run, best_rts, bound_rts},
              {"backoff", &best_b_run, best_b, bound_b}};
  for (const auto& row : rows) {
    bench.add_point()
        .label("scheduler", row.scheduler)
        .label("nodes", static_cast<std::int64_t>(nodes))
        .from_metrics(row.run->delta, row.makespan * 1e-9, row.run->messages,
                      row.run->bytes, row.run->verified)
        .metric("makespan_ms", row.makespan / 1e6)
        .metric("bound_ms", static_cast<double>(row.bound) / 1e6);
  }
  bench.meta("rcr", rcr);
  write_bench_json(bench, opt);
  return 0;
}
