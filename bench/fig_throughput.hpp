// Shared driver for Figures 4 and 5: transactional throughput vs node count
// for RTS / TFA / TFA+Backoff, one series-block per benchmark.
#pragma once

#include <cstdio>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"

namespace hyflow::bench {

inline int run_throughput_figure(int argc, char** argv, const char* title, bool low_contention) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = low_contention ? "fig4_throughput_low" : "fig5_throughput_high";
  const double read_ratio = low_contention ? opt.read_ratio_low : opt.read_ratio_high;

  BenchResult bench = make_bench_result(opt);
  bench.meta("contention", low_contention ? "low" : "high");
  bench.meta("read_ratio", read_ratio);
  opt.sink = &bench;

  print_header(title, opt);
  std::printf("# read ratio=%.2f; series: throughput in committed txn/s\n\n", read_ratio);

  for (const auto& workload : selected_workloads(opt)) {
    std::printf("## %s (%s contention)\n", workload.c_str(), low_contention ? "low" : "high");
    std::printf("%-6s %12s %12s %12s\n", "nodes", "RTS", "TFA", "TFA+Backoff");
    for (const auto nodes : opt.node_sweep) {
      double thr[3];
      int i = 0;
      for (const char* scheduler : {"rts", "tfa", "backoff"}) {
        const auto result = run_point(opt, workload, scheduler,
                                      static_cast<std::uint32_t>(nodes), read_ratio);
        thr[i++] = result.throughput;
        if (!result.verified)
          std::printf("!! %s/%s/n=%lld failed verification\n", workload.c_str(), scheduler,
                      static_cast<long long>(nodes));
      }
      std::printf("%-6lld %12.1f %12.1f %12.1f\n", static_cast<long long>(nodes), thr[0],
                  thr[1], thr[2]);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("# expectation: RTS tops each column; throughput grows with nodes\n");
  write_bench_json(bench, opt);
  return 0;
}

}  // namespace hyflow::bench
