// Shared driver for Figures 4 and 5: transactional throughput vs node count,
// swept head-to-head across every registered scheduler policy (the paper's
// RTS/TFA/TFA+Backoff plus the zoo challengers), one series-block per
// benchmark and one labelled BENCH_*.json point per (workload, policy,
// nodes). Restrict with --schedulers=rts,tfa,... for the paper's original
// three-way figure.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"

namespace hyflow::bench {

inline int run_throughput_figure(int argc, char** argv, const char* title, bool low_contention) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = low_contention ? "fig4_throughput_low" : "fig5_throughput_high";
  const double read_ratio = low_contention ? opt.read_ratio_low : opt.read_ratio_high;
  const auto schedulers = selected_schedulers(opt);

  BenchResult bench = make_bench_result(opt);
  bench.meta("contention", low_contention ? "low" : "high");
  bench.meta("read_ratio", read_ratio);
  {
    std::string joined;
    for (const auto& s : schedulers) joined += (joined.empty() ? "" : ",") + s;
    bench.meta("schedulers", joined);
  }
  opt.sink = &bench;

  print_header(title, opt);
  std::printf("# read ratio=%.2f; series: throughput in committed txn/s\n\n", read_ratio);

  for (const auto& workload : selected_workloads(opt)) {
    std::printf("## %s (%s contention)\n", workload.c_str(), low_contention ? "low" : "high");
    std::printf("%-6s", "nodes");
    for (const auto& scheduler : schedulers) std::printf(" %14s", scheduler.c_str());
    std::printf("\n");
    for (const auto nodes : opt.node_sweep) {
      std::printf("%-6lld", static_cast<long long>(nodes));
      for (const auto& scheduler : schedulers) {
        const auto result = run_point(opt, workload, scheduler,
                                      static_cast<std::uint32_t>(nodes), read_ratio);
        std::printf(" %14.1f", result.throughput);
        if (!result.verified)
          std::printf("\n!! %s/%s/n=%lld failed verification", workload.c_str(),
                      scheduler.c_str(), static_cast<long long>(nodes));
      }
      std::printf("\n");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("# expectation: RTS tops each column; throughput grows with nodes\n");
  write_bench_json(bench, opt);
  return 0;
}

}  // namespace hyflow::bench
