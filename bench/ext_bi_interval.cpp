// Extension bench (beyond the paper's figures): RTS vs the authors' earlier
// Bi-interval scheduler (SSS 2010, ref [17]) on every benchmark, at both
// contention levels. Bi-interval parks every conflicting requester and
// releases read intervals together, but has no execution-time or
// contention-level admission — the delta to RTS isolates the value of the
// paper's reactive abort/enqueue decision.
//
// Usage: ext_bi_interval [--nodes=16] ...
#include <cstdio>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"

using namespace hyflow;
using namespace hyflow::bench;

int main(int argc, char** argv) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = "ext_bi_interval";
  const auto nodes = static_cast<std::uint32_t>(cfg.get_int("nodes", 16));

  BenchResult bench = make_bench_result(opt);
  bench.meta("nodes", static_cast<std::int64_t>(nodes));
  opt.sink = &bench;

  print_header("Extension: RTS vs Bi-interval (authors' prior scheduler)", opt);
  std::printf("# nodes=%u; throughput in committed txn/s\n\n", nodes);
  std::printf("%-12s | %10s %12s | %10s %12s\n", "benchmark", "RTS(low)", "BiInt(low)",
              "RTS(high)", "BiInt(high)");
  std::printf("-------------+-------------------------+------------------------\n");

  for (const auto& workload : selected_workloads(opt)) {
    double thr[4];
    int i = 0;
    for (const double rr : {opt.read_ratio_low, opt.read_ratio_high}) {
      for (const char* scheduler : {"rts", "bi-interval"}) {
        const auto result = run_point(opt, workload, scheduler, nodes, rr);
        thr[i++] = result.throughput;
        if (!result.verified)
          std::printf("!! %s/%s failed verification\n", workload.c_str(), scheduler);
      }
    }
    std::printf("%-12s | %10.1f %12.1f | %10.1f %12.1f\n", workload.c_str(), thr[0], thr[1],
                thr[2], thr[3]);
    std::fflush(stdout);
  }
  std::printf(
      "\n# expectation: Bi-interval competitive on read-heavy mixes (read intervals),\n"
      "# RTS ahead on write-heavy mixes (admission control avoids convoying)\n");
  write_bench_json(bench, opt);
  return 0;
}
