#include "bench/bench_result.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "tfa/abort.hpp"
#include "util/assert.hpp"
#include "util/json_writer.hpp"

namespace hyflow::bench {

namespace {

std::string format_double_label(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

// "early-validation" -> "early_validation" (metric keys use underscores).
std::string metric_key(std::string_view name) {
  std::string key(name);
  for (char& c : key)
    if (c == '-') c = '_';
  return key;
}

template <typename V>
void upsert(std::vector<std::pair<std::string, V>>& entries, const std::string& key, V value) {
  for (auto& [k, v] : entries) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  entries.emplace_back(key, std::move(value));
}

}  // namespace

std::string git_sha() {
  if (const char* env = std::getenv("HYFLOW_GIT_SHA"); env && *env) return env;
#ifdef HYFLOW_GIT_SHA
  return HYFLOW_GIT_SHA;
#else
  return "unknown";
#endif
}

BenchPoint& BenchPoint::label(const std::string& key, const std::string& value) {
  upsert(labels_, key, value);
  return *this;
}

BenchPoint& BenchPoint::label(const std::string& key, std::int64_t value) {
  return label(key, std::to_string(value));
}

BenchPoint& BenchPoint::label(const std::string& key, double value) {
  return label(key, format_double_label(value));
}

BenchPoint& BenchPoint::metric(const std::string& key, double value) {
  upsert(metrics_, key, value);
  return *this;
}

BenchPoint& BenchPoint::metric(const std::string& key, std::uint64_t value) {
  return metric(key, static_cast<double>(value));
}

BenchPoint& BenchPoint::from_metrics(const runtime::MetricsSnapshot& delta, double seconds,
                                     std::uint64_t messages, std::uint64_t bytes,
                                     bool verified) {
  const double secs = seconds > 0.0 ? seconds : 0.0;
  metric("seconds", secs);
  metric("throughput",
         secs > 0.0 ? static_cast<double>(delta.commits_root) / secs : 0.0);
  metric("commits_root", delta.commits_root);
  metric("commits_read_only", delta.commits_read_only);
  metric("commits_write", delta.commits_write);
  for (std::size_t i = 1; i < delta.aborts_root.size(); ++i) {
    metric("abort_" + metric_key(tfa::abort_cause_name(static_cast<tfa::AbortCause>(i))),
           delta.aborts_root[i]);
  }
  const std::uint64_t aborts = delta.aborts_total();
  const std::uint64_t attempts = delta.commits_root + aborts;
  metric("aborts_total", aborts);
  metric("abort_ratio", attempts == 0 ? 0.0
                                      : static_cast<double>(aborts) /
                                            static_cast<double>(attempts));
  metric("nested_commits", delta.nested_commits);
  metric("nested_aborts_total", delta.nested_aborts_total);
  metric("nested_abort_rate", delta.nested_abort_rate());
  metric("enqueued", delta.enqueued);
  metric("handoffs", delta.handoffs_received);
  metric("backoff_expired", delta.backoff_expired);
  metric("open_nested_commits", delta.open_nested_commits);
  metric("compensations_run", delta.compensations_run);

  const auto& lat = delta.latency;
  metric("latency_count", lat.count());
  metric("latency_p50_us", static_cast<double>(lat.value_at_percentile(50)) / 1e3);
  metric("latency_p90_us", static_cast<double>(lat.value_at_percentile(90)) / 1e3);
  metric("latency_p99_us", static_cast<double>(lat.value_at_percentile(99)) / 1e3);
  metric("latency_mean_us", lat.mean() / 1e3);
  metric("latency_max_us", static_cast<double>(lat.max()) / 1e3);
  metric("latency_overflow", lat.overflow_count());

  metric("messages", messages);
  metric("bytes", bytes);
  metric("rpc_retries", delta.rpc_retries);
  metric("dedup_hits", delta.dedup_hits);
  metric("watchdog_aborts", delta.watchdog_aborts);
  metric("grant_reforwards", delta.grant_reforwards);
  metric("verified", static_cast<std::uint64_t>(verified ? 1 : 0));
  return *this;
}

BenchPoint& BenchPoint::from_experiment(const runtime::ExperimentResult& result) {
  from_metrics(result.delta, result.seconds, result.messages, result.bytes, result.verified);
  metric("queue_residue", result.queue_residue);
  return *this;
}

BenchResult::BenchResult(std::string bench_name)
    : name_(std::move(bench_name)), start_(std::chrono::steady_clock::now()) {
  meta("git_sha", git_sha());
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  meta("started_unix_ms",
       static_cast<std::int64_t>(
           std::chrono::duration_cast<std::chrono::milliseconds>(now).count()));
}

BenchResult::MetaEntry& BenchResult::meta_slot(const std::string& key) {
  for (auto& e : meta_)
    if (e.key == key) return e;
  MetaEntry entry;
  entry.key = key;
  entry.kind = MetaEntry::Kind::kString;
  meta_.push_back(std::move(entry));
  return meta_.back();
}

void BenchResult::meta(const std::string& key, const std::string& value) {
  MetaEntry& e = meta_slot(key);
  e.kind = MetaEntry::Kind::kString;
  e.str = value;
}

void BenchResult::meta(const std::string& key, std::int64_t value) {
  MetaEntry& e = meta_slot(key);
  e.kind = MetaEntry::Kind::kInt;
  e.i = value;
}

void BenchResult::meta(const std::string& key, double value) {
  MetaEntry& e = meta_slot(key);
  e.kind = MetaEntry::Kind::kDouble;
  e.d = value;
}

void BenchResult::meta(const std::string& key, bool value) {
  MetaEntry& e = meta_slot(key);
  e.kind = MetaEntry::Kind::kBool;
  e.b = value;
}

BenchPoint& BenchResult::add_point() {
  points_.emplace_back();
  return points_.back();
}

std::string BenchResult::to_json() const {
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  JsonWriter w;
  w.begin_object();
  w.field("schema_version", kBenchSchemaVersion);
  w.field("bench", name_);
  w.key("meta");
  w.begin_object();
  for (const MetaEntry& e : meta_) {
    w.key(e.key);
    switch (e.kind) {
      case MetaEntry::Kind::kString: w.value(e.str); break;
      case MetaEntry::Kind::kInt: w.value(e.i); break;
      case MetaEntry::Kind::kDouble: w.value(e.d); break;
      case MetaEntry::Kind::kBool: w.value(e.b); break;
    }
  }
  w.field("wall_time_s", wall_s);
  w.end_object();
  w.key("points");
  w.begin_array();
  for (const BenchPoint& p : points_) {
    w.begin_object();
    w.key("labels");
    w.begin_object();
    for (const auto& [k, v] : p.labels()) w.field(k, v);
    w.end_object();
    w.key("metrics");
    w.begin_object();
    for (const auto& [k, v] : p.metrics()) w.field(k, v);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  HYFLOW_ASSERT(w.complete());
  return w.str();
}

bool BenchResult::write(const std::string& path) const {
  if (!write_text_file(path, to_json())) {
    std::fprintf(stderr, "bench: failed to write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace hyflow::bench
