// Extension bench: the three nesting models of §I on the same Bank
// workload —
//   flat    each parent inlines all account operations (a child abort is a
//           parent abort; everything re-fetches),
//   closed  the paper's model (children retry alone; RTS can park parents),
//   open    each leg commits immediately with a registered compensation
//           (maximum concurrency, paid for in compensation machinery).
//
// Two open variants: a stateless parent (pure fire-and-forget legs, the
// parent itself cannot abort) and `open+audit`, whose parent also writes a
// per-node audit account — giving it commit-time state, real parent aborts,
// and therefore compensation traffic. Conservation must hold for all four;
// for the open variants that exercises the compensation path. Expected
// shape: stateless open far ahead (no isolation across legs); open+audit
// shows the compensation churn eroding that gain; closed trades child-commit
// validation round-trips for cheaper recovery vs flat.
//
// Usage: ext_nesting_models [--nodes=12] ...
#include <cstdio>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"
#include "workloads/bank.hpp"

using namespace hyflow;
using namespace hyflow::bench;

namespace {

enum class Style { kFlat, kClosed, kOpen, kOpenAudit };

// Bank with the transfer's nesting style swapped out.
class StyledBank : public workloads::BankWorkload {
 public:
  StyledBank(const workloads::WorkloadConfig& cfg, Style style)
      : BankWorkload(cfg), style_(style) {}

  void setup(runtime::Cluster& cluster) override {
    BankWorkload::setup(cluster);
    // One extra zero-balance "audit marker" account per node: the open-style
    // parent writes its own node's marker (a no-op deposit), giving the
    // parent real commit-time state — contended only by that node's workers —
    // so parent aborts and the compensation path occur at a realistic rate.
    markers_.clear();
    for (NodeId n = 0; n < cluster.size(); ++n) {
      const ObjectId oid = workloads::make_oid(workloads::IdSpace::kBankAccount,
                                               100000 + n);
      cluster.create_object(std::make_unique<workloads::Account>(oid, 0), n);
      markers_.push_back(oid);
    }
  }

  Op next_op(NodeId node, Xoshiro256& rng) override {
    Op op = BankWorkload::next_op(node, rng);
    if (op.is_read || style_ == Style::kClosed) return op;  // reuse closed shape

    const auto& all = accounts();
    const int legs_n = 1 + static_cast<int>(rng.below(
                               std::max(1, config().max_nested / 2)));
    struct Leg {
      ObjectId from, to;
      std::int64_t amount;
    };
    std::vector<Leg> legs;
    for (int i = 0; i < legs_n; ++i) {
      legs.push_back(Leg{all[rng.below(all.size())], all[rng.below(all.size())],
                         static_cast<std::int64_t>(rng.range(1, 25))});
    }
    if (style_ == Style::kFlat) {
      op.body = [this, legs](tfa::Txn& tx) {
        for (const Leg& leg : legs) {  // inlined: no inner transactions
          tx.write<workloads::Account>(leg.from).withdraw(leg.amount);
          tx.write<workloads::Account>(leg.to).deposit(leg.amount);
          do_local_work();
        }
      };
    } else {  // open nesting with compensations
      // kOpenAudit: the parent additionally writes its node's audit marker,
      // so it carries commit-time state of its own and can abort — running
      // the compensations. kOpen: a stateless parent that never aborts.
      const bool audit = style_ == Style::kOpenAudit;
      const ObjectId marker = markers_[node];
      op.body = [this, legs, marker, audit](tfa::Txn& tx) {
        if (audit) tx.write<workloads::Account>(marker).deposit(0);
        for (const Leg& leg : legs) {
          tx.open_nested(
              [this, leg](tfa::Txn& child) {
                child.write<workloads::Account>(leg.from).withdraw(leg.amount);
                child.write<workloads::Account>(leg.to).deposit(leg.amount);
                do_local_work();
              },
              [leg](tfa::Txn& comp) {
                comp.write<workloads::Account>(leg.from).deposit(leg.amount);
                comp.write<workloads::Account>(leg.to).withdraw(leg.amount);
              });
        }
      };
    }
    return op;
  }

 private:
  Style style_;
  std::vector<ObjectId> markers_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = "ext_nesting_models";
  const auto nodes = static_cast<std::uint32_t>(cfg.get_int("nodes", 12));

  BenchResult bench = make_bench_result(opt);
  bench.meta("nodes", static_cast<std::int64_t>(nodes));
  bench.meta("read_ratio", opt.read_ratio_high);

  print_header("Extension: flat vs closed vs open nesting (Bank, RTS)", opt);
  std::printf("# nodes=%u read-ratio=%.2f\n\n", nodes, opt.read_ratio_high);
  std::printf("%-8s %10s %12s %12s %14s %10s\n", "style", "txn/s", "aborts/c",
              "nested-cmts", "compensations", "verified");

  const Style styles[] = {Style::kFlat, Style::kClosed, Style::kOpen, Style::kOpenAudit};
  const char* names[] = {"flat", "closed", "open", "open+audit"};
  for (int s = 0; s < 4; ++s) {
    workloads::WorkloadConfig wcfg;
    wcfg.read_ratio = opt.read_ratio_high;
    wcfg.objects_per_node = opt.objects_per_node;
    wcfg.max_nested = opt.max_nested;
    wcfg.local_work = opt.local_work;
    StyledBank bank(wcfg, styles[s]);

    runtime::ExperimentConfig ecfg;
    ecfg.cluster.nodes = nodes;
    ecfg.cluster.workers_per_node = opt.workers;
    ecfg.cluster.scheduler.kind = "rts";
    ecfg.cluster.scheduler.cl_threshold = tuned_threshold("bank");
    ecfg.cluster.topology.min_delay = opt.min_delay;
    ecfg.cluster.topology.max_delay = opt.max_delay;
    ecfg.warmup = opt.warmup;
    ecfg.measure = opt.measure;
    const auto r = runtime::run_experiment(bank, ecfg);

    // Open-nested children run as independent root transactions and are
    // counted in commits_root; subtract them (and their compensations) so
    // the throughput column compares *parent* transactions across styles.
    const std::uint64_t parents = r.delta.commits_root -
                                  std::min(r.delta.commits_root,
                                           r.delta.open_nested_commits +
                                               r.delta.compensations_run);
    const double window_secs =
        static_cast<double>(opt.measure) * 1e-9;
    const double parent_throughput = static_cast<double>(parents) / window_secs;
    const double commits = std::max<double>(1.0, static_cast<double>(parents));
    std::printf("%-8s %10.1f %12.2f %12llu %14llu %10s\n", names[s], parent_throughput,
                static_cast<double>(r.delta.aborts_total()) / commits,
                static_cast<unsigned long long>(r.delta.nested_commits),
                static_cast<unsigned long long>(r.delta.compensations_run),
                r.verified ? "yes" : "NO");
    std::fflush(stdout);
    bench.add_point()
        .label("style", names[s])
        .label("workload", "bank")
        .label("scheduler", "rts")
        .label("nodes", static_cast<std::int64_t>(nodes))
        .from_experiment(r)
        .metric("parent_throughput", parent_throughput);
  }
  write_bench_json(bench, opt);
  return 0;
}
