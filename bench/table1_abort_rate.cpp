// Table I reproduction: "Abort rate of nested transactions" — nested aborts
// caused by a parent abort / total nested aborts — at low (90% read) and
// high (10% read) contention, across all six benchmarks, swept over every
// registered scheduler policy (one BENCH point per workload/policy/
// contention cell). `--schedulers=rts,tfa` reproduces the paper's original
// two-column table.
//
// Paper reference values (80 nodes, 10k transactions):
//                Low contention        High contention
//                RTS      TFA          RTS      TFA
//   Vacation     25.6%    55.5%        29.1%    67.5%
//   Bank         21.5%    46.4%        23.3%    63.7%
//   Linked List  14.4%    37.6%        17.9%    43.2%
//   RB Tree      13.7%    32.2%        22.4%    45.1%
//   BST          11.1%    29.4%        17.5%    37.4%
//   DHT          12.8%    31.3%        19.9%    39.2%
//
// Usage: table1_abort_rate [--nodes=16] [--schedulers=rts,tfa] [--duration-ms=400] ...
#include <cstdio>

#include "bench/bench_result.hpp"
#include "bench/common.hpp"

using namespace hyflow;
using namespace hyflow::bench;

int main(int argc, char** argv) {
  const auto cfg = Config::from_args(argc, argv);
  auto opt = HarnessOptions::from_config(cfg);
  opt.bench_name = "table1_abort_rate";
  const auto nodes = static_cast<std::uint32_t>(cfg.get_int("nodes", 16));
  const auto schedulers = selected_schedulers(opt);

  BenchResult bench = make_bench_result(opt);
  bench.meta("nodes", static_cast<std::int64_t>(nodes));
  {
    std::string joined;
    for (const auto& s : schedulers) joined += (joined.empty() ? "" : ",") + s;
    bench.meta("schedulers", joined);
  }
  opt.sink = &bench;

  print_header("Table I: abort rate of nested transactions (parent-caused / total)", opt);
  std::printf("# nodes=%u (paper: 80)\n\n", nodes);
  std::printf("%-12s %-14s | %8s %8s\n", "benchmark", "scheduler", "low", "high");
  std::printf("----------------------------+------------------\n");

  for (const auto& workload : selected_workloads(opt)) {
    for (const auto& scheduler : schedulers) {
      double rates[2] = {0, 0};
      int i = 0;
      for (const double rr : {opt.read_ratio_low, opt.read_ratio_high}) {
        const auto result = run_point(opt, workload, scheduler, nodes, rr);
        rates[i++] = result.nested_abort_rate;
        if (!result.verified)
          std::printf("!! %s/%s failed verification\n", workload.c_str(), scheduler.c_str());
      }
      std::printf("%-12s %-14s | %8s %8s\n", workload.c_str(), scheduler.c_str(),
                  pct(rates[0]).c_str(), pct(rates[1]).c_str());
      std::fflush(stdout);
    }
  }
  std::printf("\n# expectation: RTS below TFA in every cell; rates rise with contention\n");
  write_bench_json(bench, opt);
  return 0;
}
