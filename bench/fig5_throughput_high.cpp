// Figure 5 reproduction: transactional throughput at HIGH contention (10%
// read transactions), 10-80 nodes, RTS vs TFA vs TFA+Backoff, one panel per
// benchmark. Paper shape: absolute throughput below Figure 4's, but RTS's
// margin over the baselines widens; LL/RB/BST/DHT outperform Bank/Vacation
// (shorter local execution).
#include "bench/fig_throughput.hpp"

int main(int argc, char** argv) {
  return hyflow::bench::run_throughput_figure(
      argc, argv, "Figure 5: throughput vs nodes, high contention (10% reads)", false);
}
